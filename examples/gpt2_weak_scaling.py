#!/usr/bin/env python
"""GPT-2 weak scaling on the modelled Piz Daint (paper Figure 15).

Simulates every scheme's best configuration while nodes and mini-batch
scale together, and reports Chimera's weak-scaling efficiency.

Run:  python examples/gpt2_weak_scaling.py [--full]
      (--full uses the paper's 512 -> 2,048 node scales; the default stays
      at 128 -> 512 simulated nodes so the example finishes in seconds)
"""

import sys

from repro.bench.experiments import figure15


def main() -> None:
    fast = "--full" not in sys.argv
    print(figure15.run(fast=fast))
    print()
    print(
        "Expected shape (paper §4.2.3): Chimera first among synchronous\n"
        "schemes without activation recomputation; DAPPLE/GPipe pay\n"
        "recompute + bubbles; GEMS trails; ~90% weak-scaling efficiency."
    )


if __name__ == "__main__":
    main()
