#!/usr/bin/env python
"""Quickstart: build, visualize, simulate, and *train through* a Chimera
bidirectional pipeline schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CostModel,
    PipelineTrainer,
    SGD,
    TransformerLMConfig,
    build_schedule,
    bubble_ratio,
    render_gantt,
    simulate,
    validate_schedule,
)
from repro.models import SequentialTrainer, build_transformer_layers
from repro.sim import MemoryModel, analyze_memory


def main() -> None:
    depth, n = 4, 4

    # 1. Build the Chimera schedule (paper Figure 3) and a DAPPLE baseline.
    chimera = build_schedule("chimera", depth, n)
    dapple = build_schedule("dapple", depth, n)
    validate_schedule(chimera, require_sync_ops=True)

    # 2. Visualize both under the practical cost model (backward = 2x
    #    forward) — compare the bubble patterns with the paper's Figure 2/3.
    print("=" * 72)
    print(render_gantt(chimera, time_step=0.5))
    print()
    print(render_gantt(dapple, time_step=0.5))

    # 3. Bubble ratios and the memory balance of Table 2.
    cost = CostModel.practical()
    print()
    for name, schedule in (("chimera", chimera), ("dapple", dapple)):
        result = simulate(schedule, cost)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        print(
            f"{name:8s} bubble ratio = {bubble_ratio(result):.3f}   "
            f"activation stashes per worker = {units}"
        )

    # 4. Actually *train* a small transformer through the Chimera schedule
    #    and verify the weights equal sequential mini-batch SGD — the
    #    paper's synchronous-equivalence argument, executed.
    config = TransformerLMConfig(num_layers=4, dim=32, heads=4, vocab=41, seq=8)
    trainer = PipelineTrainer(
        config, scheme="chimera", depth=depth, num_micro_batches=n,
        optimizer_factory=lambda: SGD(0.05),
    )
    reference = SequentialTrainer(build_transformer_layers(config), SGD(0.05))

    rng = np.random.default_rng(0)
    print()
    for step in range(3):
        micro_batches = [
            (
                rng.integers(0, config.vocab, (2, config.seq)),
                rng.integers(0, config.vocab, (2, config.seq)),
            )
            for _ in range(n)
        ]
        loss_pipeline = trainer.train_step(micro_batches)
        loss_reference = reference.train_step(micro_batches)
        print(
            f"step {step}: pipeline loss {loss_pipeline:.6f}   "
            f"sequential SGD loss {loss_reference:.6f}"
        )

    max_diff = max(
        float(np.abs(a.params[k] - b.params[k]).max())
        for a, b in zip(trainer.full_model_layers(), reference.layers)
        for k in a.params
    )
    print(f"\nmax |pipeline - sequential| weight difference: {max_diff:.2e}")
    assert max_diff < 1e-9, "synchronous schedules must equal mini-batch SGD"
    print("Chimera training is numerically identical to mini-batch SGD. ✓")


if __name__ == "__main__":
    main()
