#!/usr/bin/env python
"""Convergence friendliness: synchronous vs asynchronous pipelines (§2).

Trains the same small language model under Chimera (synchronous), PipeDream
and PipeDream-2BW (asynchronous, stale weights), plus the sequential SGD
reference, on a fixed token stream — then compares weights and loss curves.

Run:  python examples/staleness_vs_synchronous.py
"""

import numpy as np

from repro import PipelineTrainer, SGD, TransformerLMConfig
from repro.models import SequentialTrainer, build_transformer_layers

CONFIG = TransformerLMConfig(num_layers=4, dim=32, heads=4, vocab=37, seq=8, seed=21)
DEPTH, N, BATCH, STEPS = 4, 4, 2, 10


def data_stream(step: int):
    rng = np.random.default_rng(1000 + step % 5)
    return [
        (
            rng.integers(0, CONFIG.vocab, (BATCH, CONFIG.seq)),
            rng.integers(0, CONFIG.vocab, (BATCH, CONFIG.seq)),
        )
        for _ in range(N)
    ]


def weight_gap(trainer: PipelineTrainer, reference: SequentialTrainer) -> float:
    return max(
        float(np.abs(a.params[k] - b.params[k]).max())
        for a, b in zip(trainer.full_model_layers(), reference.layers)
        for k in a.params
    )


def main() -> None:
    reference = SequentialTrainer(build_transformer_layers(CONFIG), SGD(0.05))
    trainers = {
        scheme: PipelineTrainer(
            CONFIG, scheme=scheme, depth=DEPTH, num_micro_batches=N,
            optimizer_factory=lambda: SGD(0.05),
        )
        for scheme in ("chimera", "pipedream", "pipedream_2bw")
    }

    losses: dict[str, list[float]] = {s: [] for s in trainers}
    losses["sequential"] = []
    for step in range(STEPS):
        batch = data_stream(step)
        losses["sequential"].append(reference.train_step(batch))
        for scheme, trainer in trainers.items():
            losses[scheme].append(trainer.train_step(batch))

    print(f"{'step':<6}" + "".join(f"{s:>16}" for s in losses))
    for step in range(STEPS):
        print(
            f"{step:<6}"
            + "".join(f"{losses[s][step]:>16.4f}" for s in losses)
        )

    print("\nFinal max weight difference vs sequential mini-batch SGD:")
    for scheme, trainer in trainers.items():
        gap = weight_gap(trainer, reference)
        verdict = "synchronous — exact" if gap < 1e-9 else "asynchronous — STALE"
        print(f"  {scheme:<16}{gap:.3e}   ({verdict})")

    assert weight_gap(trainers["chimera"], reference) < 1e-9
    assert weight_gap(trainers["pipedream"], reference) > 1e-8
    print(
        "\nChimera tracks mini-batch SGD exactly; the PipeDream family "
        "converges but on a different (stale-weight) trajectory."
    )


if __name__ == "__main__":
    main()
