#!/usr/bin/env python
"""Per-worker memory footprints across schemes (paper Figure 9).

Prints a bar-chart-style view of every worker's memory for a 32-layer
GPT-2 partitioned over 16 simulated P100s, showing Chimera's balance
against DAPPLE's first-worker peak, GPipe's N-proportional blow-up, and
GEMS' minimal footprint.

Run:  python examples/memory_balance.py
"""

from repro.bench import PIZ_DAINT, GPT2_32
from repro.perf.calibration import calibrate_memory_model
from repro.schedules import available_schemes, build_schedule, scheme_traits
from repro.sim import analyze_memory

WIDTH, DEPTH, MICRO_BATCH, MINI_BATCH = 2, 16, 1, 512


def bar(gib: float, scale: float = 2.0) -> str:
    return "#" * max(1, int(gib * scale))


def main() -> None:
    n = MINI_BATCH // (WIDTH * MICRO_BATCH)
    capacity = PIZ_DAINT.usable_memory_bytes
    print(
        f"{GPT2_32.describe()}\n"
        f"W={WIDTH}, D={DEPTH}, B={MICRO_BATCH}, B̂={MINI_BATCH} "
        f"(N={n} micro-batches per worker)\n"
    )
    for scheme in available_schemes():
        if scheme_traits(scheme).cost_parameterized:
            continue  # synthesized output depends on the cost model
        stages = scheme_traits(scheme).stage_count(DEPTH)
        if GPT2_32.num_layers % stages:
            print(f"{scheme}  (skipped: {GPT2_32.num_layers} layers do not "
                  f"split into {stages} stages)\n")
            continue
        schedule = build_schedule(scheme, DEPTH, n)
        # Calibrate per the schedule's own stage count (the V-shaped
        # schemes fold 2D half-size chunks over D workers).
        memory_model = calibrate_memory_model(
            PIZ_DAINT, GPT2_32, depth=schedule.num_stages, micro_batch=MICRO_BATCH
        )
        report = analyze_memory(schedule, memory_model)
        oom = "" if report.fits(capacity) else "  << OOM on 16 GiB P100"
        print(f"{scheme}  (peak {report.peak_bytes / 2**30:.2f} GiB, "
              f"imbalance {report.imbalance:.2f}x){oom}")
        for w in report.workers:
            gib = w.total_bytes / 2**30
            print(f"  P{w.worker:<3} {gib:6.2f} GiB |{bar(gib)}")
        print()


if __name__ == "__main__":
    main()
