#!/usr/bin/env python
"""Configuration selection with the §3.4 performance model.

Given a machine, a workload, a worker count, and a mini-batch size, Chimera
greedily takes the largest micro-batch that fits memory and lets
Equation (1) rank the (W, D) splits — reproducing the Figure 13 workflow.

Run:  python examples/configuration_selection.py
"""

from repro import select_configuration
from repro.bench import BERT48, GPT2_64, PIZ_DAINT


def main() -> None:
    for workload, num_workers, mini_batch in (
        (BERT48, 32, 512),
        (GPT2_64, 128, 128),
    ):
        print("=" * 72)
        print(f"{workload.describe()}")
        print(f"P = {num_workers} workers, B̂ = {mini_batch}")
        ranked = select_configuration(
            PIZ_DAINT, workload, num_workers=num_workers, mini_batch=mini_batch
        )
        print(f"{'rank':<6}{'configuration':<28}{'predicted seq/s':>16}")
        for i, cand in enumerate(ranked, 1):
            marker = "  <- selected" if i == 1 else ""
            print(
                f"{i:<6}{cand.label():<28}{cand.predicted_throughput:>16.1f}{marker}"
            )
        print()


if __name__ == "__main__":
    main()
