#!/usr/bin/env python
"""Configuration selection, from the §3.4 model to the memory-budget planner.

Part 1 reproduces the Figure 13 workflow through the *planner* API:
Chimera's greedy candidates — the largest micro-batch that fits memory for
each (W, D) split — are re-simulated by the scheme-agnostic planner, and
the script asserts the §3.4 narrative still holds: the Equation (1) model
predicts each candidate's simulated throughput within 10% and ranks the
candidates in the same order, so the model's pick *is* the simulated best.

Part 2 shows what the planner adds beyond Figure 13: the full registry
searched under shrinking peak-memory budgets, where the winner migrates to
the memory-controllable zero-bubble schedules as the budget tightens.

Run:  python examples/configuration_selection.py
"""

from repro import plan_configurations, select_configuration
from repro.bench import BERT48, PIZ_DAINT
from repro.common.units import GIB


def figure13_narrative() -> None:
    """Model-guided selection agrees with simulated practice (Figure 13)."""
    num_workers, mini_batch = 32, 256
    ranked = select_configuration(
        PIZ_DAINT, BERT48, num_workers=num_workers, mini_batch=mini_batch
    )
    planned = plan_configurations(
        PIZ_DAINT,
        BERT48,
        num_workers=num_workers,
        mini_batch=mini_batch,
        schemes=("chimera",),
        lowered=False,  # the §3.4 model assumes implicit p2p communication
    )
    simulated = {
        (e.width, e.depth, e.micro_batch, e.recompute): e for e in planned
    }
    print(f"{BERT48.describe()}")
    print(f"P = {num_workers} workers, B̂ = {mini_batch} (Figure 13 scenario)")
    print(f"{'configuration':<26}{'model seq/s':>12}{'sim seq/s':>12}{'error':>8}")
    sim_rates = []
    for cand in ranked:
        entry = simulated[(cand.width, cand.depth, cand.micro_batch, cand.recompute)]
        error = abs(cand.predicted_throughput - entry.throughput) / entry.throughput
        assert error < 0.10, f"model error {error:.1%} exceeds the paper's 10%"
        sim_rates.append(entry.throughput)
        print(
            f"{cand.label():<26}{cand.predicted_throughput:>12.1f}"
            f"{entry.throughput:>12.1f}{error:>7.1%}"
        )
    # The model ranks the greedy candidates exactly as the simulation does,
    # so its top pick is the simulated best — the Figure 13 conclusion.
    assert sim_rates == sorted(sim_rates, reverse=True), (
        "model ranking diverged from simulated practice"
    )
    print("model ranking == simulated ranking  <- Figure 13 reproduced\n")


def budget_search() -> None:
    """The planner's new axis: every scheme, shrinking memory budgets."""
    schemes = ("dapple", "chimera", "zb_h1", "zb_v", "zb_vhalf", "zb_vmin")
    print("Scheme-agnostic search, Bert-48, P=16, B̂=128 on Piz Daint")
    print(f"{'budget':<12}{'best configuration':<34}{'seq/s':>8}{'peak GiB':>10}")
    for budget_gib in (None, 6.0, 3.0, 2.0):
        entries = plan_configurations(
            PIZ_DAINT,
            BERT48,
            num_workers=16,
            mini_batch=128,
            memory_budget_bytes=budget_gib * GIB if budget_gib else None,
            schemes=schemes,
        )
        best = entries[0]
        label = "device" if budget_gib is None else f"{budget_gib:g} GiB"
        print(
            f"{label:<12}{best.label():<34}{best.throughput:>8.1f}"
            f"{best.peak_memory_bytes / GIB:>10.2f}"
        )
    print()


def main() -> None:
    figure13_narrative()
    budget_search()


if __name__ == "__main__":
    main()
