#!/usr/bin/env python
"""CI docs check: every module under ``src/repro/`` has a module docstring.

Run from the repository root (no third-party dependencies):

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import pathlib
import sys


def missing_docstrings(root: pathlib.Path) -> list[pathlib.Path]:
    """Paths of ``*.py`` files under ``root`` lacking a module docstring."""
    bad: list[pathlib.Path] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            bad.append(path)
    return bad


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    bad = missing_docstrings(root)
    if bad:
        print("modules missing a module docstring:")
        for path in bad:
            print(f"  {path}")
        return 1
    count = sum(1 for _ in root.rglob("*.py"))
    print(f"ok: all {count} modules under src/repro/ have module docstrings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
