#!/usr/bin/env python
"""CI docs check: every tracked Python module has a module docstring.

Covers the library (``src/repro/``) plus the benchmark targets
(``benchmarks/``), the runnable walkthroughs (``examples/``), the test
suite (``tests/``), and the CI tooling itself (``tools/``). Run from the
repository root (no third-party dependencies):

    python tools/check_docstrings.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: Directories (relative to the repository root) whose ``*.py`` files must
#: carry module docstrings.
CHECKED_DIRS = ("src/repro", "benchmarks", "examples", "tests", "tools")


def missing_docstrings(root: pathlib.Path) -> list[pathlib.Path]:
    """Paths of ``*.py`` files under ``root`` lacking a module docstring."""
    bad: list[pathlib.Path] = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            bad.append(path)
    return bad


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    bad: list[pathlib.Path] = []
    count = 0
    for rel in CHECKED_DIRS:
        root = repo / rel
        if not root.is_dir():
            # A silently missing root would disable the gate for that
            # whole directory; fail loudly instead.
            print(f"checked directory does not exist: {root}")
            return 1
        bad.extend(missing_docstrings(root))
        count += sum(1 for _ in root.rglob("*.py"))
    if bad:
        print("modules missing a module docstring:")
        for path in bad:
            print(f"  {path}")
        return 1
    print(
        f"ok: all {count} modules under {', '.join(CHECKED_DIRS)} have "
        f"module docstrings"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
