"""Figure 13: performance model vs simulated practice."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure13


def test_figure13_model_accuracy(benchmark, fast_mode, report):
    run_and_print(benchmark, figure13.run, fast_mode, report)
