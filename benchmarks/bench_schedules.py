"""Micro-benchmarks of the library itself: schedule construction, the
discrete-event engine, and the schedule timelines of Figures 2/3/7/8."""

from repro.schedules.chimera import build_chimera_schedule
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt


def test_build_chimera_d32(benchmark):
    schedule = benchmark(build_chimera_schedule, 32, 32)
    assert schedule.num_stages == 32


def test_build_chimera_forward_doubling(benchmark):
    schedule = benchmark(
        lambda: build_chimera_schedule(16, 64, concat="doubling")
    )
    assert schedule.num_micro_batches == 64


def test_build_chimera_four_pipelines(benchmark):
    schedule = benchmark(
        lambda: build_chimera_schedule(16, 16, num_down_pipelines=2)
    )
    assert schedule.num_replicas == 4


def test_simulate_chimera_d32(benchmark):
    schedule = build_chimera_schedule(32, 32)
    result = benchmark(simulate, schedule, CostModel.practical())
    assert result.compute_makespan > 0


def test_figure2_3_7_8_timelines(benchmark, report):
    """Regenerate the paper's schedule diagrams as ASCII Gantt charts."""

    def render_all() -> str:
        charts = []
        for title, schedule in (
            ("Figure 2 (DAPPLE / 1F1B, D=4, N=4)", build_schedule("dapple", 4, 4)),
            ("Figure 2 (GPipe, D=4, N=4)", build_schedule("gpipe", 4, 4)),
            ("Figure 2 (GEMS, D=4, N=4)", build_schedule("gems", 4, 4)),
            ("Figure 3 (Chimera, D=4, N=4)", build_schedule("chimera", 4, 4)),
            (
                "Figure 7d (forward doubling, D=4, N=8)",
                build_schedule("chimera", 4, 8, concat="doubling"),
            ),
            (
                "Figure 8 (four pipelines, D=8, N=8)",
                build_schedule("chimera", 8, 8, num_down_pipelines=2),
            ),
        ):
            charts.append(title + "\n" + render_gantt(schedule, time_step=0.5))
        return "\n\n".join(charts)

    text = benchmark(render_all)
    report(text)
