"""Figure 19: Chimera with more than two pipelines."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure19


def test_figure19_multi_pipeline(benchmark, fast_mode, report):
    run_and_print(benchmark, figure19.run, fast_mode, report)
