"""Figure 10: baseline tuning grids, Bert-48 on 32 nodes."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure10


def test_figure10_baseline_tuning(benchmark, fast_mode, report):
    run_and_print(benchmark, figure10.run, fast_mode, report)
