"""Array-kernel benchmark: fast/batch paths vs the event-queue engine.

Times the D=16, N=64 acceptance grid of the kernel — chimera and ZB-V,
implicit and lowered — through :func:`repro.sim.kernel.simulate_fast`
(full-result drop-in) and :func:`repro.sim.kernel.simulate_batch` (eight
cost models against one cached dense schedule), asserting the tentpole
speedup: the batch path at least 3x the event engine per model evaluated.

Doubles as a plain script::

    PYTHONPATH=src python benchmarks/bench_kernel.py
"""

import time

from repro.bench.harness import format_table
from repro.bench.perfsuite import batch_cost_models, suite_cost_model
from repro.schedules.cache import schedule_artifacts
from repro.sim.engine import simulate
from repro.sim.kernel import simulate_batch, simulate_fast

DEPTH, MICRO_BATCHES = 16, 64


def _best(fn, repeat: int = 3) -> float:
    fn()  # warm-up: dense form and kernel build here
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _case(scheme: str, lowered: bool):
    arts = schedule_artifacts(scheme, DEPTH, MICRO_BATCHES)
    return arts.schedule_for(lowered), arts.graph_for(lowered)


def run() -> str:
    """Time every case and render the comparison table."""
    base = suite_cost_model()
    models = batch_cost_models()
    rows = []
    for scheme in ("chimera", "zb_v"):
        for lowered in (False, True):
            schedule, graph = _case(scheme, lowered)
            event = _best(lambda: simulate(schedule, base, graph=graph))
            fast = _best(lambda: simulate_fast(schedule, base, graph=graph))
            batch = _best(
                lambda: simulate_batch(schedule, models, graph=graph)
            ) / len(models)
            mode = "lowered" if lowered else "implicit"
            rows.append(
                [
                    scheme,
                    mode,
                    f"{event * 1e3:.2f}",
                    f"{fast * 1e3:.2f} ({event / fast:.1f}x)",
                    f"{batch * 1e3:.2f} ({event / batch:.1f}x)",
                ]
            )
    return format_table(
        rows,
        headers=["scheme", "mode", "event ms", "fast ms", "batch ms/model"],
    )


def test_batch_path_beats_event_engine(benchmark, report):
    """Tentpole check: batch evaluation >= 3x the event engine per model."""
    schedule, graph = _case("chimera", False)
    base = suite_cost_model()
    models = batch_cost_models()
    result = benchmark(simulate_batch, schedule, models, graph=graph)
    event = _best(lambda: simulate(schedule, base, graph=graph))
    batch = _best(lambda: simulate_batch(schedule, models, graph=graph))
    per_model = batch / len(models)
    assert result.iteration_time[0] > 0
    assert event / per_model >= 3.0, (
        f"batch path only {event / per_model:.1f}x the event engine"
    )
    report(
        f"chimera D={DEPTH} N={MICRO_BATCHES}: event {event * 1e3:.2f} ms, "
        f"batch {per_model * 1e3:.2f} ms/model "
        f"({event / per_model:.1f}x over {len(models)} models)"
    )


def test_kernel_comparison_table(benchmark, report):
    """The full kernel x scheme comparison grid."""
    report(benchmark(run))


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    print(run())
