"""Benches for Tables 2, 3 and 4 of the paper."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import table2, table3, table4


def test_table02_scheme_comparison(benchmark, fast_mode, report):
    run_and_print(benchmark, table2.run, fast_mode, report)


def test_table03_generalized_pipelines(benchmark, fast_mode, report):
    run_and_print(benchmark, table3.run, fast_mode, report)


def test_table04_networks(benchmark, fast_mode, report):
    run_and_print(benchmark, table4.run, fast_mode, report)
