"""Figure 11: baseline tuning, GPT-2 at scale."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure11


def test_figure11_gpt2_tuning(benchmark, fast_mode, report):
    run_and_print(benchmark, figure11.run, fast_mode, report)
