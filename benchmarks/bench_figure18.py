"""Figure 18: large mini-batches, GPT-2 (forward doubling regime)."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure18


def test_figure18_large_minibatch_gpt2(benchmark, fast_mode, report):
    run_and_print(benchmark, figure18.run, fast_mode, report)
