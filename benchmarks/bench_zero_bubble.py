"""Bench for the zero-bubble (ZB-H1 / ZB-V) comparison table."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import zero_bubble_table


def test_zero_bubble_vs_baselines(benchmark, fast_mode, report):
    run_and_print(benchmark, zero_bubble_table.run, fast_mode, report)
