"""Figure 15: weak scaling, GPT-2 up to 2,048 simulated nodes."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure15


def test_figure15_weak_scaling_gpt2(benchmark, fast_mode, report):
    run_and_print(benchmark, figure15.run, fast_mode, report)
