"""Ablations of the design choices DESIGN.md calls out.

1. Allreduce algorithm choice in the cost model (Rabenseifner vs ring vs
   recursive doubling) — §3.4 argues Rabenseifner for large models.
2. Greedy max-B selection vs an exhaustive B sweep — §3.4 argues the
   greedy choice is safe for Chimera because bubbles are already low.
3. Backward/forward cost ratio (2x vs 3x-with-recompute) effect on the
   bubble ratio — the §2 accounting.
4. Sync strategy (lazy / eager / eager-opt) across depths.
"""

from benchmarks.conftest import run_and_print
from repro.bench.harness import ExperimentConfig, format_table, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.perf.calibration import calibrate_cost_model
from repro.perf.planner import greedy_micro_batch
from repro.schedules.chimera import build_chimera_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.metrics import bubble_ratio


def _allreduce_ablation(fast: bool) -> str:
    rows = []
    for algo in ("rabenseifner", "ring", "recursive_doubling"):
        cost = calibrate_cost_model(
            PIZ_DAINT,
            BERT48,
            depth=4,
            micro_batch=8,
            data_parallel_width=8,
            allreduce_algorithm=algo,
        )
        result = simulate(build_chimera_schedule(4, 8), cost)
        rows.append([algo, f"{result.iteration_time:.3f}s", f"{result.sync_tail():.3f}s"])
    return "Allreduce algorithm ablation (Bert-48, W=8, D=4, B=8)\n" + format_table(
        rows, headers=["algorithm", "iteration", "sync tail"]
    )


def test_ablation_allreduce_algorithm(benchmark, fast_mode, report):
    run_and_print(benchmark, lambda fast: _allreduce_ablation(fast), fast_mode, report)


def _greedy_vs_sweep(fast: bool) -> str:
    """Is the paper's greedy max-B policy ever beaten by a smaller B?"""
    width, depth, mini_batch = 8, 4, 512
    picked = greedy_micro_batch(
        PIZ_DAINT, BERT48, width=width, depth=depth, mini_batch=mini_batch
    )
    assert picked is not None
    rows = []
    best_b, best_thr = None, 0.0
    b = 1
    while width * b <= mini_batch:
        if mini_batch % (width * b) == 0:
            r = run_configuration(
                ExperimentConfig(
                    scheme="chimera",
                    machine=PIZ_DAINT,
                    workload=BERT48,
                    width=width,
                    depth=depth,
                    micro_batch=b,
                    mini_batch=mini_batch,
                )
            )
            thr = 0.0 if r.oom else r.throughput
            rows.append([b, "OOM" if r.oom else f"{thr:.1f}", "<- greedy" if b == picked[0] else ""])
            if thr > best_thr:
                best_b, best_thr = b, thr
        b *= 2
    rows.append(["best", best_b, f"greedy picked {picked[0]}"])
    return "Greedy max-B vs exhaustive sweep (Chimera, W=8, D=4)\n" + format_table(
        rows, headers=["B", "seq/s", ""]
    )


def test_ablation_greedy_micro_batch(benchmark, fast_mode, report):
    run_and_print(benchmark, lambda fast: _greedy_vs_sweep(fast), fast_mode, report)


def _backward_ratio_ablation(fast: bool) -> str:
    rows = []
    for ratio, label in ((1.0, "B = F (ideal)"), (2.0, "B = 2F"), (3.0, "B = 3F (recompute)")):
        cost = CostModel(forward_time=1.0, backward_ratio=ratio)
        result = simulate(build_chimera_schedule(8, 8), cost)
        rows.append([label, f"{bubble_ratio(result):.3f}"])
    return "Backward/forward ratio vs Chimera bubble ratio (D=N=8)\n" + format_table(
        rows, headers=["workload model", "bubble ratio"]
    )


def test_ablation_backward_ratio(benchmark, fast_mode, report):
    run_and_print(benchmark, lambda fast: _backward_ratio_ablation(fast), fast_mode, report)


def _sync_mode_ablation(fast: bool) -> str:
    rows = []
    for depth in (4, 8, 16):
        cost = calibrate_cost_model(
            PIZ_DAINT, BERT48, depth=depth, micro_batch=2,
            data_parallel_width=32 // depth if depth <= 16 else 1,
        )
        times = {}
        for mode in ("lazy", "eager", "eager_opt"):
            result = simulate(
                build_chimera_schedule(depth, depth, sync_mode=mode), cost
            )
            times[mode] = result.iteration_time
        rows.append(
            [f"D={depth}"]
            + [f"{times[m]:.3f}s" for m in ("lazy", "eager", "eager_opt")]
        )
    return "Sync strategy ablation (Bert-48)\n" + format_table(
        rows, headers=["depth", "lazy", "eager", "eager_opt"]
    )


def test_ablation_sync_modes(benchmark, fast_mode, report):
    run_and_print(benchmark, lambda fast: _sync_mode_ablation(fast), fast_mode, report)
