"""Engine benchmark: event queue vs the seed polling loop, lowered and not.

Simulates chimera and ZB-V at D=16, N=64 (thousands of operations per
schedule) three ways — the event-queue engine on the implicit schedule,
the event-queue engine on the lowered schedule (explicit SEND/RECV with
link contention), and the seed's polling reference on the implicit
schedule — asserting that the event queue beats the polling loop it
replaced while both produce identical makespans.

Runs under pytest-benchmark like every other bench target, and doubles as
a plain script for the CI smoke step::

    PYTHONPATH=src python benchmarks/bench_sim_engine.py
"""

import time

from repro.bench.harness import format_table
from repro.schedules.dependencies import build_dependency_graph
from repro.schedules.lowering import lower_schedule
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate, simulate_polling
from repro.sim.network import FlatTopology, LinkSpec

DEPTH, MICRO_BATCHES = 16, 64


def _cost_model() -> CostModel:
    return CostModel(
        forward_time=1.0,
        topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.01)),
        activation_message_bytes=1.0,
        stage_grad_bytes=10.0,
        data_parallel_width=2,
    )


def _cases(scheme: str):
    """(label, engine, schedule, graph) benchmark variants for a scheme."""
    schedule = build_schedule(scheme, DEPTH, MICRO_BATCHES)
    graph = build_dependency_graph(schedule)
    lowered = lower_schedule(schedule, graph=graph)
    lowered_graph = build_dependency_graph(lowered)
    return [
        ("event", simulate, schedule, graph),
        ("event+lowered", simulate, lowered, lowered_graph),
        ("polling (seed)", simulate_polling, schedule, graph),
    ]


def _time_once(fn, schedule, graph, *, repeat: int = 3) -> tuple[float, float]:
    """(best seconds per run, iteration_time) with a warm dense cache."""
    cm = _cost_model()
    result = fn(schedule, cm, graph=graph)  # warm-up / cache build
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(schedule, cm, graph=graph)
        best = min(best, time.perf_counter() - t0)
    return best, result.iteration_time


def run() -> str:
    """Run every case once and render the comparison table."""
    rows = []
    for scheme in ("chimera", "zb_v"):
        times = {}
        for label, fn, schedule, graph in _cases(scheme):
            seconds, iteration = _time_once(fn, schedule, graph)
            times[label] = seconds
            ops = sum(len(r) for r in schedule.worker_ops)
            rows.append(
                [scheme, label, ops, f"{seconds * 1e3:.2f}", f"{iteration:.2f}"]
            )
        speedup = times["polling (seed)"] / times["event"]
        rows.append([scheme, "-> speedup event vs polling", "",
                     f"{speedup:.2f}x", ""])
    return format_table(
        rows, ["scheme", "engine", "ops", "ms/simulate", "iteration(s)"]
    )


def test_simulate_chimera_event_vs_polling(benchmark, report):
    """Event engine must beat the seed polling loop on D=16, N=64 chimera."""
    schedule = build_schedule("chimera", DEPTH, MICRO_BATCHES)
    graph = build_dependency_graph(schedule)
    cm = _cost_model()
    result = benchmark(simulate, schedule, cm, graph=graph)
    event_t, event_iter = _time_once(simulate, schedule, graph)
    poll_t, poll_iter = _time_once(simulate_polling, schedule, graph)
    assert event_iter == poll_iter
    assert event_t < poll_t, (
        f"event queue ({event_t * 1e3:.2f} ms) not faster than polling "
        f"({poll_t * 1e3:.2f} ms)"
    )
    report(
        f"chimera D={DEPTH} N={MICRO_BATCHES}: event {event_t * 1e3:.2f} ms, "
        f"polling {poll_t * 1e3:.2f} ms ({poll_t / event_t:.2f}x)"
    )
    assert result.iteration_time > 0


def test_simulate_zb_v_lowered(benchmark, report):
    """Lowered ZB-V under finite links: contention may only add time."""
    schedule = build_schedule("zb_v", DEPTH, MICRO_BATCHES)
    graph = build_dependency_graph(schedule)
    lowered = lower_schedule(schedule, graph=graph)
    lowered_graph = build_dependency_graph(lowered)
    cm = _cost_model()
    result = benchmark(simulate, lowered, cm, graph=lowered_graph)
    baseline = simulate(schedule, cm, graph=graph)
    assert result.iteration_time >= baseline.iteration_time - 1e-9
    report(
        f"zb_v D={DEPTH} N={MICRO_BATCHES} lowered: "
        f"iteration {result.iteration_time:.2f}s "
        f"(implicit {baseline.iteration_time:.2f}s), "
        f"{len(result.transfers)} transfers"
    )


def test_engine_comparison_table(benchmark, report):
    """The full engine x scheme comparison grid."""
    report(benchmark(run))


if __name__ == "__main__":  # pragma: no cover - CI smoke entry point
    print(run())
