"""Shared benchmark configuration.

Every bench target both *times* its experiment driver (pytest-benchmark)
and *emits* the reproduced table/series — through the capture manager, so
the rows appear in the terminal output of
``pytest benchmarks/ --benchmark-only`` — while also archiving each table
under ``benchmarks/results/``. ``REPRO_BENCH_FULL=1`` switches the drivers
to the paper's full scales (2,048 simulated workers etc.).
"""

import os
import pathlib
import re

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def fast_mode() -> bool:
    return not FULL


@pytest.fixture
def report(request, pytestconfig):
    """Emit text past pytest's capture and archive it per bench target."""
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = re.sub(r"\W+", "_", request.node.name)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print()
                print(text)
        else:  # pragma: no cover - capture disabled
            print()
            print(text)

    return _report


def run_and_print(benchmark, runner, fast: bool, report) -> None:
    """Benchmark ``runner(fast=...)`` and emit its reproduced output."""
    text = benchmark(runner, fast)
    report(text)
