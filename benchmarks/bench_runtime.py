"""Benchmarks of the executable substrates: NumPy training runtime and the
collective algorithms — plus the §4 convergence-equivalence demonstration.
"""

import numpy as np

from repro.models.reference import SequentialTrainer
from repro.models.transformer import TransformerLMConfig, build_transformer_layers
from repro.runtime.collective_algorithms import rabenseifner_allreduce, ring_allreduce
from repro.runtime.optimizers import SGD
from repro.runtime.trainer import PipelineTrainer

CFG = TransformerLMConfig(num_layers=4, dim=32, heads=4, vocab=31, seq=8, seed=3)


def _batches(n, batch=2, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(0, CFG.vocab, (batch, CFG.seq)),
         rng.integers(0, CFG.vocab, (batch, CFG.seq)))
        for _ in range(n)
    ]


def test_chimera_training_step(benchmark):
    trainer = PipelineTrainer(
        CFG, scheme="chimera", depth=4, num_micro_batches=4,
        optimizer_factory=lambda: SGD(0.05),
    )
    data = _batches(4)
    loss = benchmark(trainer.train_step, data)
    assert np.isfinite(loss)


def test_sequential_training_step(benchmark):
    trainer = SequentialTrainer(build_transformer_layers(CFG), SGD(0.05))
    data = _batches(4)
    loss = benchmark(trainer.train_step, data)
    assert np.isfinite(loss)


def test_equivalence_chimera_vs_sgd(benchmark):
    """The §4 convergence claim, as a bench: a full train-and-compare."""

    def train_and_compare() -> float:
        trainer = PipelineTrainer(
            CFG, scheme="chimera", depth=4, num_micro_batches=4,
            optimizer_factory=lambda: SGD(0.05),
        )
        ref = SequentialTrainer(build_transformer_layers(CFG), SGD(0.05))
        for it in range(2):
            data = _batches(4, seed=it)
            trainer.train_step(data)
            ref.train_step(data)
        return max(
            float(np.abs(a.params[k] - b.params[k]).max())
            for a, b in zip(trainer.full_model_layers(), ref.layers)
            for k in a.params
        )

    diff = benchmark(train_and_compare)
    assert diff < 1e-9


def test_ring_allreduce_16_ranks(benchmark):
    bufs = [np.random.default_rng(i).standard_normal(1 << 14) for i in range(16)]
    results, _ = benchmark(ring_allreduce, bufs)
    np.testing.assert_allclose(results[0], np.sum(bufs, axis=0), atol=1e-9)


def test_rabenseifner_allreduce_16_ranks(benchmark):
    bufs = [np.random.default_rng(i).standard_normal(1 << 14) for i in range(16)]
    results, _ = benchmark(rabenseifner_allreduce, bufs)
    np.testing.assert_allclose(results[0], np.sum(bufs, axis=0), atol=1e-9)
