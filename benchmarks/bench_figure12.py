"""Figure 12: gradient synchronization strategies."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure12


def test_figure12_sync_strategies(benchmark, fast_mode, report):
    run_and_print(benchmark, figure12.run, fast_mode, report)
