"""Figure 17: large mini-batches, Bert-48 (concatenation strategies)."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure17


def test_figure17_large_minibatch_bert(benchmark, fast_mode, report):
    run_and_print(benchmark, figure17.run, fast_mode, report)
