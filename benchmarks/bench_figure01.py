"""Figure 1: headline GPT-2 comparison at scale."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure1


def test_figure01_headline(benchmark, fast_mode, report):
    run_and_print(benchmark, figure1.run, fast_mode, report)
