"""Figure 14: weak scaling, Bert-48 on the Piz Daint model."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure14


def test_figure14_weak_scaling_bert(benchmark, fast_mode, report):
    run_and_print(benchmark, figure14.run, fast_mode, report)
