"""Figure 9: memory distribution across 32 workers."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure9


def test_figure09_memory_distribution(benchmark, fast_mode, report):
    run_and_print(benchmark, figure9.run, fast_mode, report)
