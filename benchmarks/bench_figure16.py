"""Figure 16: weak scaling, Bert-48 on the V100 NVLink/IB cluster model."""

from benchmarks.conftest import run_and_print
from repro.bench.experiments import figure16


def test_figure16_v100_cluster(benchmark, fast_mode, report):
    run_and_print(benchmark, figure16.run, fast_mode, report)
