"""Shared primitives: exceptions, unit helpers, and small utilities.

These are deliberately dependency-free so every other subpackage can import
them without cycles.
"""

from repro.common.errors import (
    ReproError,
    ScheduleError,
    ValidationError,
    CommunicationError,
    DeadlockError,
    MemoryModelError,
    ConfigurationError,
)
from repro.common.units import (
    KIB,
    MIB,
    GIB,
    bytes_to_gib,
    gib_to_bytes,
    format_bytes,
    format_time,
)

__all__ = [
    "ReproError",
    "ScheduleError",
    "ValidationError",
    "CommunicationError",
    "DeadlockError",
    "MemoryModelError",
    "ConfigurationError",
    "KIB",
    "MIB",
    "GIB",
    "bytes_to_gib",
    "gib_to_bytes",
    "format_bytes",
    "format_time",
]
