"""Exception hierarchy for the Chimera reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
being able to distinguish failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ScheduleError(ReproError):
    """A pipeline schedule could not be constructed.

    Raised for structurally impossible requests, e.g. an odd number of stages
    for a bidirectional Chimera schedule, or ``N`` not divisible as required
    by a concatenation strategy.
    """


class ValidationError(ReproError):
    """A constructed schedule violates a structural invariant.

    Raised by :mod:`repro.schedules.validate` when a schedule has missing
    operations, duplicated work, cyclic dependencies, or conflicting worker
    occupancy.
    """


class CommunicationError(ReproError):
    """The in-process communication backend detected a protocol violation.

    Examples: receiving on a tag that was never sent within a deadlock-free
    window, mismatched collective group membership, or double-waiting a
    non-blocking handle.
    """


class DeadlockError(CommunicationError):
    """The cooperative executor made no progress over a full round.

    Carries a human-readable report of each worker's blocked operation so
    schedule bugs are diagnosable from the exception message alone.
    """


class KernelConvergenceError(ReproError):
    """The array kernel's fixed-point relaxation failed to converge.

    The contended fast path iterates [longest-path sweep -> per-channel
    FIFO serialization] until transfer queueing delays (and blocking
    collective release times) are exactly stable. The iteration cap is a
    safety net far above any observed schedule; hitting it means the
    relaxation is oscillating and the kernel refuses to return times that
    are not self-consistent. Carries enough context to reproduce: the
    sweep cap and the schedule size.
    """


class MemoryModelError(ReproError):
    """The memory model was asked for an inconsistent accounting.

    For example querying activation liveness for an operation kind it does
    not track, or a device capacity below a single micro-batch footprint.
    """


class ConfigurationError(ReproError):
    """An experiment/machine/workload configuration is invalid.

    E.g. a worker count that does not factor into (W, D), or a micro-batch
    size that does not divide the mini-batch.
    """


class ServiceOverloadError(ReproError):
    """The planner service refused a request due to backpressure.

    ``repro serve`` admits at most a bounded number of in-flight plan
    requests; beyond that it sheds load immediately (HTTP 503) instead of
    queueing unboundedly. Carries the configured capacity so clients can
    size their retry/backoff policy.
    """


class UnknownOptionError(ConfigurationError):
    """A schedule builder received an option it does not understand.

    Raised by :func:`repro.schedules.registry.build_schedule` *before* the
    builder runs, naming the scheme and the offending key — so a typo like
    ``max_inflight`` or an option meant for another scheme fails loudly
    instead of being swallowed by ``**options`` or blowing up as a bare
    ``TypeError`` deep inside a builder.
    """
