"""Byte and time unit helpers.

The simulator works in seconds and bytes internally; these helpers keep the
conversion factors in one place and provide human-readable formatting used by
the Gantt renderer and the benchmark harness tables.
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024**2
GIB: int = 1024**3

#: Seconds per microsecond; the alpha-beta model parameters in the literature
#: are usually quoted in microseconds so this constant shows up in machine
#: specs.
USEC: float = 1e-6


def bytes_to_gib(num_bytes: float) -> float:
    """Convert a byte count to GiB."""
    return num_bytes / GIB


def parse_gib(value: object, *, field: str = "budget") -> float | None:
    """Parse a GiB-denominated size into bytes, validating it.

    The shared conversion behind ``--budget-gib`` and
    ``--host-budget-gib`` (and the serve schema's GiB fields): accepts a
    number (or a numeric string, for CLI/JSON sources) and returns
    bytes; ``None`` passes through as "no budget". Raises
    :class:`~repro.common.errors.ConfigurationError` naming ``field``
    for non-numeric or non-positive sizes.
    """
    from repro.common.errors import ConfigurationError

    if value is None:
        return None
    try:
        gib = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{field} must be a size in GiB, got {value!r}"
        ) from None
    if isinstance(value, bool) or gib != gib or gib <= 0:
        raise ConfigurationError(
            f"{field} must be a positive size in GiB, got {value!r}"
        )
    return gib * GIB


def gib_to_bytes(gib: float) -> float:
    """Convert GiB to bytes."""
    return gib * GIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string.

    >>> format_bytes(3 * GIB)
    '3.00 GiB'
    >>> format_bytes(512)
    '512 B'
    """
    if num_bytes >= GIB:
        return f"{num_bytes / GIB:.2f} GiB"
    if num_bytes >= MIB:
        return f"{num_bytes / MIB:.2f} MiB"
    if num_bytes >= KIB:
        return f"{num_bytes / KIB:.2f} KiB"
    return f"{num_bytes:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration as a short human-readable string.

    >>> format_time(0.0000015)
    '1.50 us'
    """
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"
