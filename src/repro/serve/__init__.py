"""Planner-as-a-service: the ``repro serve`` HTTP/JSON layer.

:mod:`repro.serve.service` is the transport-free core — JSON payload
validation into :class:`~repro.perf.planner.PlanRequest`, bounded-
concurrency admission (backpressure via
:class:`~repro.common.errors.ServiceOverloadError`), per-request timing,
and service counters, with optional multiprocess planning
(``workers=``, via :class:`~repro.perf.workers.PlannerWorkerPool`) and
dynamic request coalescing (``coalesce_ms=``, via
:mod:`repro.serve.coalesce`). :mod:`repro.serve.http` wraps it in a
stdlib :class:`http.server.ThreadingHTTPServer` with graceful shutdown.
Both are dependency-free beyond the standard library, like the rest of
the repo.
"""

from repro.serve.service import PlannerService, ServiceStats
from repro.serve.coalesce import CoalesceStats, RequestCoalescer
from repro.serve.http import PlannerHTTPServer, serve_forever

__all__ = [
    "PlannerService",
    "ServiceStats",
    "RequestCoalescer",
    "CoalesceStats",
    "PlannerHTTPServer",
    "serve_forever",
]
