"""Stdlib HTTP/JSON transport for the planner service.

Endpoints
---------
``GET /healthz``
    Liveness probe; ``{"ok": true}``.
``GET /stats``
    Service counters plus schedule-cache and disk-cache statistics.
``POST /plan``
    One request object; responds with a ranked entry list (or 400 with
    the validation message, 422-style plan failures come back as
    ``{"ok": false, "error": ...}`` with status 200 — the request was
    valid, the search space was empty).
``POST /plan_many``
    A JSON array of request objects; one :func:`repro.perf.planner.plan_many`
    call, one result object per request, order-preserving.

Overload (every admission slot busy) maps to 503, malformed JSON and
validation failures to 400, oversized bodies to 413, everything else to a
500 whose body carries the exception type. Shutdown is graceful:
``SIGINT``/``SIGTERM`` stop the accept loop and in-flight handlers drain
before the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.common.errors import ConfigurationError, ServiceOverloadError
from repro.serve.service import PlannerService

#: Reject request bodies beyond this size before reading them fully.
MAX_BODY_BYTES = 8 * 2**20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the :class:`PlannerService` on the server."""

    server: "PlannerHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: object) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _TooLarge(length)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw or b"null")
        except json.JSONDecodeError as err:
            raise ConfigurationError(f"request body is not valid JSON: {err}")

    # ------------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/stats":
            self._send_json(200, self.server.service.stats_json())
        else:
            self._send_json(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        service = self.server.service
        try:
            payload = self._read_json()
            if self.path == "/plan":
                self._send_json(200, service.plan(payload))
            elif self.path == "/plan_many":
                self._send_json(200, service.plan_batch(payload))
            else:
                self._send_json(
                    404, {"ok": False, "error": f"no route {self.path}"}
                )
        except _TooLarge as err:
            self._send_json(
                413,
                {
                    "ok": False,
                    "error": f"body of {err.length} bytes exceeds "
                    f"{MAX_BODY_BYTES}",
                },
            )
        except ServiceOverloadError as err:
            self._send_json(503, {"ok": False, "error": str(err)})
        except ConfigurationError as err:
            self._send_json(400, {"ok": False, "error": str(err)})
        except Exception as err:  # pragma: no cover - defensive 500
            self._send_json(
                500, {"ok": False, "error": f"{type(err).__name__}: {err}"}
            )


class _TooLarge(Exception):
    def __init__(self, length: int):
        self.length = length


class PlannerHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`PlannerService`.

    ``daemon_threads`` is False on purpose: ``shutdown()`` stops the
    accept loop and then joins in-flight handler threads, so a SIGTERM
    never truncates a response mid-write.
    """

    daemon_threads = False

    def __init__(
        self,
        address: tuple[str, int],
        service: PlannerService | None = None,
        *,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service if service is not None else PlannerService()
        self.verbose = verbose


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8473,
    *,
    service: PlannerService | None = None,
    verbose: bool = True,
    install_signal_handlers: bool = True,
) -> None:
    """Run the planner service until SIGINT/SIGTERM, then drain and exit."""
    server = PlannerHTTPServer((host, port), service, verbose=verbose)
    done = threading.Event()

    def _stop(signum: int, frame: object) -> None:
        # shutdown() must not run on the serve_forever thread; hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()
        done.set()

    if install_signal_handlers:
        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
    host_shown, port_shown = server.server_address[:2]
    print(f"repro serve: listening on http://{host_shown}:{port_shown}")
    try:
        server.serve_forever()
    finally:
        # The accept loop has stopped; in-flight handlers may be blocked
        # on coalescer futures. Draining the service FIRST dispatches
        # everything queued immediately (instead of waiting out the
        # coalescing window) and stops the worker pool, so the
        # handler-thread join inside server_close() — daemon_threads is
        # False — completes promptly and no child process outlives the
        # server.
        server.service.close()
        server.server_close()
        if verbose:
            print("repro serve: drained, bye")
