"""Transport-free core of the planner service.

Validates untrusted JSON payloads into
:class:`~repro.perf.planner.PlanRequest` objects (every rejection is a
distinguished :class:`~repro.common.errors.ConfigurationError` naming the
offending field and the accepted values), admits at most a bounded number
of in-flight plan computations (shedding load with
:class:`~repro.common.errors.ServiceOverloadError` beyond that), and
returns JSON-ready response dictionaries with per-request wall-clock
timing. The HTTP layer (:mod:`repro.serve.http`) is a thin adapter over
this class; tests drive it directly without sockets.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.bench.machines import MACHINES
from repro.bench.workloads import WORKLOADS
from repro.common.errors import ConfigurationError, ServiceOverloadError
from repro.perf.planner import (
    DEFAULT_PLAN_WORKERS,
    PlanEntry,
    PlanOutcome,
    PlanRequest,
    plan_many,
)
from repro.perf.workers import PlannerWorkerPool
from repro.schedules.passes.pipeline import normalize_pipeline
from repro.schedules.registry import available_schemes
from repro.serve.coalesce import (
    DEFAULT_COALESCE_BATCH,
    LATENCY_WINDOW,
    RequestCoalescer,
    percentile,
)

#: Default bound on concurrently admitted plan computations.
DEFAULT_MAX_INFLIGHT = 8

#: Upper bound on the number of requests in one ``plan_many`` payload —
#: a single batch is one admission slot, so this caps per-call work.
DEFAULT_MAX_BATCH = 4096

_REQUEST_FIELDS = {
    "machine",
    "workload",
    "num_workers",
    "mini_batch",
    "memory_budget_bytes",
    "schemes",
    "min_depth",
    "max_micro_batch",
    "lowered",
    "fused",
    "recompute",
    "top_k",
    "pipeline",
    "offload",
    "host_memory_budget_bytes",
}


def _require_int(payload: dict, key: str, *, default: object = None) -> object:
    value = payload.get(key, default)
    if value is default and default is not None:
        return default
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(
            f"field '{key}' must be an integer, got {value!r}"
        )
    return value


def parse_plan_request(payload: object) -> PlanRequest:
    """Validate one JSON request object into a :class:`PlanRequest`.

    Raises
    ------
    ConfigurationError
        Naming the missing/unknown field, the bad type, or the unknown
        machine/workload together with the accepted names — the message
        is the HTTP 400 body, so it has to be actionable on its own.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown request field(s) {unknown}; accepted fields are "
            f"{sorted(_REQUEST_FIELDS)}"
        )
    for required in ("machine", "workload", "num_workers", "mini_batch"):
        if required not in payload:
            raise ConfigurationError(f"missing required field '{required}'")

    machine_name = payload["machine"]
    machine = MACHINES.get(machine_name)
    if machine is None:
        raise ConfigurationError(
            f"unknown machine {machine_name!r}; available machines: "
            f"{sorted(MACHINES)}"
        )
    workload_name = payload["workload"]
    workload = WORKLOADS.get(workload_name)
    if workload is None:
        raise ConfigurationError(
            f"unknown workload {workload_name!r}; available workloads: "
            f"{sorted(WORKLOADS)}"
        )

    num_workers = _require_int(payload, "num_workers")
    mini_batch = _require_int(payload, "mini_batch")

    budgets = {}
    for key in ("memory_budget_bytes", "host_memory_budget_bytes"):
        budgets[key] = payload.get(key)
        if budgets[key] is not None and (
            not isinstance(budgets[key], (int, float))
            or isinstance(budgets[key], bool)
        ):
            raise ConfigurationError(
                f"field '{key}' must be a number or null, got {budgets[key]!r}"
            )

    schemes = payload.get("schemes")
    if schemes is not None:
        if not isinstance(schemes, (list, tuple)) or not all(
            isinstance(s, str) for s in schemes
        ):
            raise ConfigurationError(
                f"field 'schemes' must be a list of scheme names, got "
                f"{schemes!r}; registered schemes: {list(available_schemes())}"
            )
        schemes = tuple(schemes)

    for flag in ("lowered", "fused"):
        if flag in payload and not isinstance(payload[flag], bool):
            raise ConfigurationError(
                f"field '{flag}' must be a boolean, got {payload[flag]!r}"
            )
    for axis in ("recompute", "offload"):
        if payload.get(axis) is not None and not isinstance(
            payload[axis], bool
        ):
            raise ConfigurationError(
                f"field '{axis}' must be a boolean or null, "
                f"got {payload[axis]!r}"
            )
    top_k = payload.get("top_k")
    if top_k is not None:
        top_k = _require_int(payload, "top_k")

    pipeline = payload.get("pipeline")
    if pipeline is not None:
        if not isinstance(pipeline, str) and not (
            isinstance(pipeline, (list, tuple))
            and all(isinstance(s, str) for s in pipeline)
        ):
            raise ConfigurationError(
                f"field 'pipeline' must be a comma-separated string or a "
                f"list of pass names, got {pipeline!r}"
            )
        try:
            pipeline = normalize_pipeline(pipeline)
        except ConfigurationError as err:
            # The pass-registry error already enumerates the registered
            # pass names; prefix the offending field for the 400 body.
            raise ConfigurationError(f"field 'pipeline': {err}") from None

    return PlanRequest(
        machine=machine,
        workload=workload,
        num_workers=num_workers,
        mini_batch=mini_batch,
        memory_budget_bytes=budgets["memory_budget_bytes"],
        schemes=schemes,
        min_depth=_require_int(payload, "min_depth", default=2),
        max_micro_batch=_require_int(payload, "max_micro_batch", default=512),
        lowered=payload.get("lowered", True),
        fused=payload.get("fused", False),
        recompute=payload.get("recompute"),
        top_k=top_k,
        pipeline=pipeline,
        offload=payload.get("offload"),
        host_memory_budget_bytes=budgets["host_memory_budget_bytes"],
    )


def entry_to_json(entry: PlanEntry) -> dict:
    """One ranked configuration as a JSON-ready dictionary."""
    return {
        "label": entry.label(),
        "scheme": entry.scheme,
        "width": entry.width,
        "depth": entry.depth,
        "micro_batch": entry.micro_batch,
        "num_micro_batches": entry.num_micro_batches,
        "recompute": entry.recompute,
        "pipeline": list(entry.pipeline),
        "iteration_time": entry.iteration_time,
        "throughput": entry.throughput,
        "bubble_ratio": entry.bubble_ratio,
        "peak_memory_bytes": entry.peak_memory_bytes,
        "host_peak_memory_bytes": entry.host_peak_memory_bytes,
    }


def outcome_to_json(outcome: PlanOutcome) -> dict:
    """One per-request outcome: a ranking or a structured error."""
    if outcome.error is not None:
        return {"ok": False, "error": str(outcome.error)}
    return {
        "ok": True,
        "entries": [entry_to_json(e) for e in outcome.entries],
    }


@dataclass(frozen=True)
class ServiceStats:
    """Cumulative counters (and one gauge) of one :class:`PlannerService`.

    ``inflight`` is the number of admission slots held at the instant of
    the snapshot; it must return to zero when no request is executing —
    the regression signal for admission-slot leaks on error paths.

    ``busy_seconds`` sums the wall-clock of every planning batch — and
    batches overlap (``max_inflight`` admission slots, plus coalesced
    dispatches running beside direct ``/plan_many`` calls), so it can
    exceed real elapsed time. It measures *demand*, not duty cycle.
    ``uptime_s`` is the monotonic age of the service at the snapshot;
    ``busy_seconds / uptime_s`` is the average number of concurrently
    executing batches (a utilization > 1.0 means real overlap, not a
    bug). ``batch_p50_ms``/``batch_p99_ms`` are per-batch wall-clock
    percentiles over the last :data:`~repro.serve.coalesce.LATENCY_WINDOW`
    batches.
    """

    requests: int
    batches: int
    rejected_overload: int
    rejected_invalid: int
    plan_errors: int
    busy_seconds: float
    inflight: int
    uptime_s: float
    batch_p50_ms: float
    batch_p99_ms: float


class PlannerService:
    """Bounded-concurrency planning core shared by every transport.

    ``max_inflight`` admission slots are taken per *call* (a batch counts
    once — its internal parallelism is :func:`plan_many`'s worker pool).
    When every slot is busy the service sheds load immediately instead of
    queueing unboundedly: the caller gets
    :class:`~repro.common.errors.ServiceOverloadError` (HTTP 503) and is
    expected to retry with backoff.

    Two optional tiers lift the single-process ceiling:

    * ``workers > 0`` starts a
      :class:`~repro.perf.workers.PlannerWorkerPool` of that many
      long-lived planner processes and routes every batch through
      ``plan_many(backend="process")`` — CPU-bound planning escapes the
      GIL while handler threads stay cheap.
    * ``coalesce_ms > 0`` routes single ``/plan`` calls through a
      :class:`~repro.serve.coalesce.RequestCoalescer`: a burst of K
      concurrent clients merges into far fewer than K batched
      ``plan_many`` dispatches. Coalesced dispatches are issued by one
      dispatcher thread, which bounds their concurrency by construction,
      so they bypass the admission semaphore (the bounded queue sheds
      load instead); explicit ``/plan_many`` batches still take a slot.

    :meth:`close` drains gracefully: the coalescer finishes everything
    queued (resolving every caller's future), then the worker pool stops.
    """

    def __init__(
        self,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_batch: int = DEFAULT_MAX_BATCH,
        plan_workers: int = DEFAULT_PLAN_WORKERS,
        workers: int = 0,
        coalesce_ms: float = 0.0,
        coalesce_batch: int = DEFAULT_COALESCE_BATCH,
    ):
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if coalesce_ms < 0:
            raise ConfigurationError(
                f"coalesce_ms must be >= 0, got {coalesce_ms}"
            )
        self.max_inflight = max_inflight
        self.max_batch = max_batch
        self.plan_workers = plan_workers
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._rejected_overload = 0
        self._rejected_invalid = 0
        self._plan_errors = 0
        self._busy_seconds = 0.0
        self._inflight = 0
        self._batch_walls: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._started = time.monotonic()
        self._closed = False
        self._pool = (
            PlannerWorkerPool(workers, name="serve") if workers > 0 else None
        )
        self._coalescer = (
            RequestCoalescer(
                self._dispatch_coalesced,
                coalesce_ms=coalesce_ms,
                max_batch=coalesce_batch,
            )
            if coalesce_ms > 0
            else None
        )

    # ----------------------------------------------------------- endpoints
    def plan(self, payload: object) -> dict:
        """Plan one request; the response embeds per-request timing.

        With coalescing enabled the call enqueues and blocks on its
        future — concurrent callers share one batched ``plan_many``
        dispatch and ``elapsed_s`` reports that shared batch wall.
        """
        if self._coalescer is None:
            response = self.plan_batch([payload])
            (result,) = response["results"]
            result["elapsed_s"] = response["elapsed_s"]
            return result
        try:
            request = parse_plan_request(payload)
        except ConfigurationError:
            with self._lock:
                self._rejected_invalid += 1
            raise
        try:
            future = self._coalescer.submit(request)
        except ServiceOverloadError:
            with self._lock:
                self._rejected_overload += 1
            raise
        return future.result()

    def _dispatch_coalesced(self, requests: list) -> list:
        """Plan one drained coalescer batch; called by its dispatcher
        thread only, so concurrency is bounded without taking a slot."""
        outcomes, elapsed = self._run_batch(requests)
        results = []
        for outcome in outcomes:
            result = outcome_to_json(outcome)
            result["elapsed_s"] = elapsed
            results.append(result)
        return results

    def plan_batch(self, payloads: object) -> dict:
        """Plan a batch of requests as one :func:`plan_many` call."""
        if not isinstance(payloads, (list, tuple)):
            with self._lock:
                self._rejected_invalid += 1
            raise ConfigurationError(
                f"batch body must be a JSON array of request objects, got "
                f"{type(payloads).__name__}"
            )
        if len(payloads) > self.max_batch:
            with self._lock:
                self._rejected_invalid += 1
            raise ConfigurationError(
                f"batch of {len(payloads)} exceeds max_batch="
                f"{self.max_batch}; split the batch"
            )
        try:
            requests = [parse_plan_request(p) for p in payloads]
        except ConfigurationError:
            with self._lock:
                self._rejected_invalid += 1
            raise
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self._rejected_overload += 1
            raise ServiceOverloadError(
                f"planner at capacity ({self.max_inflight} in-flight "
                f"requests); retry with backoff"
            )
        # Everything after a successful acquire sits inside one try/finally:
        # the slot (and the in-flight gauge) must be returned no matter
        # where planning — or even the timing bookkeeping — raises. The old
        # shape started the timer *between* acquire and try, a window where
        # an exception leaked the slot permanently.
        try:
            outcomes, elapsed = self._run_batch(requests)
        finally:
            self._slots.release()
        return {
            "results": [outcome_to_json(o) for o in outcomes],
            "elapsed_s": elapsed,
        }

    def _run_batch(self, requests: list) -> tuple[list, float]:
        """Execute one ``plan_many`` batch with full stats bookkeeping.

        Shared by the admission-gated :meth:`plan_batch` path and the
        coalescer dispatch; the in-flight gauge must return to zero on
        every exit, including when planning itself raises.
        """
        try:
            with self._lock:
                self._inflight += 1
            start = time.perf_counter()
            try:
                if self._pool is not None:
                    outcomes = plan_many(
                        requests,
                        max_workers=self.plan_workers,
                        backend="process",
                        pool=self._pool,
                    )
                else:
                    outcomes = plan_many(requests, max_workers=self.plan_workers)
            finally:
                elapsed = time.perf_counter() - start
                with self._lock:
                    self._requests += len(requests)
                    self._batches += 1
                    self._busy_seconds += elapsed
                    self._batch_walls.append(elapsed)
        finally:
            with self._lock:
                self._inflight -= 1
        with self._lock:
            self._plan_errors += sum(1 for o in outcomes if not o.ok)
        return outcomes, elapsed

    # ------------------------------------------------------------ lifecycle
    def close(self, timeout: float | None = 60.0) -> None:
        """Graceful drain: the coalescer dispatches everything already
        queued (every blocked caller's future resolves), then the worker
        pool finishes in-flight shards and its processes join. New
        submissions are shed during the drain. Idempotent."""
        self._closed = True
        if self._coalescer is not None:
            self._coalescer.close(timeout)
        if self._pool is not None:
            self._pool.stop(timeout if timeout is not None else 60.0)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # --------------------------------------------------------------- stats
    def stats(self) -> ServiceStats:
        with self._lock:
            walls = sorted(self._batch_walls)
            return ServiceStats(
                requests=self._requests,
                batches=self._batches,
                rejected_overload=self._rejected_overload,
                rejected_invalid=self._rejected_invalid,
                plan_errors=self._plan_errors,
                busy_seconds=self._busy_seconds,
                inflight=self._inflight,
                uptime_s=time.monotonic() - self._started,
                batch_p50_ms=percentile(walls, 0.50) * 1e3,
                batch_p99_ms=percentile(walls, 0.99) * 1e3,
            )

    def stats_json(self) -> dict:
        stats = self.stats()
        from repro.schedules.cache import disk_cache_stats, schedule_cache_stats

        mem = schedule_cache_stats()
        disk = disk_cache_stats()
        payload = {
            "requests": stats.requests,
            "batches": stats.batches,
            "rejected_overload": stats.rejected_overload,
            "rejected_invalid": stats.rejected_invalid,
            "plan_errors": stats.plan_errors,
            "busy_seconds": stats.busy_seconds,
            "inflight": stats.inflight,
            "uptime_s": stats.uptime_s,
            "batch_p50_ms": stats.batch_p50_ms,
            "batch_p99_ms": stats.batch_p99_ms,
            "schedule_cache": {
                "hits": mem.hits,
                "misses": mem.misses,
                "entries": mem.entries,
                "hit_rate": mem.hit_rate,
            },
        }
        if self._coalescer is not None:
            co = self._coalescer.stats()
            payload["coalesce"] = {
                "enqueued": co.enqueued,
                "dispatched": co.dispatched,
                "batches": co.batches,
                "coalesced_requests": co.coalesced,
                "queue_depth": co.queue_depth,
                "p50_ms": co.p50_ms,
                "p99_ms": co.p99_ms,
            }
        if self._pool is not None:
            wp = self._pool.stats()
            payload["workers"] = {
                "configured": wp.workers,
                "alive": wp.alive,
                "pids": list(wp.pids),
                "pending": wp.pending,
                "completed": wp.completed,
                "failed": wp.failed,
            }
        if disk is not None:
            payload["disk_cache"] = {
                "hits": disk.hits,
                "misses": disk.misses,
                "stores": disk.stores,
                "evictions": disk.evictions,
                "entries": disk.entries,
                "total_bytes": disk.total_bytes,
                "hit_rate": disk.hit_rate,
            }
        return payload
