"""Transport-free core of the planner service.

Validates untrusted JSON payloads into
:class:`~repro.perf.planner.PlanRequest` objects (every rejection is a
distinguished :class:`~repro.common.errors.ConfigurationError` naming the
offending field and the accepted values), admits at most a bounded number
of in-flight plan computations (shedding load with
:class:`~repro.common.errors.ServiceOverloadError` beyond that), and
returns JSON-ready response dictionaries with per-request wall-clock
timing. The HTTP layer (:mod:`repro.serve.http`) is a thin adapter over
this class; tests drive it directly without sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.bench.machines import MACHINES
from repro.bench.workloads import WORKLOADS
from repro.common.errors import ConfigurationError, ServiceOverloadError
from repro.perf.planner import (
    DEFAULT_PLAN_WORKERS,
    PlanEntry,
    PlanOutcome,
    PlanRequest,
    plan_many,
)
from repro.schedules.passes.pipeline import normalize_pipeline
from repro.schedules.registry import available_schemes

#: Default bound on concurrently admitted plan computations.
DEFAULT_MAX_INFLIGHT = 8

#: Upper bound on the number of requests in one ``plan_many`` payload —
#: a single batch is one admission slot, so this caps per-call work.
DEFAULT_MAX_BATCH = 4096

_REQUEST_FIELDS = {
    "machine",
    "workload",
    "num_workers",
    "mini_batch",
    "memory_budget_bytes",
    "schemes",
    "min_depth",
    "max_micro_batch",
    "lowered",
    "fused",
    "recompute",
    "top_k",
    "pipeline",
    "offload",
    "host_memory_budget_bytes",
}


def _require_int(payload: dict, key: str, *, default: object = None) -> object:
    value = payload.get(key, default)
    if value is default and default is not None:
        return default
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(
            f"field '{key}' must be an integer, got {value!r}"
        )
    return value


def parse_plan_request(payload: object) -> PlanRequest:
    """Validate one JSON request object into a :class:`PlanRequest`.

    Raises
    ------
    ConfigurationError
        Naming the missing/unknown field, the bad type, or the unknown
        machine/workload together with the accepted names — the message
        is the HTTP 400 body, so it has to be actionable on its own.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown request field(s) {unknown}; accepted fields are "
            f"{sorted(_REQUEST_FIELDS)}"
        )
    for required in ("machine", "workload", "num_workers", "mini_batch"):
        if required not in payload:
            raise ConfigurationError(f"missing required field '{required}'")

    machine_name = payload["machine"]
    machine = MACHINES.get(machine_name)
    if machine is None:
        raise ConfigurationError(
            f"unknown machine {machine_name!r}; available machines: "
            f"{sorted(MACHINES)}"
        )
    workload_name = payload["workload"]
    workload = WORKLOADS.get(workload_name)
    if workload is None:
        raise ConfigurationError(
            f"unknown workload {workload_name!r}; available workloads: "
            f"{sorted(WORKLOADS)}"
        )

    num_workers = _require_int(payload, "num_workers")
    mini_batch = _require_int(payload, "mini_batch")

    budgets = {}
    for key in ("memory_budget_bytes", "host_memory_budget_bytes"):
        budgets[key] = payload.get(key)
        if budgets[key] is not None and (
            not isinstance(budgets[key], (int, float))
            or isinstance(budgets[key], bool)
        ):
            raise ConfigurationError(
                f"field '{key}' must be a number or null, got {budgets[key]!r}"
            )

    schemes = payload.get("schemes")
    if schemes is not None:
        if not isinstance(schemes, (list, tuple)) or not all(
            isinstance(s, str) for s in schemes
        ):
            raise ConfigurationError(
                f"field 'schemes' must be a list of scheme names, got "
                f"{schemes!r}; registered schemes: {list(available_schemes())}"
            )
        schemes = tuple(schemes)

    for flag in ("lowered", "fused"):
        if flag in payload and not isinstance(payload[flag], bool):
            raise ConfigurationError(
                f"field '{flag}' must be a boolean, got {payload[flag]!r}"
            )
    for axis in ("recompute", "offload"):
        if payload.get(axis) is not None and not isinstance(
            payload[axis], bool
        ):
            raise ConfigurationError(
                f"field '{axis}' must be a boolean or null, "
                f"got {payload[axis]!r}"
            )
    top_k = payload.get("top_k")
    if top_k is not None:
        top_k = _require_int(payload, "top_k")

    pipeline = payload.get("pipeline")
    if pipeline is not None:
        if not isinstance(pipeline, str) and not (
            isinstance(pipeline, (list, tuple))
            and all(isinstance(s, str) for s in pipeline)
        ):
            raise ConfigurationError(
                f"field 'pipeline' must be a comma-separated string or a "
                f"list of pass names, got {pipeline!r}"
            )
        try:
            pipeline = normalize_pipeline(pipeline)
        except ConfigurationError as err:
            # The pass-registry error already enumerates the registered
            # pass names; prefix the offending field for the 400 body.
            raise ConfigurationError(f"field 'pipeline': {err}") from None

    return PlanRequest(
        machine=machine,
        workload=workload,
        num_workers=num_workers,
        mini_batch=mini_batch,
        memory_budget_bytes=budgets["memory_budget_bytes"],
        schemes=schemes,
        min_depth=_require_int(payload, "min_depth", default=2),
        max_micro_batch=_require_int(payload, "max_micro_batch", default=512),
        lowered=payload.get("lowered", True),
        fused=payload.get("fused", False),
        recompute=payload.get("recompute"),
        top_k=top_k,
        pipeline=pipeline,
        offload=payload.get("offload"),
        host_memory_budget_bytes=budgets["host_memory_budget_bytes"],
    )


def entry_to_json(entry: PlanEntry) -> dict:
    """One ranked configuration as a JSON-ready dictionary."""
    return {
        "label": entry.label(),
        "scheme": entry.scheme,
        "width": entry.width,
        "depth": entry.depth,
        "micro_batch": entry.micro_batch,
        "num_micro_batches": entry.num_micro_batches,
        "recompute": entry.recompute,
        "pipeline": list(entry.pipeline),
        "iteration_time": entry.iteration_time,
        "throughput": entry.throughput,
        "bubble_ratio": entry.bubble_ratio,
        "peak_memory_bytes": entry.peak_memory_bytes,
        "host_peak_memory_bytes": entry.host_peak_memory_bytes,
    }


def outcome_to_json(outcome: PlanOutcome) -> dict:
    """One per-request outcome: a ranking or a structured error."""
    if outcome.error is not None:
        return {"ok": False, "error": str(outcome.error)}
    return {
        "ok": True,
        "entries": [entry_to_json(e) for e in outcome.entries],
    }


@dataclass(frozen=True)
class ServiceStats:
    """Cumulative counters (and one gauge) of one :class:`PlannerService`.

    ``inflight`` is the number of admission slots held at the instant of
    the snapshot; it must return to zero when no request is executing —
    the regression signal for admission-slot leaks on error paths.
    """

    requests: int
    batches: int
    rejected_overload: int
    rejected_invalid: int
    plan_errors: int
    busy_seconds: float
    inflight: int


class PlannerService:
    """Bounded-concurrency planning core shared by every transport.

    ``max_inflight`` admission slots are taken per *call* (a batch counts
    once — its internal parallelism is :func:`plan_many`'s worker pool).
    When every slot is busy the service sheds load immediately instead of
    queueing unboundedly: the caller gets
    :class:`~repro.common.errors.ServiceOverloadError` (HTTP 503) and is
    expected to retry with backoff.
    """

    def __init__(
        self,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_batch: int = DEFAULT_MAX_BATCH,
        plan_workers: int = DEFAULT_PLAN_WORKERS,
    ):
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.max_inflight = max_inflight
        self.max_batch = max_batch
        self.plan_workers = plan_workers
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._rejected_overload = 0
        self._rejected_invalid = 0
        self._plan_errors = 0
        self._busy_seconds = 0.0
        self._inflight = 0

    # ----------------------------------------------------------- endpoints
    def plan(self, payload: object) -> dict:
        """Plan one request; the response embeds per-request timing."""
        response = self.plan_batch([payload])
        (result,) = response["results"]
        result["elapsed_s"] = response["elapsed_s"]
        return result

    def plan_batch(self, payloads: object) -> dict:
        """Plan a batch of requests as one :func:`plan_many` call."""
        if not isinstance(payloads, (list, tuple)):
            with self._lock:
                self._rejected_invalid += 1
            raise ConfigurationError(
                f"batch body must be a JSON array of request objects, got "
                f"{type(payloads).__name__}"
            )
        if len(payloads) > self.max_batch:
            with self._lock:
                self._rejected_invalid += 1
            raise ConfigurationError(
                f"batch of {len(payloads)} exceeds max_batch="
                f"{self.max_batch}; split the batch"
            )
        try:
            requests = [parse_plan_request(p) for p in payloads]
        except ConfigurationError:
            with self._lock:
                self._rejected_invalid += 1
            raise
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self._rejected_overload += 1
            raise ServiceOverloadError(
                f"planner at capacity ({self.max_inflight} in-flight "
                f"requests); retry with backoff"
            )
        # Everything after a successful acquire sits inside one try/finally:
        # the slot (and the in-flight gauge) must be returned no matter
        # where planning — or even the timing bookkeeping — raises. The old
        # shape started the timer *between* acquire and try, a window where
        # an exception leaked the slot permanently.
        try:
            with self._lock:
                self._inflight += 1
            start = time.perf_counter()
            try:
                outcomes = plan_many(requests, max_workers=self.plan_workers)
            finally:
                elapsed = time.perf_counter() - start
                with self._lock:
                    self._requests += len(requests)
                    self._batches += 1
                    self._busy_seconds += elapsed
        finally:
            self._slots.release()
            with self._lock:
                self._inflight -= 1
        with self._lock:
            self._plan_errors += sum(1 for o in outcomes if not o.ok)
        return {
            "results": [outcome_to_json(o) for o in outcomes],
            "elapsed_s": elapsed,
        }

    # --------------------------------------------------------------- stats
    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                requests=self._requests,
                batches=self._batches,
                rejected_overload=self._rejected_overload,
                rejected_invalid=self._rejected_invalid,
                plan_errors=self._plan_errors,
                busy_seconds=self._busy_seconds,
                inflight=self._inflight,
            )

    def stats_json(self) -> dict:
        stats = self.stats()
        from repro.schedules.cache import disk_cache_stats, schedule_cache_stats

        mem = schedule_cache_stats()
        disk = disk_cache_stats()
        payload = {
            "requests": stats.requests,
            "batches": stats.batches,
            "rejected_overload": stats.rejected_overload,
            "rejected_invalid": stats.rejected_invalid,
            "plan_errors": stats.plan_errors,
            "busy_seconds": stats.busy_seconds,
            "inflight": stats.inflight,
            "schedule_cache": {
                "hits": mem.hits,
                "misses": mem.misses,
                "entries": mem.entries,
                "hit_rate": mem.hit_rate,
            },
        }
        if disk is not None:
            payload["disk_cache"] = {
                "hits": disk.hits,
                "misses": disk.misses,
                "stores": disk.stores,
                "evictions": disk.evictions,
                "entries": disk.entries,
                "total_bytes": disk.total_bytes,
                "hit_rate": disk.hit_rate,
            }
        return payload
