"""Dynamic request coalescing: the micro-batching front-end of ``/plan``.

A burst of K independent single-request clients used to cost K separate
planner invocations, each paying admission, context setup, and a
one-request :func:`~repro.perf.planner.plan_many` — while ``plan_many``
exists precisely to amortize that work across a batch (identical
requests collapse outright; distinct ones share memory reports and one
kernel call). :class:`RequestCoalescer` closes the gap the way
production inference servers do (dynamic batching): concurrent callers
enqueue and block on a per-call future, a single dispatcher thread
drains up to ``max_batch`` requests once the **oldest** has waited
``coalesce_ms`` (or the batch is full, or the queue is closing), issues
one batched dispatch, and fans the per-request results back out.

The window bounds added latency: a lone request waits at most
``coalesce_ms`` beyond its own planning time, and a full batch departs
immediately. The queue is bounded — beyond ``max_queue`` waiting
requests, :meth:`RequestCoalescer.submit` sheds load with
:class:`~repro.common.errors.ServiceOverloadError` exactly like the
admission semaphore, so memory cannot grow without bound under overload.

:meth:`RequestCoalescer.close` is a graceful drain: no new submissions
are accepted, everything already queued is dispatched (drain means
finish, not cancel), every future resolves, and the dispatcher thread
joins. :class:`~repro.serve.service.PlannerService` wires this into
SIGTERM handling ahead of stopping the worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ConfigurationError, ServiceOverloadError

#: Default cap on one coalesced dispatch.
DEFAULT_COALESCE_BATCH = 64

#: Default bound on waiting requests before load shedding.
DEFAULT_MAX_QUEUE = 1024

#: Per-request latency samples retained for the p50/p99 gauges.
LATENCY_WINDOW = 4096


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample (0.0 empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


@dataclass(frozen=True)
class CoalesceStats:
    """Counters and gauges of one :class:`RequestCoalescer`.

    ``coalesced`` counts requests that shared a dispatch with at least
    one other (``dispatched - batches``) — the headline gauge: a burst
    of K clients lands in far fewer than K dispatches exactly when this
    is positive. ``p50_ms``/``p99_ms`` are end-to-end batch latency per
    request (enqueue to result fan-out) over the last
    :data:`LATENCY_WINDOW` requests.
    """

    enqueued: int
    dispatched: int
    batches: int
    coalesced: int
    queue_depth: int
    p50_ms: float
    p99_ms: float


class RequestCoalescer:
    """Bounded micro-batching queue in front of a batched dispatch.

    ``dispatch`` receives a list of queued items and must return one
    result per item, in order; an exception fails every future of that
    batch. The dispatcher thread is the only caller of ``dispatch``, so
    a coalescer adds no concurrency of its own — it *removes* redundant
    concurrency by merging callers into one batched call.
    """

    def __init__(
        self,
        dispatch: Callable[[list], list],
        *,
        coalesce_ms: float,
        max_batch: int = DEFAULT_COALESCE_BATCH,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ):
        if coalesce_ms < 0:
            raise ConfigurationError(
                f"coalesce_ms must be >= 0, got {coalesce_ms}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        self._dispatch = dispatch
        self._window_s = coalesce_ms / 1e3
        self._max_batch = max_batch
        self._max_queue = max_queue
        self._cond = threading.Condition()
        self._queue: deque[tuple[object, Future, float]] = deque()
        self._closed = False
        self._enqueued = 0
        self._dispatched = 0
        self._batches = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._thread = threading.Thread(
            target=self._run, name="repro-coalescer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------ submission
    def submit(self, item: object) -> Future:
        """Enqueue one item; the future resolves to its dispatch result.

        Raises
        ------
        ServiceOverloadError
            When the queue is at ``max_queue`` (retry with backoff) or
            the coalescer is draining for shutdown.
        """
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise ServiceOverloadError(
                    "service is draining for shutdown; no new requests"
                )
            if len(self._queue) >= self._max_queue:
                raise ServiceOverloadError(
                    f"coalescing queue full ({self._max_queue} waiting "
                    f"requests); retry with backoff"
                )
            self._queue.append((item, future, time.monotonic()))
            self._enqueued += 1
            self._cond.notify()
        return future

    # ------------------------------------------------------------ dispatcher
    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._queue:
                        if self._closed or len(self._queue) >= self._max_batch:
                            break
                        remaining = (
                            self._queue[0][2] + self._window_s - time.monotonic()
                        )
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                    else:
                        if self._closed:
                            return
                        self._cond.wait()
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self._max_batch, len(self._queue)))
                ]
            self._dispatch_batch(batch)

    def _dispatch_batch(self, batch: list[tuple[object, Future, float]]) -> None:
        items = [item for item, _, _ in batch]
        try:
            results = self._dispatch(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"coalesced dispatch returned {len(results)} results "
                    f"for {len(items)} requests"
                )
        except BaseException as err:  # noqa: BLE001 - fanned out to callers
            done = time.monotonic()
            with self._cond:
                self._batches += 1
                self._dispatched += len(batch)
                for _, _, enqueued_at in batch:
                    self._latencies.append(done - enqueued_at)
            for _, future, _ in batch:
                future.set_exception(err)
            return
        done = time.monotonic()
        with self._cond:
            self._batches += 1
            self._dispatched += len(batch)
            for _, _, enqueued_at in batch:
                self._latencies.append(done - enqueued_at)
        for (_, future, _), result in zip(batch, results):
            future.set_result(result)

    # ------------------------------------------------------------- lifecycle
    def close(self, timeout: float | None = None) -> None:
        """Drain and stop: queued requests dispatch, futures resolve,
        the dispatcher thread joins. Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    # ----------------------------------------------------------------- stats
    def stats(self) -> CoalesceStats:
        with self._cond:
            latencies = sorted(self._latencies)
            return CoalesceStats(
                enqueued=self._enqueued,
                dispatched=self._dispatched,
                batches=self._batches,
                coalesced=self._dispatched - self._batches,
                queue_depth=len(self._queue),
                p50_ms=percentile(latencies, 0.50) * 1e3,
                p99_ms=percentile(latencies, 0.99) * 1e3,
            )
