"""Sequential mini-batch SGD reference implementation.

This is the ground truth the paper's convergence argument appeals to:
synchronous pipeline schemes are *algorithmically equivalent* to standard
mini-batch SGD. The integration tests train the same model through the
pipeline runtime and through this reference and require (numerically) equal
weights.
"""

from __future__ import annotations

import numpy as np

from repro.models.layers import Layer
from repro.models.loss import softmax_cross_entropy
from repro.runtime.optimizers import Optimizer


class SequentialTrainer:
    """Plain single-process training over micro-batches.

    Gradients are averaged over micro-batches exactly like the pipeline
    runtime does (per-micro-batch token mean, then mean over micro-batches),
    so the two paths are comparable term by term.
    """

    def __init__(self, layers: list[Layer], optimizer: Optimizer) -> None:
        self.layers = layers
        self.optimizer = optimizer

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, list]:
        caches = []
        x = tokens
        for layer in self.layers:
            x, cache = layer.forward(x)
            caches.append(cache)
        return x, caches

    def backward(self, dlogits: np.ndarray, caches: list) -> None:
        dy = dlogits
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache)

    def train_step(
        self, micro_batches: list[tuple[np.ndarray, np.ndarray]]
    ) -> float:
        """One optimizer step over a mini-batch split into micro-batches.

        Returns the mini-batch loss (mean of per-micro-batch losses).
        """
        for layer in self.layers:
            layer.zero_grads()
        total_loss = 0.0
        for tokens, targets in micro_batches:
            logits, caches = self.forward(tokens)
            loss, dlogits = softmax_cross_entropy(logits, targets)
            total_loss += loss
            self.backward(dlogits, caches)
        n = len(micro_batches)
        for layer in self.layers:
            for g in layer.grads.values():
                g /= n
        self.optimizer.step(self.layers)
        return total_loss / n

    def loss_only(self, micro_batches: list[tuple[np.ndarray, np.ndarray]]) -> float:
        """Evaluate the mean loss without touching gradients or weights."""
        total = 0.0
        for tokens, targets in micro_batches:
            x = tokens
            for layer in self.layers:
                x, _ = layer.forward(x)
            loss, _ = softmax_cross_entropy(x, targets)
            total += loss
        return total / len(micro_batches)
