"""Layer primitives with explicit parameter/gradient stores.

Conventions
-----------
* ``forward(x) -> (y, cache)``: the caller owns the cache — this is what
  lets a pipeline stage keep several micro-batches in flight (one cache per
  micro-batch) and what makes activation recomputation trivial (drop the
  cache, re-run forward later).
* ``backward(dy, cache, row_slice=None) -> dx``: accumulates parameter
  gradients into ``self.grads``. ``row_slice`` restricts the backward to a
  contiguous slice of the micro-batch (batch axis 0) — the backward-halving
  execution path.
* Parameters and gradients are plain dicts of arrays; optimizers and the
  communication backend operate on those dicts directly (mpi4py-style
  buffer passing, no framework indirection).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.models import functional as F


def _sliced(cache_entry, row_slice):
    if row_slice is None:
        return cache_entry
    return cache_entry[row_slice]


class Layer:
    """Base class: parameter registry plus the forward/backward contract."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def register(self, name: str, value: np.ndarray) -> None:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g[...] = 0.0

    def num_params(self) -> int:
        return sum(p.size for p in self.params.values())

    # Subclasses implement:
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        raise NotImplementedError

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        raise NotImplementedError


class Linear(Layer):
    """Affine map over the last axis: ``y = x @ W + b``."""

    def __init__(
        self, in_dim: int, out_dim: int, *, rng: np.random.Generator, dtype=np.float64
    ) -> None:
        super().__init__()
        scale = 1.0 / np.sqrt(in_dim)
        self.register(
            "W", (rng.standard_normal((in_dim, out_dim)) * scale).astype(dtype)
        )
        self.register("b", np.zeros(out_dim, dtype=dtype))

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        return x @ self.params["W"] + self.params["b"], x

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        x = _sliced(cache, row_slice)
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dy = dy.reshape(-1, dy.shape[-1])
        self.grads["W"] += flat_x.T @ flat_dy
        self.grads["b"] += flat_dy.sum(axis=0)
        return dy @ self.params["W"].T


class LayerNorm(Layer):
    """LayerNorm over the last axis with learned gain/bias."""

    def __init__(self, dim: int, *, dtype=np.float64) -> None:
        super().__init__()
        self.register("gamma", np.ones(dim, dtype=dtype))
        self.register("beta", np.zeros(dim, dtype=dtype))

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        y, cache = F.layernorm(x, self.params["gamma"], self.params["beta"])
        return y, cache

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        xhat, inv, gamma = cache
        cache = (_sliced(xhat, row_slice), _sliced(inv, row_slice), gamma)
        dx, dgamma, dbeta = F.layernorm_backward(dy, cache)
        self.grads["gamma"] += dgamma
        self.grads["beta"] += dbeta
        return dx


class GELU(Layer):
    """Parameter-free GELU activation."""

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        return F.gelu(x)

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        x, t = cache
        return F.gelu_backward(dy, (_sliced(x, row_slice), _sliced(t, row_slice)))


class Embedding(Layer):
    """Token + positional embedding; the usual first stage of an LM."""

    def __init__(
        self,
        vocab: int,
        max_seq: int,
        dim: int,
        *,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        super().__init__()
        self.register("tok", (rng.standard_normal((vocab, dim)) * 0.02).astype(dtype))
        self.register("pos", (rng.standard_normal((max_seq, dim)) * 0.02).astype(dtype))

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, object]:
        seq = tokens.shape[1]
        y = self.params["tok"][tokens] + self.params["pos"][:seq]
        return y, (tokens, seq)

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        tokens, seq = cache
        tokens = _sliced(tokens, row_slice)
        np.add.at(self.grads["tok"], tokens, dy)
        self.grads["pos"][:seq] += dy.sum(axis=0)
        # Token inputs carry no gradient; return a zero placeholder so the
        # pipeline's gradient message has a well-defined shape.
        return np.zeros_like(dy)


class Sequential(Layer):
    """A fused chain of layers behaving as a single layer.

    Used for transformer blocks (LN -> attention -> residual -> LN -> MLP ->
    residual are fused inside :class:`TransformerBlock` instead) and by
    tests composing small models.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        super().__init__()
        self.layers = list(layers)

    @property
    def params(self):  # type: ignore[override]
        merged = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                merged[f"{i}.{name}"] = value
        return merged

    @params.setter
    def params(self, value):  # pragma: no cover - Layer.__init__ assigns {}
        if value:
            raise AttributeError("Sequential params are derived from children")

    @property
    def grads(self):  # type: ignore[override]
        merged = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                merged[f"{i}.{name}"] = value
        return merged

    @grads.setter
    def grads(self, value):  # pragma: no cover
        if value:
            raise AttributeError("Sequential grads are derived from children")

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        caches = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            caches.append(cache)
        return x, caches

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        for layer, layer_cache in zip(reversed(self.layers), reversed(cache)):
            dy = layer.backward(dy, layer_cache, row_slice=row_slice)
        return dy
