"""Vectorized NumPy kernels: forward/backward pairs.

Every function returns ``(output, cache)`` and has a matching ``*_backward``
taking ``(grad_output, cache)``. Kernels avoid Python-level loops and
unnecessary copies (views where possible), per the scientific-Python
optimization guidance this project follows.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    """Tanh-approximation GELU (the transformer standard)."""
    u = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    t = np.tanh(u)
    y = 0.5 * x * (1.0 + t)
    return y, (x, t)


def gelu_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x, t = cache
    du = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    dt = (1.0 - t**2) * du
    return dy * (0.5 * (1.0 + t) + 0.5 * x * dt)


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv
    y = xhat * gamma + beta
    return y, (xhat, inv, gamma)


def layernorm_backward(
    dy: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(dx, dgamma, dbeta)``."""
    xhat, inv, gamma = cache
    axes = tuple(range(dy.ndim - 1))
    dgamma = (dy * xhat).sum(axis=axes)
    dbeta = dy.sum(axis=axes)
    dxhat = dy * gamma
    n = xhat.shape[-1]
    dx = (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    ) * inv
    return dx, dgamma, dbeta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_backward(dy: np.ndarray, y: np.ndarray, axis: int = -1) -> np.ndarray:
    """Backward through softmax given its output ``y``."""
    return y * (dy - (dy * y).sum(axis=axis, keepdims=True))
