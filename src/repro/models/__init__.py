"""NumPy transformer models with hand-written backward passes.

This is the executable counterpart of the analytic workload specs: small
transformer language models whose forward *and* backward passes are
implemented directly on NumPy arrays, so the pipeline runtime
(:mod:`repro.runtime`) can actually train through any schedule and be
checked for **exact** gradient equivalence with sequential mini-batch SGD —
the paper's convergence-friendliness claim for synchronous schedules.

All layer caches are batch-first, which lets backward-halving run a
backward over a row slice of a cached forward.
"""

from repro.models.layers import (
    Layer,
    Linear,
    LayerNorm,
    GELU,
    Embedding,
    Sequential,
)
from repro.models.attention import CausalSelfAttention
from repro.models.transformer import (
    TransformerBlock,
    TransformerLMConfig,
    build_transformer_layers,
    partition_layers,
)
from repro.models.loss import softmax_cross_entropy
from repro.models.reference import SequentialTrainer

__all__ = [
    "Layer",
    "Linear",
    "LayerNorm",
    "GELU",
    "Embedding",
    "Sequential",
    "CausalSelfAttention",
    "TransformerBlock",
    "TransformerLMConfig",
    "build_transformer_layers",
    "partition_layers",
    "softmax_cross_entropy",
    "SequentialTrainer",
]
