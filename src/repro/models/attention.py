"""Causal multi-head self-attention with a hand-written backward pass."""

from __future__ import annotations

import numpy as np

from repro.models import functional as F
from repro.models.layers import Layer, Linear


class CausalSelfAttention(Layer):
    """GPT-style masked multi-head attention.

    ``qkv`` projects to 3h, heads attend independently under a causal mask,
    ``proj`` mixes the heads back. The backward pass retraces each step
    explicitly (no autograd anywhere in this repository).
    """

    def __init__(
        self, dim: int, heads: int, *, rng: np.random.Generator, dtype=np.float64
    ) -> None:
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.qkv = Linear(dim, 3 * dim, rng=rng, dtype=dtype)
        self.proj = Linear(dim, dim, rng=rng, dtype=dtype)

    # Parameter/grad views delegate to the two Linears.
    @property
    def params(self):  # type: ignore[override]
        return {
            **{f"qkv.{k}": v for k, v in self.qkv.params.items()},
            **{f"proj.{k}": v for k, v in self.proj.params.items()},
        }

    @params.setter
    def params(self, value):  # pragma: no cover - Layer.__init__ assigns {}
        if value:
            raise AttributeError("attention params are derived from projections")

    @property
    def grads(self):  # type: ignore[override]
        return {
            **{f"qkv.{k}": v for k, v in self.qkv.grads.items()},
            **{f"proj.{k}": v for k, v in self.proj.grads.items()},
        }

    @grads.setter
    def grads(self, value):  # pragma: no cover
        if value:
            raise AttributeError("attention grads are derived from projections")

    def zero_grads(self) -> None:
        self.qkv.zero_grads()
        self.proj.zero_grads()

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, s, _ = x.shape
        return x.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, s, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, s, h * d)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        b, s, _ = x.shape
        qkv, qkv_cache = self.qkv.forward(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        q = self._split_heads(q)
        k = self._split_heads(k)
        v = self._split_heads(v)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        mask = np.triu(np.ones((s, s), dtype=bool), k=1)
        scores = np.where(mask, -1e30, scores)
        attn = F.softmax(scores, axis=-1)
        context = attn @ v
        merged = self._merge_heads(context)
        out, proj_cache = self.proj.forward(merged)
        return out, (qkv_cache, q, k, v, attn, proj_cache, s)

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        qkv_cache, q, k, v, attn, proj_cache, s = cache
        if row_slice is not None:
            q = q[row_slice]
            k = k[row_slice]
            v = v[row_slice]
            attn = attn[row_slice]
        dmerged = self.proj.backward(dy, proj_cache, row_slice=row_slice)
        dcontext = self._split_heads(dmerged)
        dattn = dcontext @ v.transpose(0, 1, 3, 2)
        dv = attn.transpose(0, 1, 3, 2) @ dcontext
        dscores = F.softmax_backward(dattn, attn, axis=-1)
        scale = 1.0 / np.sqrt(self.head_dim)
        dscores *= scale
        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q
        dqkv = np.concatenate(
            [self._merge_heads(dq), self._merge_heads(dk), self._merge_heads(dv)],
            axis=-1,
        )
        return self.qkv.backward(dqkv, qkv_cache, row_slice=row_slice)
