"""Token-level cross-entropy loss with analytic gradient."""

from __future__ import annotations

import numpy as np

from repro.models.functional import softmax


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over all tokens, plus ``d loss / d logits``.

    ``logits``: (batch, seq, vocab); ``targets``: (batch, seq) int ids.
    The mean is over ``batch * seq`` tokens, so gradients from differently
    sized micro-batch *parts* (backward halving) compose by weighting with
    their token counts — the runtime handles that scaling.
    """
    probs = softmax(logits, axis=-1)
    b, s, _ = logits.shape
    flat = probs.reshape(b * s, -1)
    idx = targets.reshape(-1)
    picked = np.clip(flat[np.arange(b * s), idx], 1e-300, None)
    loss = float(-np.log(picked).mean())
    dlogits = probs.copy()
    dflat = dlogits.reshape(b * s, -1)
    dflat[np.arange(b * s), idx] -= 1.0
    dlogits /= b * s
    return loss, dlogits
