"""Transformer blocks, LM assembly, and pipeline-stage partitioning."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.models.attention import CausalSelfAttention
from repro.models.layers import GELU, Embedding, Layer, LayerNorm, Linear


class TransformerBlock(Layer):
    """Pre-norm transformer block: x + Attn(LN(x)); x + MLP(LN(x))."""

    def __init__(
        self,
        dim: int,
        heads: int,
        *,
        mlp_ratio: int = 4,
        rng: np.random.Generator,
        dtype=np.float64,
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(dim, dtype=dtype)
        self.attn = CausalSelfAttention(dim, heads, rng=rng, dtype=dtype)
        self.ln2 = LayerNorm(dim, dtype=dtype)
        self.fc1 = Linear(dim, mlp_ratio * dim, rng=rng, dtype=dtype)
        self.act = GELU()
        self.fc2 = Linear(mlp_ratio * dim, dim, rng=rng, dtype=dtype)
        self._children = {
            "ln1": self.ln1,
            "attn": self.attn,
            "ln2": self.ln2,
            "fc1": self.fc1,
            "act": self.act,
            "fc2": self.fc2,
        }

    @property
    def params(self):  # type: ignore[override]
        return {
            f"{cname}.{k}": v
            for cname, child in self._children.items()
            for k, v in child.params.items()
        }

    @params.setter
    def params(self, value):  # pragma: no cover - Layer.__init__ assigns {}
        if value:
            raise AttributeError("block params are derived from children")

    @property
    def grads(self):  # type: ignore[override]
        return {
            f"{cname}.{k}": v
            for cname, child in self._children.items()
            for k, v in child.grads.items()
        }

    @grads.setter
    def grads(self, value):  # pragma: no cover
        if value:
            raise AttributeError("block grads are derived from children")

    def zero_grads(self) -> None:
        for child in self._children.values():
            child.zero_grads()

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        h1, c_ln1 = self.ln1.forward(x)
        a, c_attn = self.attn.forward(h1)
        x1 = x + a
        h2, c_ln2 = self.ln2.forward(x1)
        m1, c_fc1 = self.fc1.forward(h2)
        m2, c_act = self.act.forward(m1)
        m3, c_fc2 = self.fc2.forward(m2)
        y = x1 + m3
        return y, (c_ln1, c_attn, c_ln2, c_fc1, c_act, c_fc2)

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        c_ln1, c_attn, c_ln2, c_fc1, c_act, c_fc2 = cache
        dm2 = self.fc2.backward(dy, c_fc2, row_slice=row_slice)
        dm1 = self.act.backward(dm2, c_act, row_slice=row_slice)
        dh2 = self.fc1.backward(dm1, c_fc1, row_slice=row_slice)
        dx1 = dy + self.ln2.backward(dh2, c_ln2, row_slice=row_slice)
        dh1 = self.attn.backward(dx1, c_attn, row_slice=row_slice)
        dx = dx1 + self.ln1.backward(dh1, c_ln1, row_slice=row_slice)
        return dx


class LMHead(Layer):
    """Final LayerNorm + vocabulary projection."""

    def __init__(
        self, dim: int, vocab: int, *, rng: np.random.Generator, dtype=np.float64
    ) -> None:
        super().__init__()
        self.ln = LayerNorm(dim, dtype=dtype)
        self.out = Linear(dim, vocab, rng=rng, dtype=dtype)
        self._children = {"ln": self.ln, "out": self.out}

    @property
    def params(self):  # type: ignore[override]
        return {
            f"{cname}.{k}": v
            for cname, child in self._children.items()
            for k, v in child.params.items()
        }

    @params.setter
    def params(self, value):  # pragma: no cover
        if value:
            raise AttributeError("head params are derived from children")

    @property
    def grads(self):  # type: ignore[override]
        return {
            f"{cname}.{k}": v
            for cname, child in self._children.items()
            for k, v in child.grads.items()
        }

    @grads.setter
    def grads(self, value):  # pragma: no cover
        if value:
            raise AttributeError("head grads are derived from children")

    def zero_grads(self) -> None:
        self.ln.zero_grads()
        self.out.zero_grads()

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, object]:
        h, c_ln = self.ln.forward(x)
        logits, c_out = self.out.forward(h)
        return logits, (c_ln, c_out)

    def backward(self, dy: np.ndarray, cache: object, row_slice=None) -> np.ndarray:
        c_ln, c_out = cache
        dh = self.out.backward(dy, c_out, row_slice=row_slice)
        return self.ln.backward(dh, c_ln, row_slice=row_slice)


@dataclass(frozen=True)
class TransformerLMConfig:
    """A small, runnable language model (the test-scale analog of Table 4)."""

    num_layers: int = 4
    dim: int = 32
    heads: int = 4
    vocab: int = 61
    seq: int = 12
    dtype: type = np.float64
    seed: int = 1234


def build_transformer_layers(config: TransformerLMConfig) -> list[Layer]:
    """Embedding, ``num_layers`` blocks, LM head — one flat layer list.

    The flat list is what :func:`partition_layers` splits into pipeline
    stages; building from a seeded generator makes every replica (and the
    sequential reference) bit-identical at initialization.
    """
    rng = np.random.default_rng(config.seed)
    layers: list[Layer] = [
        Embedding(config.vocab, config.seq, config.dim, rng=rng, dtype=config.dtype)
    ]
    layers.extend(
        TransformerBlock(config.dim, config.heads, rng=rng, dtype=config.dtype)
        for _ in range(config.num_layers)
    )
    layers.append(LMHead(config.dim, config.vocab, rng=rng, dtype=config.dtype))
    return layers


def partition_layers(layers: list[Layer], depth: int) -> list[list[Layer]]:
    """Split a layer list into ``depth`` contiguous stages.

    The transformer blocks are spread evenly; the embedding joins the first
    stage and the head the last one — the same partitioning rule as the
    analytic workload specs (and the paper's "evenly partition the basic
    layers" default).
    """
    if depth < 1:
        raise ConfigurationError("depth must be >= 1")
    if depth == 1:
        return [list(layers)]
    body = layers[1:-1]
    if len(body) % depth:
        raise ConfigurationError(
            f"{len(body)} transformer blocks do not split evenly into "
            f"{depth} stages"
        )
    per = len(body) // depth
    stages: list[list[Layer]] = []
    for s in range(depth):
        stage = list(body[s * per : (s + 1) * per])
        if s == 0:
            stage.insert(0, layers[0])
        if s == depth - 1:
            stage.append(layers[-1])
        stages.append(stage)
    return stages
