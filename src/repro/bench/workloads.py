"""Transformer workload specifications (paper Table 4).

The paper evaluates Bert-48 (48 layers, ~670 M parameters, sequence 128) and
a 64-layer GPT-2 (~1.39 B parameters, sequence 632), plus a 32-layer GPT-2
variant for the multi-pipeline study (Figure 19). We reconstruct the hidden
dimensions from the published parameter counts using the standard
transformer arithmetic (``12 h^2 + 13 h`` parameters per layer, ``(V + s) h``
for the embeddings) and derive per-stage compute, activation, and gradient
sizes analytically — the stand-in for the paper's micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class StageProfile:
    """Analytic profile of one pipeline stage for a given micro-batch size."""

    stage: int
    num_layers: int
    params: int
    #: Forward FLOPs for one micro-batch.
    forward_flops: float
    #: Full activation stash bytes for one micro-batch.
    activation_bytes: float
    #: Stage-input bytes (stored when recomputation is on).
    stash_input_bytes: float
    #: Gradient bytes synchronized by this stage's allreduce.
    grad_bytes: float
    #: Weights + gradients + optimizer state bytes for one copy.
    weight_state_bytes: float


@dataclass(frozen=True)
class TransformerSpec:
    """A repetitive-structure transformer language model (paper §3.1).

    Attributes mirror Table 4 plus the architecture constants needed to
    derive compute/memory analytically. ``tied_embeddings`` controls
    whether the LM head shares the embedding matrix (GPT-2 style) or owns
    its own decoder (BERT pre-training heads).
    """

    name: str
    num_layers: int
    hidden: int
    heads: int
    vocab: int
    seq: int
    tied_embeddings: bool = True
    #: Bytes per parameter for weights + grads + optimizer state (fp32
    #: weights, fp32 grads, fp32 momentum = 12, the paper-era PyTorch+GLOO
    #: SGD setup).
    state_bytes_per_param: int = 12
    #: Bytes per activation element (fp32).
    act_bytes: int = 4
    #: Activation elements stored per token per layer = act_h_factor * h
    #: plus act_s_factor * heads * seq (attention score matrices).
    act_h_factor: float = 24.0
    act_s_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ConfigurationError(
                f"hidden={self.hidden} not divisible by heads={self.heads}"
            )

    # --------------------------------------------------------------- counts
    @property
    def params_per_layer(self) -> int:
        """Standard transformer block: attention 4h^2+4h, MLP 8h^2+5h, LN 4h."""
        h = self.hidden
        return 12 * h * h + 13 * h

    @property
    def embedding_params(self) -> int:
        return (self.vocab + self.seq) * self.hidden

    @property
    def head_params(self) -> int:
        return 0 if self.tied_embeddings else self.vocab * self.hidden

    @property
    def total_params(self) -> int:
        return (
            self.num_layers * self.params_per_layer
            + self.embedding_params
            + self.head_params
        )

    # ---------------------------------------------------------------- per-mb
    def layer_forward_flops(self, micro_batch: int) -> float:
        """One transformer layer forward, one micro-batch.

        ``24 b s h^2`` for the matmuls plus ``4 b s^2 h`` for attention.
        """
        b, s, h = micro_batch, self.seq, self.hidden
        return 24.0 * b * s * h * h + 4.0 * b * s * s * h

    def head_forward_flops(self, micro_batch: int) -> float:
        """LM head logits matmul (runs whether or not weights are tied)."""
        return 2.0 * micro_batch * self.seq * self.vocab * self.hidden

    def embedding_forward_flops(self, micro_batch: int) -> float:
        """Lookup + add — negligible but non-zero."""
        return 2.0 * micro_batch * self.seq * self.hidden

    def layer_activation_bytes(self, micro_batch: int) -> float:
        b, s, h = micro_batch, self.seq, self.hidden
        elements = self.act_h_factor * b * s * h + self.act_s_factor * self.heads * b * s * s
        return elements * self.act_bytes

    def boundary_bytes(self, micro_batch: int) -> float:
        """The p2p payload between stages: one ``b x s x h`` tensor."""
        return micro_batch * self.seq * self.hidden * self.act_bytes

    # --------------------------------------------------------------- staging
    def layers_per_stage(self, depth: int) -> int:
        if depth < 1 or self.num_layers % depth:
            raise ConfigurationError(
                f"{self.name}: {self.num_layers} layers do not split evenly "
                f"into {depth} stages"
            )
        return self.num_layers // depth

    def stage_profiles(self, depth: int, micro_batch: int) -> list[StageProfile]:
        """Balanced layer split; embedding joins stage 0, head joins the last
        stage (the imbalance the paper highlights in §4.1)."""
        per = self.layers_per_stage(depth)
        profiles: list[StageProfile] = []
        for stage in range(depth):
            params = per * self.params_per_layer
            flops = per * self.layer_forward_flops(micro_batch)
            act = per * self.layer_activation_bytes(micro_batch)
            if stage == 0:
                params += self.embedding_params
                flops += self.embedding_forward_flops(micro_batch)
                act += self.boundary_bytes(micro_batch)  # embedding output
            if stage == depth - 1:
                params += self.head_params
                flops += self.head_forward_flops(micro_batch)
                # Logits are consumed by the loss immediately; the dominant
                # stash is the vocab-width tensor.
                act += micro_batch * self.seq * self.vocab * self.act_bytes // 8
            profiles.append(
                StageProfile(
                    stage=stage,
                    num_layers=per,
                    params=params,
                    forward_flops=flops,
                    activation_bytes=act,
                    stash_input_bytes=self.boundary_bytes(micro_batch),
                    grad_bytes=params * 4.0,  # fp32 gradients on the wire
                    weight_state_bytes=params * self.state_bytes_per_param,
                )
            )
        return profiles

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_layers} layers, hidden {self.hidden}, "
            f"{self.total_params:,} params, seq {self.seq}"
        )


#: Bert-48 (Table 4: 48 layers, 669,790,012 params, B̂ >= 256, seq 128).
#: h = 1024 with an untied BERT LM head lands within ~0.5% of the published
#: parameter count.
BERT48 = TransformerSpec(
    name="bert-48",
    num_layers=48,
    hidden=1024,
    heads=16,
    vocab=30522,
    seq=128,
    tied_embeddings=False,
)

#: GPT-2 with 64 layers (Table 4: 1,389,327,360 params, B̂ >= 512, seq 632).
#: h = 1312 reproduces the published count to within 0.1%.
GPT2_64 = TransformerSpec(
    name="gpt2-64",
    num_layers=64,
    hidden=1312,
    heads=16,
    vocab=50257,
    seq=632,
    tied_embeddings=True,
)

#: The 32-layer GPT-2 used for Figure 9 and Figure 19.
GPT2_32 = TransformerSpec(
    name="gpt2-32",
    num_layers=32,
    hidden=1312,
    heads=16,
    vocab=50257,
    seq=632,
    tied_embeddings=True,
)

#: Short names accepted by the CLI and the planner service.
WORKLOADS: dict[str, TransformerSpec] = {
    "bert-48": BERT48,
    "gpt2-64": GPT2_64,
    "gpt2-32": GPT2_32,
}
