"""Experiment harness: run one (scheme, machine, workload, W, D, B) point.

``run_configuration`` reproduces the paper's experimental procedure:

1. split the ``P = W * D`` workers into ``W`` pipeline groups of depth ``D``;
2. derive ``N = B̂ / (W * B)`` micro-batches per group per iteration;
3. check the memory model against the device capacity — or a tighter
   explicit ``memory_budget_bytes`` — and if the configuration does not
   fit, retry with activation recomputation (the paper's ``R``
   annotation), reporting OOM if even that fails;
4. build the scheme's schedule, simulate it under the calibrated cost
   model, and report throughput / bubble ratio / memory.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.common.errors import ConfigurationError, ScheduleError
from repro.bench.machines import MachineSpec
from repro.bench.workloads import TransformerSpec
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model
from repro.schedules.cache import ScheduleArtifacts, schedule_artifacts
from repro.schedules.passes.pipeline import (
    PipelineParts,
    normalize_pipeline,
    split_pipeline,
)
from repro.sim.kernel import simulate_fast
from repro.sim.memory import analyze_memory
from repro.sim.metrics import bubble_ratio, throughput_samples_per_sec


@dataclass(frozen=True)
class ExperimentConfig:
    """One point in a performance sweep."""

    scheme: str
    machine: MachineSpec
    workload: TransformerSpec
    width: int  # W — replicated pipelines
    depth: int  # D — pipeline stages
    micro_batch: int  # B
    mini_batch: int  # B̂
    #: The recompute planning *axis*: ``None`` = auto (use recomputation
    #: only if needed to fit memory — the paper's retry-with-``R``
    #: procedure), ``False`` = never, ``True`` = always.
    recompute: bool | None = None
    #: DEPRECATED alias for ``pipeline=("lower_p2p",)`` — simulate with
    #: explicit SEND/RECV communication (lowering pass), so p2p transfers
    #: contend for link bandwidth.
    lowered: bool = False
    #: DEPRECATED alias for ``pipeline=("lower_p2p", "fuse_comm")`` —
    #: batch each SEND/RECV pair into one transfer op (fuse_comm pass).
    fused: bool = False
    #: Optional per-device peak-memory budget in bytes. The memory check
    #: uses ``min(machine.usable_memory_bytes, memory_budget_bytes)`` — a
    #: budget tighter than the device models a reservation (leaving room
    #: for KV caches, fragmentation slack, a co-located service); a looser
    #: one is clamped to the hardware. ``None`` means the device capacity.
    memory_budget_bytes: float | None = None
    #: THE way to configure schedule transforms: an ordered pipeline spec
    #: (comma string or sequence of pass names, validated against the
    #: pass registry; see :mod:`repro.schedules.passes.pipeline`), e.g.
    #: ``"offload,lower_p2p"``. ``None`` falls back to the deprecated
    #: ``lowered``/``fused`` booleans. The ``recompute`` axis composes
    #: on top unless the pipeline itself names ``recompute``.
    pipeline: str | tuple[str, ...] | None = None
    #: Host-tier (CPU RAM) budget for offloaded stashes; the check uses
    #: ``min(machine.host_memory_bytes, host_memory_budget_bytes)``.
    #: ``None`` means the machine's host capacity.
    host_memory_budget_bytes: float | None = None
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ConfigurationError(
                f"memory budget must be positive, got {self.memory_budget_bytes}"
            )
        if (
            self.host_memory_budget_bytes is not None
            and self.host_memory_budget_bytes <= 0
        ):
            raise ConfigurationError(
                f"host memory budget must be positive, got "
                f"{self.host_memory_budget_bytes}"
            )
        if self.pipeline is not None:
            if self.lowered or self.fused:
                raise ConfigurationError(
                    "pass transforms either as pipeline= or as the "
                    "deprecated lowered/fused booleans, not both"
                )
            canonical = normalize_pipeline(self.pipeline)
            if self.recompute is False and split_pipeline(canonical).recompute:
                raise ConfigurationError(
                    "pipeline includes 'recompute' but recompute=False "
                    "disables the recompute axis"
                )
            object.__setattr__(self, "pipeline", canonical)
        elif self.lowered or self.fused:
            warnings.warn(
                "ExperimentConfig(lowered=..., fused=...) is deprecated; "
                "pass pipeline=('lower_p2p',) / "
                "('lower_p2p', 'fuse_comm') instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.fused and not self.lowered:
                raise ConfigurationError(
                    "fused=True requires lowered=True (fuse_comm batches "
                    "the explicit SEND/RECV pairs the lowering pass creates)"
                )

    # ------------------------------------------------------------- pipeline
    def base_parts(self) -> PipelineParts:
        """The configured transform pipeline, sans the recompute axis."""
        if self.pipeline is not None:
            return split_pipeline(self.pipeline)
        return PipelineParts(lowered=self.lowered, fused=self.fused)

    def attempt_pipelines(self) -> tuple[tuple[str, ...], ...]:
        """Pipelines to try in order until one fits memory.

        An explicit ``recompute`` (the boolean axis, or the pass named in
        ``pipeline``) pins a single attempt; the default ``None`` tries
        the configured pipeline plain first, then with recomputation.
        """
        parts = self.base_parts()
        if parts.recompute or self.recompute is True:
            return (replace(parts, recompute=True).pipeline(),)
        if self.recompute is False:
            return (parts.pipeline(),)
        return (parts.pipeline(), replace(parts, recompute=True).pipeline())

    @property
    def num_workers(self) -> int:
        return self.width * self.depth

    @property
    def capacity_bytes(self) -> float:
        """Effective per-device byte budget the configuration must fit."""
        capacity = self.machine.usable_memory_bytes
        if self.memory_budget_bytes is not None:
            capacity = min(capacity, self.memory_budget_bytes)
        return capacity

    @property
    def host_capacity_bytes(self) -> float:
        """Effective host-tier byte budget for offloaded stashes."""
        capacity = self.machine.host_memory_bytes
        if self.host_memory_budget_bytes is not None:
            capacity = min(capacity, self.host_memory_budget_bytes)
        return capacity

    def num_micro_batches(self) -> int:
        denom = self.width * self.micro_batch
        if self.mini_batch % denom:
            raise ConfigurationError(
                f"mini-batch {self.mini_batch} not divisible by W*B={denom}"
            )
        n = self.mini_batch // denom
        if n < 1:
            raise ConfigurationError(
                f"mini-batch {self.mini_batch} too small for W={self.width}, "
                f"B={self.micro_batch}"
            )
        return n

    def describe(self) -> str:
        return (
            f"{self.scheme}(W={self.width}, D={self.depth}, B={self.micro_batch}, "
            f"B̂={self.mini_batch})"
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Simulated outcome of one configuration."""

    config: ExperimentConfig
    num_micro_batches: int
    recompute: bool
    oom: bool
    iteration_time: float
    throughput: float  # sequences / second
    bubble_ratio: float
    peak_memory_bytes: float
    min_memory_bytes: float
    #: The canonical pipeline the result was simulated under (the winning
    #: memory-fit attempt, including the recompute axis outcome).
    pipeline: tuple[str, ...] = ()
    #: Host-tier peak of offloaded stashes (0 without the offload pass).
    host_peak_memory_bytes: float = 0.0

    @property
    def fits(self) -> bool:
        return not self.oom

    def label(self) -> str:
        return config_label(self.config, self.recompute, self.pipeline)


def config_label(
    cfg: ExperimentConfig, recompute: bool, pipeline: tuple[str, ...] = ()
) -> str:
    """``scheme(W=, D=, B=[, R][, O])`` — the shared result/plan label."""
    r = ", R" if recompute else ""
    o = ", O" if split_pipeline(pipeline).offload else ""
    return (
        f"{cfg.scheme}(W={cfg.width}, D={cfg.depth}, B={cfg.micro_batch}{r}{o})"
    )


def config_artifacts(
    cfg: ExperimentConfig, pipeline: tuple[str, ...]
) -> ScheduleArtifacts:
    """The memoized schedule artifacts for one pipeline attempt.

    Every harness path funnels through the process-wide schedule cache
    (:mod:`repro.schedules.cache`): planner grids and experiment sweeps
    that revisit the same ``(scheme, D, N, pipeline)`` point — which is
    most of them, since ``W`` and ``B`` only change the cost model —
    reuse the schedule, its dependency graph, and the lowered forms.
    Only the pre-lowering part of ``pipeline`` keys the entry; lowering
    and fusion are the cached derived forms of
    :meth:`~repro.schedules.cache.ScheduleArtifacts.schedule_for`.
    """
    parts = split_pipeline(pipeline)
    return schedule_artifacts(
        cfg.scheme,
        cfg.depth,
        cfg.num_micro_batches(),
        **parts.build_options(),
        **dict(cfg.options),
    )


def memory_report(cfg: ExperimentConfig, pipeline: tuple[str, ...]):
    """Build ``cfg``'s schedule and analyze its memory — no simulation.

    Returns ``(schedule, MemoryReport)``. This is the pruning half of
    :func:`run_configuration`, exposed so callers that only need the
    fits/OOM verdict (the planner's enumerate-and-prune step) can skip
    the simulation entirely.
    """
    schedule = config_artifacts(cfg, pipeline).schedule
    # Calibrate per the schedule's own stage count: ZB-V splits the model
    # into 2D chunks over D workers, so each chunk is half a stage.
    memory_model = calibrate_memory_model(
        cfg.machine,
        cfg.workload,
        depth=schedule.num_stages,
        micro_batch=cfg.micro_batch,
    )
    return schedule, analyze_memory(schedule, memory_model)


def run_configuration(cfg: ExperimentConfig) -> ExperimentResult:
    """Simulate one configuration end to end (see module docstring)."""
    n = cfg.num_micro_batches()

    attempts: Sequence[tuple[str, ...]] = cfg.attempt_pipelines()
    schedule = None
    report = None
    used = attempts[-1]
    oom = True
    for pipeline in attempts:
        schedule, report = memory_report(cfg, pipeline)
        if report.fits(cfg.capacity_bytes, cfg.host_capacity_bytes):
            used = pipeline
            oom = False
            break

    assert schedule is not None and report is not None
    parts = split_pipeline(used)
    cost_model = calibrate_cost_model(
        cfg.machine,
        cfg.workload,
        depth=schedule.num_stages,
        micro_batch=cfg.micro_batch,
        data_parallel_width=cfg.width,
    )
    # PipeDream's per-micro-batch synchronization sits on the critical path
    # (the immediately following update feeds the next forward), so its
    # collectives block; all other schemes launch non-blocking (§3.2).
    # ``simulate_fast`` dispatches to the array kernel when the model is
    # contention-free and to the event engine otherwise.
    arts = config_artifacts(cfg, used)
    result = simulate_fast(
        arts.schedule_for(parts.lowered, parts.fused),
        cost_model,
        graph=arts.graph_for(parts.lowered, parts.fused),
        blocking_sync=(cfg.scheme == "pipedream"),
    )
    if schedule.synchronous:
        throughput = throughput_samples_per_sec(
            result, micro_batch_size=cfg.micro_batch, data_parallel_width=cfg.width
        )
    else:
        # Flush-free schemes (PipeDream family) run a continuous steady
        # state; a single cold window would unfairly charge them the
        # pipeline fill. Measure the marginal rate between two window sizes.
        throughput = _steady_state_throughput(cfg, used, cost_model)
    return ExperimentResult(
        config=cfg,
        num_micro_batches=n,
        recompute=parts.recompute,
        oom=oom,
        iteration_time=result.iteration_time,
        throughput=0.0 if oom else throughput,
        bubble_ratio=bubble_ratio(result),
        peak_memory_bytes=report.peak_bytes,
        min_memory_bytes=report.min_bytes,
        pipeline=used,
        host_peak_memory_bytes=report.host_peak_bytes,
    )


#: Fraction of an asynchronous scheme's per-window gradient synchronization
#: that the next window's compute can actually hide (with a CPU-driven
#: backend, overlap is partial — the paper observes PipeDream-2BW "may not
#: have enough computation to fully overlap the gradient synchronization").
ASYNC_SYNC_OVERLAP = 0.5


def _steady_state_throughput(
    cfg: ExperimentConfig, pipeline: tuple[str, ...], cost_model
) -> float:
    """Samples/second of an asynchronous scheme's steady state.

    The per-micro-batch compute rate comes from the *marginal* cost between
    two window sizes (a flush-free scheme never pays the pipeline fill
    again); PipeDream's blocking per-micro-batch collectives are part of
    that margin, while PipeDream-2BW additionally pays the non-overlapped
    residue of its once-per-window gradient synchronization.
    """
    parts = split_pipeline(pipeline)
    n1 = 2 * cfg.depth
    n2 = 4 * cfg.depth
    sims = []
    for n in (n1, n2):
        arts = schedule_artifacts(
            cfg.scheme, cfg.depth, n, **parts.build_options(), **dict(cfg.options)
        )
        sims.append(
            simulate_fast(
                arts.schedule_for(parts.lowered, parts.fused),
                cost_model,
                graph=arts.graph_for(parts.lowered, parts.fused),
                blocking_sync=(cfg.scheme == "pipedream"),
            )
        )
    if cfg.scheme == "pipedream":
        delta = sims[1].iteration_time - sims[0].iteration_time
        if delta <= 0:
            return float("inf")
        return (n2 - n1) * cfg.micro_batch * cfg.width / delta

    marginal = (sims[1].compute_makespan - sims[0].compute_makespan) / (n2 - n1)
    if marginal <= 0:
        return float("inf")
    n_window = cfg.num_micro_batches()
    sync_per_worker = [0.0] * cfg.depth
    for record in sims[0].collectives:
        for w in record.workers:
            sync_per_worker[w] += record.cost
    residue = (1.0 - ASYNC_SYNC_OVERLAP) * max(sync_per_worker, default=0.0)
    period = n_window * marginal + residue
    return n_window * cfg.micro_batch * cfg.width / period


def sweep(configs: Iterable[ExperimentConfig]) -> list[ExperimentResult]:
    """Run a set of configurations, skipping structurally invalid ones."""
    results: list[ExperimentResult] = []
    for cfg in configs:
        try:
            results.append(run_configuration(cfg))
        except (ConfigurationError, ScheduleError):
            continue
    return results


def best_result(results: Sequence[ExperimentResult]) -> ExperimentResult | None:
    """Highest-throughput non-OOM result, or None."""
    feasible = [r for r in results if not r.oom]
    if not feasible:
        return None
    return max(feasible, key=lambda r: r.throughput)


def format_table(
    rows: Sequence[Sequence[object]], headers: Sequence[str]
) -> str:
    """Plain-text table used by every experiment driver."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)
