"""Machine models for the paper's two testbeds.

The paper evaluates on (a) CSCS Piz Daint — one NVIDIA P100 (16 GB) per
Cray XC50 node, Aries dragonfly interconnect, PyTorch + GLOO backend — and
(b) a 32x V100 (32 GB) cluster, 8 GPUs per server behind NVLink, servers
connected by InfiniBand.

We cannot run on that hardware, so each testbed becomes a
:class:`MachineSpec`: a sustained compute rate, device memory capacity, and
alpha-beta link parameters. The absolute values are rough (documented
below); the *relative* structure — compute/communication ratio, the memory
capacity that forces activation recomputation, NVLink vs IB asymmetry — is
what the paper's conclusions depend on, and the EXPERIMENTS.md log records
how the reproduced shapes compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.sim.network import (
    FlatTopology,
    HierarchicalTopology,
    HostChannel,
    LinkSpec,
)


@dataclass(frozen=True)
class MachineSpec:
    """One accelerator-per-worker cluster model.

    Attributes
    ----------
    flops_per_sec:
        Sustained (not peak) FLOP/s per accelerator for transformer-style
        matmul workloads.
    memory_bytes:
        Device memory available to the training process.
    framework_overhead_bytes:
        Memory consumed by the framework/runtime before any tensor is
        allocated (CUDA context, NCCL/GLOO buffers, allocator slack).
    intra_link / inter_link:
        Alpha-beta parameters; for flat networks both are the same link.
    gpus_per_node:
        Accelerators sharing the fast intra link (1 = flat network).
    host_memory_bytes:
        Host (CPU) RAM available per worker for offloaded activation
        stashes — the second tier of the memory model. Node RAM divided
        by the accelerators sharing it.
    host_link:
        Host↔device copy link (PCIe-class) used by the offload pass's
        OFFLOAD/RELOAD transfers; private per worker.
    host_duplex:
        ``"full"`` — separate D2H/H2D DMA engines (offload and reload
        overlap); ``"half"`` — one shared copy queue.
    """

    name: str
    flops_per_sec: float
    memory_bytes: float
    framework_overhead_bytes: float
    intra_link: LinkSpec
    inter_link: LinkSpec
    gpus_per_node: int = 1
    host_memory_bytes: float = 64 * GIB
    #: PCIe 3.0 x16 sustained through a pinned-buffer copy path.
    host_link: LinkSpec = LinkSpec.from_bandwidth(
        alpha=5e-6, bandwidth_bytes_per_sec=12e9
    )
    host_duplex: str = "full"

    def __post_init__(self) -> None:
        if self.flops_per_sec <= 0 or self.memory_bytes <= 0:
            raise ConfigurationError("machine compute/memory must be positive")
        if self.gpus_per_node < 1:
            raise ConfigurationError("gpus_per_node must be >= 1")
        if self.host_memory_bytes <= 0:
            raise ConfigurationError("host memory must be positive")

    def topology(self) -> FlatTopology | HierarchicalTopology:
        """Build the network model for this machine."""
        if self.gpus_per_node == 1:
            return FlatTopology(self.inter_link)
        return HierarchicalTopology(
            intra=self.intra_link,
            inter=self.inter_link,
            gpus_per_node=self.gpus_per_node,
        )

    def host_channel(self) -> HostChannel:
        """The per-worker host↔device copy channel for the simulators."""
        return HostChannel(self.host_link, duplex=self.host_duplex)

    @property
    def usable_memory_bytes(self) -> float:
        return self.memory_bytes - self.framework_overhead_bytes


#: Piz Daint: P100 sustained ~4.5 TFLOP/s on fp32 matmuls; 16 GiB HBM2.
#: The paper runs PyTorch with the GLOO backend (not NCCL) for both p2p and
#: allreduce, so the effective transfer path is host CPU + TCP-over-Aries:
#: ~1.5 GB/s sustained with tens of microseconds of latency. This is what
#: makes gradient synchronization expensive enough that the (W, D) sweet
#: spot sits at moderate depths (Figures 10/11) and extra pipeline replicas
#: stop paying off beyond f=1..2 (Figure 19).
PIZ_DAINT = MachineSpec(
    name="piz-daint-p100",
    flops_per_sec=4.5e12,
    memory_bytes=16 * GIB,
    framework_overhead_bytes=1.5 * GIB,
    intra_link=LinkSpec.from_bandwidth(alpha=3e-5, bandwidth_bytes_per_sec=1.5e9),
    inter_link=LinkSpec.from_bandwidth(alpha=3e-5, bandwidth_bytes_per_sec=1.5e9),
    gpus_per_node=1,
)

#: 4 servers x 8 V100 (32 GiB): NVLink inside a server (~60 GB/s effective
#: through the framework), GLOO-over-InfiniBand between servers (~2.5 GB/s).
V100_CLUSTER = MachineSpec(
    name="v100-nvlink-cluster",
    flops_per_sec=12e12,
    memory_bytes=32 * GIB,
    framework_overhead_bytes=1.5 * GIB,
    intra_link=LinkSpec.from_bandwidth(alpha=5e-6, bandwidth_bytes_per_sec=60e9),
    inter_link=LinkSpec.from_bandwidth(alpha=2e-5, bandwidth_bytes_per_sec=2.5e9),
    gpus_per_node=8,
)

#: Short names accepted by the CLI and the planner service.
MACHINES: dict[str, MachineSpec] = {
    "piz-daint": PIZ_DAINT,
    "v100": V100_CLUSTER,
}
