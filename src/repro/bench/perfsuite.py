"""The ``repro bench`` performance suite and its CI regression gate.

Simulation throughput is the quantity every planner sweep and experiment
grid stands on, so it is measured — not assumed. This module runs a fixed
suite (every registered scheme × pipeline depths {8, 16, 32} × {implicit,
lowered, fused, contended, contended_fused}) three ways per case:

* the PR-2 **event**-queue engine (:func:`repro.sim.engine.simulate`),
* the array-kernel **fast** path (:func:`repro.sim.kernel.simulate_fast`),
* the **batch** API (:func:`repro.sim.kernel.simulate_batch`, several cost
  models amortized over one cached dense schedule),

checks that all three report identical makespans to 1e-9 (the kernel is
engine-exact in *every* regime — there is no event-engine fallback), and
emits a schema-versioned ``BENCH_<rev>.json`` with wall times, ops/sec,
and makespan checksums. The ``fused`` mode runs the lowered schedule
through the fuse_comm pass (each SEND/RECV pair batched into one
transfer): the suite asserts its makespan equals the lowered case's to
1e-9 for every (scheme, depth) — the pass's timing-neutrality contract on
contention-free links — while the event engine processes roughly a third
fewer ops, which ``summary["d16_fused_event_speedup_min"]`` quantifies
(lowered event wall time over fused event wall time, per scheme at
D=16).

The ``contended`` and ``contended_fused`` modes (schema 3) run the
lowered/fused schedules under :func:`contended_suite_model` — nonzero
``beta`` with a large message size, so every transfer occupies its
channel for ``beta * L`` seconds and per-channel FIFO queueing genuinely
fires. These exercise the kernel's contended paths (inline FIFO
serialization on full-duplex links; the fixed-point relaxation for
half-duplex/blocking is covered by the test battery) and gate the
headline claim: batched kernel throughput at least
:data:`CONTENDED_BATCH_SPEEDUP_FLOOR` × the event engine on lowered
contended schedules at the D=16, N=64 reference point
(``summary["d16_contended_batch_speedup_min"]``).

The ``offload`` section (schema 6) times offloaded schedules — the
activation-offload pass's OFFLOAD/RELOAD ops moving stash bytes over
per-worker host channels — under :func:`offload_suite_model`, whose copy
occupancy makes the host FIFOs genuinely queue. Engine/kernel parity is
asserted per case and the section is **gated** like the engine cases:
exact makespans, normalized throughput within tolerance.

The ``planner_qps`` section (schema 4) is the planner-as-a-service load
harness: a heterogeneous request stream is planned per-request
(sequential reference), as one :func:`repro.perf.planner.plan_many`
batch (verified 1e-9-identical, wall-clock gated against
:data:`PLAN_MANY_SPEEDUP_FLOOR`), and through concurrent client threads
(QPS + p50/p99 latency + cache hit rates) — see :func:`run_planner_qps`.
Schema 7 adds a multiprocess phase (the stream through a
:data:`QPS_MP_WORKERS`-process ``PlannerWorkerPool``, parity asserted
against the in-process run, ``mp_speedup`` floor-gated against
:data:`MP_QPS_FLOOR` on hosts with that many cores) and a coalescing
burst phase (K single-request clients must merge into < K dispatches).

Regression gating
-----------------
:func:`check_against` compares a fresh run to a committed baseline
(``benchmarks/baseline.json``) and reports violations for

* any makespan difference beyond 1e-9 (correctness — deterministic, zero
  tolerance),
* any case whose throughput fell more than ``tolerance`` (default 20%)
  below the baseline — planner QPS is gated the same normalized way.

Raw ops/sec depends on the host, so the throughput gate compares
*normalized* scores: each measurement is divided by a calibration score —
the throughput of a fixed pure-Python relaxation-shaped loop timed in the
same process — which cancels machine speed to first order. Raw numbers
are recorded alongside for inspection. A synthetic slowdown can be
injected (``--inject-slowdown`` / ``REPRO_BENCH_INJECT_SLOWDOWN``) to
scale the measured wall times without touching the calibration; CI uses
it to prove the gate actually fails on a 25% regression.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.common.errors import ScheduleError
from repro.bench.harness import format_table
from repro.schedules.cache import schedule_artifacts
from repro.schedules.registry import available_schemes, scheme_traits
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.kernel import fast_path_supported, simulate_batch, simulate_fast
from repro.sim.network import FlatTopology, HostChannel, LinkSpec

#: Bumped whenever the JSON layout or the suite contents change; the
#: checker refuses to compare across versions. 2: added the ``fused``
#: mode cases and the fused-speedup summary keys. 3: added the
#: ``contended``/``contended_fused`` modes (nonzero-beta cost model) and
#: the contended-speedup summary keys with their absolute floor. 4: added
#: the ``planner_qps`` load-harness section (QPS, p50/p99 latency,
#: plan_many batch speedup with its absolute floor, cache hit rates) and
#: the non-gating ``schedule_cache`` metadata block. 5: added the
#: non-gating ``synthesize`` section (search-vs-built-ins comparison);
#: the engine case grid is unchanged (cost-parameterized schemes are
#: excluded from it by construction), so a v4 baseline stays valid after
#: bumping its ``schema_version`` field alone. 6: added the **gated**
#: ``offload`` section — offloaded (and offloaded+lowered) schedules
#: timed under the host-channel model, engine/kernel parity asserted and
#: normalized throughput regression-gated like the engine cases. 7: the
#: ``planner_qps`` section gains a **multiprocess phase** (the full
#: stream re-planned through a 4-process ``PlannerWorkerPool``, parity
#: asserted against the in-process outcomes; ``mp_qps`` normalized-gated
#: against the baseline, ``mp_speedup`` floor-gated on >=4-core hosts)
#: and a **coalescing burst phase** (K concurrent single-request clients
#: through a coalescing ``PlannerService``; in-run assertion that they
#: merge into fewer than K ``plan_many`` dispatches).
SCHEMA_VERSION = 7

#: Full-suite grid: every registered scheme at these depths, N=64 — the
#: acceptance grid of the array kernel (D=16, N=64 is the reference point).
SUITE_DEPTHS = (8, 16, 32)
SUITE_MICRO_BATCHES = 64
#: Fast-suite grid used by tests and smoke runs.
FAST_DEPTHS = (8,)
FAST_MICRO_BATCHES = 16

MODES = ("implicit", "lowered", "fused", "contended", "contended_fused")

#: Modes evaluated under the contended (nonzero-beta) cost model.
CONTENDED_MODES = ("contended", "contended_fused")

#: Absolute floor on ``d16_contended_batch_speedup_min``: the batched
#: kernel must beat the event engine by at least this factor on lowered
#: contended schedules at D=16, N=64. A ratio of two wall times on the
#: same host, so it needs no calibration; the checker enforces it on the
#: current run directly.
CONTENDED_BATCH_SPEEDUP_FLOOR = 5.0

#: Absolute floor on the planner load harness's batch speedup:
#: ``plan_many`` over the full heterogeneous request batch must beat
#: per-request ``plan_configurations`` wall-clock by at least this factor
#: (same-host wall-time ratio, checked unnormalized like the contended
#: floor). The full suite's scenario covers D=16 cells (P=16 grid).
PLAN_MANY_SPEEDUP_FLOOR = 5.0

#: Load-harness scenario: total requests hammered through ``plan_many``
#: and the concurrent client phase; the distinct-request working set they
#: cycle over is machines × budgets × mini-batches (12 full / 8 fast).
QPS_REQUESTS = 1000
QPS_FAST_REQUESTS = 64
#: Concurrent client threads and per-client batch size in the QPS phase.
QPS_CLIENTS = 8
QPS_BATCH = 25
QPS_FAST_BATCH = 8
#: Synchronous schemes only: the async schemes' steady-state measurement
#: is seconds per cell at P=16, which would turn the load harness into an
#: async-scheme benchmark instead of a planner-throughput one.
QPS_SCHEMES = ("chimera", "dapple", "zb_h1", "zb_v")
QPS_FAST_SCHEMES = ("chimera", "dapple")

#: Worker-process count of the multiprocess phase (schema 7). The
#: :data:`MP_QPS_FLOOR` is only meaningful when the host actually has
#: that many cores — the floor check is conditioned on the recorded
#: ``cpu_count``, so single-core baseline refreshes still record the
#: phase without tripping an impossible gate.
QPS_MP_WORKERS = 4

#: Absolute floor on ``mp_speedup``: multiprocess QPS over the
#: single-process concurrent phase's QPS at :data:`QPS_MP_WORKERS`
#: workers. A same-host, same-run ratio (both phases plan the identical
#: stream), so it needs no calibration; enforced on the current run when
#: ``cpu_count >= QPS_MP_WORKERS``.
MP_QPS_FLOOR = 2.0

#: Coalescing burst phase (schema 7): window and client count for the
#: K-client single-request burst against a coalescing
#: :class:`~repro.serve.service.PlannerService`.
QPS_COALESCE_MS = 50.0

#: Cost models evaluated by the batch-path measurement: the base model
#: plus f/b/w variations, so each batch row exercises a distinct duration
#: table against the shared dense schedule.
BATCH_VARIANTS = 8

#: Grid of the gated ``offload`` section (schema 6): offloaded schedules
#: of these schemes, with and without explicit lowering, timed under
#: :func:`offload_suite_model`. A deliberate spread — linear-stash
#: (gpipe), 1F1B (dapple), bidirectional (chimera) — at the engine
#: grid's reference depths.
OFFLOAD_SCHEMES = ("gpipe", "dapple", "chimera")
OFFLOAD_DEPTHS = (8, 16)
OFFLOAD_FAST_DEPTHS = (8,)
OFFLOAD_MODES = ("offload", "offload_lowered")

#: Grid points of the non-gating ``synthesize`` section: (depth, N).
SYNTHESIZE_POINTS = ((4, 16), (8, 16))
SYNTHESIZE_FAST_POINTS = ((4, 8),)
#: Split-backward costs the section synthesizes under — deliberately
#: asymmetric (b != w) so the search has something the hand-written
#: recipes were not tuned for.
SYNTHESIZE_COSTS = (1.0, 1.1, 0.9, 0.05)  # (f, b, w, comm)

#: Makespan agreement required between the engines, and between a run and
#: its baseline.
MAKESPAN_ATOL = 1e-9

#: Default allowed relative throughput drop before the gate fails.
DEFAULT_TOLERANCE = 0.20

_INJECT_ENV = "REPRO_BENCH_INJECT_SLOWDOWN"


@dataclass(frozen=True)
class BenchCase:
    """One suite point: a scheme at a depth, implicit or lowered."""

    scheme: str
    depth: int
    num_micro_batches: int
    mode: str  # "implicit" | "lowered"

    @property
    def case_id(self) -> str:
        return f"{self.scheme}/D{self.depth}/N{self.num_micro_batches}/{self.mode}"


def suite_cases(
    *,
    fast: bool = False,
    depths: Sequence[int] | None = None,
    schemes: Sequence[str] | None = None,
) -> list[BenchCase]:
    """The suite grid (full by default, reduced with ``fast=True``)."""
    if depths is None:
        depths = FAST_DEPTHS if fast else SUITE_DEPTHS
    n = FAST_MICRO_BATCHES if fast else SUITE_MICRO_BATCHES
    if schemes is None:
        # Cost-parameterized builders (synthesize) have no single schedule
        # per (scheme, D, N), so they cannot be engine-suite cases; they
        # get their own non-gating section (run_synthesize_block).
        schemes = tuple(
            s for s in available_schemes() if not scheme_traits(s).cost_parameterized
        )
    return [
        BenchCase(scheme, depth, n, mode)
        for scheme in schemes
        for depth in depths
        for mode in MODES
    ]


def suite_cost_model() -> CostModel:
    """The fixed, contention-free suite model (beta=0: no queueing)."""
    return CostModel(
        forward_time=1.0,
        topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.0)),
        activation_message_bytes=1.0,
        stage_grad_bytes=10.0,
        data_parallel_width=2,
    )


def offload_suite_model() -> CostModel:
    """The fixed host-channel suite model: heavy per-worker copy occupancy.

    ``beta * offload_message_bytes = 2.0`` — each stash copy holds its
    worker's host channel for twice a forward step, so consecutive
    offloads (and the matching reloads) genuinely queue on the PCIe FIFO
    and the kernel's host-channel serialization is load-bearing. The
    network side stays the contention-free suite model: what this section
    times is the host tier, not the wire.
    """
    return suite_cost_model().with_(
        host_channel=HostChannel(LinkSpec(alpha=0.05, beta=0.25)),
        offload_message_bytes=8.0,
    )


def contended_suite_model() -> CostModel:
    """The fixed contended suite model: heavy per-channel occupancy.

    ``beta * activation_message_bytes = 2.0`` — each transfer holds its
    channel for twice a forward step, so back-to-back sends on one link
    genuinely queue and the kernel's FIFO serialization is load-bearing,
    not a no-op.
    """
    return suite_cost_model().with_(
        topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.25)),
        activation_message_bytes=8.0,
    )


def batch_cost_models(
    count: int = BATCH_VARIANTS, *, base: CostModel | None = None
) -> list[CostModel]:
    """``count`` model variants; index 0 is the base (suite) model."""
    if base is None:
        base = suite_cost_model()
    models = [base]
    for i in range(1, count):
        models.append(
            base.with_(
                forward_time=1.0 + 0.05 * i,
                backward_ratio=2.0 - 0.07 * i,
                sync_launch_overhead=0.01 * i,
            )
        )
    return models


def calibration_score(*, repeats: int = 3) -> float:
    """Machine-speed proxy: steps/second of a fixed relaxation-shaped loop.

    Deliberately independent of the library under test (a regression in
    the simulator must not slow the yardstick down with it): a pure-Python
    loop over preallocated lists with the same max/add/index mix as the
    kernel's scalar pass.
    """
    steps = 200_000
    src = [(i * 7919) % 1000 for i in range(1000)]
    best = float("inf")
    for _ in range(repeats):
        end = [0.0] * 1000
        t0 = time.perf_counter()
        for i in range(steps):
            j = i % 1000
            t = end[src[j]] + 1.5
            if t > end[j]:
                end[j] = t
        best = min(best, time.perf_counter() - t0)
    return steps / best


def _best_wall(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` timed calls.

    Garbage collection is paused around the timed calls — a cycle sweep
    landing inside one repetition would otherwise dominate the measurement
    and fire the regression gate on noise.
    """
    if repeats < 1:
        # repeats=0 would leave `best` at inf -> ops/sec 0.0 and NaN
        # speedups; committed as a baseline, that gate could never fail.
        raise ValueError(f"timing repeats must be >= 1, got {repeats}")
    result = fn()  # warm-up: dense/kernel caches build here, untimed
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best, result


def current_revision() -> str:
    """Short git revision of the working tree, or ``"local"``."""
    env = os.environ.get("REPRO_BENCH_REV")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except OSError:  # pragma: no cover - git missing entirely
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def _resolve_slowdown(inject_slowdown: float | None) -> float:
    if inject_slowdown is not None:
        return inject_slowdown
    return float(os.environ.get(_INJECT_ENV, "1.0"))


def run_case(
    case: BenchCase,
    *,
    repeats: int = 3,
    batch_size: int = BATCH_VARIANTS,
    slowdown: float = 1.0,
) -> dict:
    """Measure one case three ways and verify engine/kernel parity."""
    arts = schedule_artifacts(case.scheme, case.depth, case.num_micro_batches)
    contended = case.mode in CONTENDED_MODES
    lowered = case.mode != "implicit"
    fused = case.mode in ("fused", "contended_fused")
    schedule = arts.schedule_for(lowered, fused)
    graph = arts.graph_for(lowered, fused)
    base = contended_suite_model() if contended else suite_cost_model()
    # fast_path_supported is a telemetry hint, not a gate: True means the
    # single-sweep vectorized pass, False means the contended handling.
    # Either way the case runs on the kernel; assert the hint matches the
    # regime so a routing regression fails loudly here.
    hint = fast_path_supported(schedule, base, graph=graph)
    if hint == contended:
        raise ScheduleError(
            f"kernel path hint mismatch on {case.case_id}: expected "
            f"{'contended' if contended else 'single-sweep'} routing"
        )
    models = batch_cost_models(batch_size, base=base)

    event_wall, event = _best_wall(
        lambda: simulate(schedule, base, graph=graph), repeats
    )
    fast_wall, fast = _best_wall(
        lambda: simulate_fast(schedule, base, graph=graph), repeats
    )
    batch_wall, batch = _best_wall(
        lambda: simulate_batch(schedule, models, graph=graph), repeats
    )

    mk_fast = abs(event.compute_makespan - fast.compute_makespan)
    it_fast = abs(event.iteration_time - fast.iteration_time)
    mk_batch = abs(event.compute_makespan - float(batch.compute_makespan[0]))
    it_batch = abs(event.iteration_time - float(batch.iteration_time[0]))
    worst = max(mk_fast, it_fast, mk_batch, it_batch)
    if worst > MAKESPAN_ATOL:
        raise ScheduleError(
            f"engine/kernel makespan divergence on {case.case_id}: "
            f"{worst:.3e} exceeds {MAKESPAN_ATOL:.0e}"
        )

    event_wall *= slowdown
    fast_wall *= slowdown
    batch_wall *= slowdown
    batch_per_model = batch_wall / len(models)
    ops = sum(len(row) for row in schedule.worker_ops)
    return {
        "id": case.case_id,
        "scheme": case.scheme,
        "depth": case.depth,
        "num_micro_batches": case.num_micro_batches,
        "mode": case.mode,
        "ops": ops,
        "compute_makespan": event.compute_makespan,
        "iteration_time": event.iteration_time,
        "event": {"wall_s": event_wall, "ops_per_sec": ops / event_wall},
        "fast": {
            "wall_s": fast_wall,
            "ops_per_sec": ops / fast_wall,
            "speedup": event_wall / fast_wall,
        },
        "batch": {
            "models": len(models),
            "wall_s_per_model": batch_per_model,
            "ops_per_sec": ops / batch_per_model,
            "speedup": event_wall / batch_per_model,
        },
    }


def makespan_checksum(cases: Iterable[dict]) -> str:
    """SHA-256 over every case's (id, makespan, iteration) triple."""
    digest = hashlib.sha256()
    for case in sorted(cases, key=lambda c: c["id"]):
        digest.update(
            (
                f"{case['id']}:{case['compute_makespan']:.12e}:"
                f"{case['iteration_time']:.12e};"
            ).encode()
        )
    return digest.hexdigest()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def planner_qps_requests(*, fast: bool = False) -> list:
    """The load-harness request stream (heterogeneous, cycled).

    Distinct cells: both machine models × memory budgets (uncapped plus
    two tight ones that exercise the recompute-retry axis) × two
    mini-batch sizes, all at one worker count whose grid covers the D=16
    reference depth (P=8 in fast mode). Requests cycle over the distinct
    set up to the total count, the way production traffic repeats a small
    set of hot configurations.
    """
    from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
    from repro.bench.workloads import BERT48
    from repro.common.units import GIB
    from repro.perf.planner import PlanRequest

    schemes = QPS_FAST_SCHEMES if fast else QPS_SCHEMES
    workers = 8 if fast else 16
    budgets = (None, 6 * GIB) if fast else (None, 6 * GIB, 3 * GIB)
    minis = (16, 32) if fast else (32, 64)
    total = QPS_FAST_REQUESTS if fast else QPS_REQUESTS
    distinct = [
        PlanRequest(
            machine=machine,
            workload=BERT48,
            num_workers=workers,
            mini_batch=mini,
            memory_budget_bytes=budget,
            schemes=schemes,
        )
        for machine in (PIZ_DAINT, V100_CLUSTER)
        for budget in budgets
        for mini in minis
    ]
    return [distinct[i % len(distinct)] for i in range(total)]


def _entries_close(a, b) -> bool:
    """1e-9 agreement between two :class:`PlanEntry` rows."""
    return (
        (a.scheme, a.width, a.depth, a.micro_batch, a.num_micro_batches,
         a.recompute)
        == (b.scheme, b.width, b.depth, b.micro_batch, b.num_micro_batches,
            b.recompute)
        and abs(a.iteration_time - b.iteration_time) <= MAKESPAN_ATOL
        and abs(a.throughput - b.throughput)
        <= MAKESPAN_ATOL * max(1.0, abs(b.throughput))
        and abs(a.bubble_ratio - b.bubble_ratio) <= MAKESPAN_ATOL
        and abs(a.peak_memory_bytes - b.peak_memory_bytes)
        <= MAKESPAN_ATOL * max(1.0, abs(b.peak_memory_bytes))
    )


def run_planner_qps(
    *,
    fast: bool = False,
    slowdown: float = 1.0,
    concurrent: bool = True,
    multiprocess: bool = True,
) -> dict:
    """The planner-as-a-service load harness (one ``planner_qps`` run).

    Five phases over one heterogeneous request stream:

    1. **Sequential reference** — per-request ``plan_configurations``
       over the distinct cells, once each; the full-stream sequential
       wall extrapolates per-request cost by multiplicity (a duplicated
       sequential call re-ranks from scratch, so per-request cost is
       constant — the extrapolation is exact up to timing noise, and
       measuring it directly would take minutes by construction).
    2. **One batch** — a single ``plan_many`` over the whole stream,
       verified 1e-9-identical to the sequential reference per entry;
       its wall against the sequential wall is ``plan_many_speedup``,
       gated against :data:`PLAN_MANY_SPEEDUP_FLOOR`.
    3. **Concurrent clients** — the stream split into batches of
       :data:`QPS_BATCH`, all submitted at t=0 to :data:`QPS_CLIENTS`
       client threads (concurrent ``plan_many`` calls share the process
       cache, like ``repro serve`` handlers); per-request latency is its
       batch's completion time, yielding QPS and p50/p99.
    4. **Multiprocess** (schema 7) — the full stream re-planned through
       ``plan_many(backend="process")`` on a fresh
       :data:`QPS_MP_WORKERS`-process pool, every outcome asserted
       identical to phase 2's (1e-9 entries, exact error messages) —
       the pooled-parity acceptance check runs on every bench
       invocation. ``mp_qps`` is normalized-gated against the baseline;
       ``mp_speedup = mp_qps / qps`` is floor-gated against
       :data:`MP_QPS_FLOOR` when the recorded ``cpu_count`` can
       physically sustain it.
    5. **Coalescing burst** (schema 7) — :data:`QPS_CLIENTS` threads
       each post one single-request ``/plan`` payload to a transport-
       free coalescing :class:`~repro.serve.service.PlannerService`;
       the run *asserts* they merge into fewer than K ``plan_many``
       dispatches and records the coalescing counters.

    ``slowdown`` scales every measured planner wall (the injected-
    regression hook), so QPS — including ``mp_qps`` — drops under
    injection and the normalized gates in :func:`check_against` trip
    (``mp_speedup`` is a same-run ratio of two equally scaled walls, so
    the *floor* is deliberately injection-invariant). ``concurrent=False``
    skips phases 3 and 5 (tests asserting only parity and the
    batch-speedup floor); ``multiprocess=False`` skips phase 4 (pool
    spawn is seconds of overhead single-core test runs can't amortize).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.perf.planner import plan_configurations, plan_many
    from repro.schedules.cache import disk_cache_stats, schedule_cache_stats

    requests = planner_qps_requests(fast=fast)
    distinct = list(dict.fromkeys(requests))

    plan_many(distinct)  # warm-up: artifact caches build here, untimed

    mem0, disk0 = schedule_cache_stats(), disk_cache_stats()

    t0 = time.perf_counter()
    reference: dict[object, object] = {}
    for request in distinct:
        try:
            reference[request] = plan_configurations(
                request.machine,
                request.workload,
                num_workers=request.num_workers,
                mini_batch=request.mini_batch,
                memory_budget_bytes=request.memory_budget_bytes,
                schemes=request.schemes,
            )
        except ScheduleError:
            raise
        except Exception as err:  # ConfigurationError: empty search space
            reference[request] = err
    sequential_distinct_wall = (time.perf_counter() - t0) * slowdown
    sequential_wall = sequential_distinct_wall * (len(requests) / len(distinct))

    t0 = time.perf_counter()
    outcomes = plan_many(requests)
    batch_wall = (time.perf_counter() - t0) * slowdown

    for request, outcome in zip(requests, outcomes):
        expected = reference[request]
        if isinstance(expected, Exception):
            if outcome.error is None or str(outcome.error) != str(expected):
                raise ScheduleError(
                    f"plan_many/plan_configurations error divergence for "
                    f"{request.machine.name}, B̂={request.mini_batch}: "
                    f"{outcome.error!r} vs {expected!r}"
                )
            continue
        if outcome.error is not None or len(outcome.entries) != len(expected):
            raise ScheduleError(
                f"plan_many/plan_configurations shape divergence for "
                f"{request.machine.name}, B̂={request.mini_batch}"
            )
        for got, want in zip(outcome.entries, expected):
            if not _entries_close(got, want):
                raise ScheduleError(
                    f"plan_many entry diverged from plan_configurations "
                    f"beyond {MAKESPAN_ATOL:.0e}: {got} vs {want}"
                )

    section = {
        "requests": len(requests),
        "distinct_requests": len(distinct),
        "sequential_wall_s": sequential_wall,
        "sequential_distinct_wall_s": sequential_distinct_wall,
        "plan_many_wall_s": batch_wall,
        "plan_many_speedup": sequential_wall / batch_wall,
    }
    if concurrent:
        qps_batch = QPS_FAST_BATCH if fast else QPS_BATCH
        batches = [
            requests[i : i + qps_batch]
            for i in range(0, len(requests), qps_batch)
        ]
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=QPS_CLIENTS) as pool:

            def _client(batch: list) -> tuple[int, float]:
                plan_many(batch)
                return len(batch), time.perf_counter() - t0

            completions = list(pool.map(_client, batches))
        concurrent_wall = (time.perf_counter() - t0) * slowdown
        latencies = sorted(
            done * slowdown for count, done in completions for _ in range(count)
        )
        section.update(
            clients=QPS_CLIENTS,
            client_batch=qps_batch,
            qps=len(requests) / concurrent_wall,
            p50_ms=_percentile(latencies, 0.50) * 1e3,
            p99_ms=_percentile(latencies, 0.99) * 1e3,
            concurrent_wall_s=concurrent_wall,
        )

    if multiprocess:
        section.update(
            _run_multiprocess_phase(
                requests, distinct, outcomes, slowdown=slowdown
            )
        )
        if concurrent:
            section["mp_speedup"] = section["mp_qps"] / section["qps"]

    if concurrent:
        section.update(_run_coalesce_burst(distinct))

    mem1, disk1 = schedule_cache_stats(), disk_cache_stats()
    mem_lookups = mem1.lookups - mem0.lookups
    section["schedule_cache_hit_rate"] = (
        (mem1.hits - mem0.hits) / mem_lookups if mem_lookups else 1.0
    )
    if disk0 is not None and disk1 is not None:
        lookups = disk1.lookups - disk0.lookups
        section["disk_cache_hit_rate"] = (
            (disk1.hits - disk0.hits) / lookups if lookups else 1.0
        )
    return section


def _run_multiprocess_phase(
    requests: list, distinct: list, outcomes: list, *, slowdown: float
) -> dict:
    """Phase 4: the stream through a fresh 4-process pool, parity-checked.

    The warm-up pass is untimed for the same reason the in-process one
    is: each worker builds its own in-process ``ScheduleCache`` on first
    contact (the disk tier is shared with the parent), and steady-state
    serving — not cold start — is what the QPS number claims.
    """
    from repro.perf.planner import plan_many
    from repro.perf.workers import PlannerWorkerPool

    with PlannerWorkerPool(QPS_MP_WORKERS, name="bench") as pool:
        plan_many(distinct, backend="process", pool=pool)  # untimed warm-up
        t0 = time.perf_counter()
        pooled = plan_many(requests, backend="process", pool=pool)
        mp_wall = (time.perf_counter() - t0) * slowdown

    for request, got, want in zip(requests, pooled, outcomes):
        if (got.error is None) != (want.error is None) or (
            want.error is not None and str(got.error) != str(want.error)
        ):
            raise ScheduleError(
                f"process-backend error divergence for "
                f"{request.machine.name}, B̂={request.mini_batch}: "
                f"{got.error!r} vs in-process {want.error!r}"
            )
        if want.error is not None:
            continue
        if len(got.entries) != len(want.entries):
            raise ScheduleError(
                f"process-backend shape divergence for "
                f"{request.machine.name}, B̂={request.mini_batch}: "
                f"{len(got.entries)} entries vs {len(want.entries)}"
            )
        for a, b in zip(got.entries, want.entries):
            if not _entries_close(a, b):
                raise ScheduleError(
                    f"process-backend entry diverged from in-process "
                    f"plan_many beyond {MAKESPAN_ATOL:.0e}: {a} vs {b}"
                )
    return {
        "mp_workers": QPS_MP_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "mp_wall_s": mp_wall,
        "mp_qps": len(requests) / mp_wall,
    }


def _run_coalesce_burst(distinct: list) -> dict:
    """Phase 5: K single-request clients must merge into < K dispatches.

    Transport-free on purpose — the HTTP layer adds nothing to the claim
    being measured (the serve smoke test covers it over sockets). The
    in-run assertion is the acceptance criterion itself, so a coalescer
    that stops batching fails the bench outright rather than silently
    recording K batches.
    """
    import threading

    from repro.bench.machines import MACHINES
    from repro.bench.workloads import WORKLOADS
    from repro.serve.service import PlannerService

    machine_names = {id(m): name for name, m in MACHINES.items()}
    workload_names = {id(w): name for name, w in WORKLOADS.items()}
    payloads = []
    for i in range(QPS_CLIENTS):
        request = distinct[i % len(distinct)]
        payloads.append(
            {
                "machine": machine_names[id(request.machine)],
                "workload": workload_names[id(request.workload)],
                "num_workers": request.num_workers,
                "mini_batch": request.mini_batch,
                "memory_budget_bytes": request.memory_budget_bytes,
                "schemes": list(request.schemes),
            }
        )

    service = PlannerService(coalesce_ms=QPS_COALESCE_MS)
    barrier = threading.Barrier(len(payloads))
    failures: list[BaseException] = []

    def _client(payload: dict) -> None:
        barrier.wait()
        try:
            service.plan(payload)
        except BaseException as err:  # noqa: BLE001 - surfaced below
            failures.append(err)

    threads = [
        threading.Thread(target=_client, args=(p,)) for p in payloads
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = service.stats_json()
    service.close()
    if failures:
        raise ScheduleError(
            f"coalescing burst client failed: {failures[0]!r}"
        ) from failures[0]
    co = stats["coalesce"]
    if co["batches"] >= len(payloads):
        raise ScheduleError(
            f"coalescing failed: {len(payloads)} single-request clients "
            f"executed in {co['batches']} plan_many dispatches (expected "
            f"fewer)"
        )
    return {
        "coalesce_clients": len(payloads),
        "coalesce_window_ms": QPS_COALESCE_MS,
        "coalesce_batches": co["batches"],
        "coalesce_dispatched": co["dispatched"],
        "coalesced_requests": co["coalesced_requests"],
    }


def run_synthesize_block(*, fast: bool = False) -> dict:
    """The non-gating ``synthesize`` section: search vs every built-in.

    For each grid point, measures every non-parameterized scheme's
    compute makespan and peak activation under the fixed
    :data:`SYNTHESIZE_COSTS` model (one ``simulate_batch_many`` call),
    then synthesizes a schedule with the *best* scheme's peak as its
    memory budget and records how the search compares — speedup over the
    best built-in, build wall time, the winning seed. Informational only:
    ``check_against`` never gates on it (build time is search work, not
    kernel work, and the match-or-beat property is pinned by the test
    suite's acceptance battery instead).
    """
    from repro.schedules.cache import cached_build_schedule
    from repro.schedules.registry import build_schedule
    from repro.schedules.synthesize import peak_stash_units, synthesis_cost_model
    from repro.sim.kernel import simulate_batch_many

    f, b, w, comm = SYNTHESIZE_COSTS
    model = synthesis_cost_model(f, b, w, comm)
    schemes = [
        s for s in available_schemes() if not scheme_traits(s).cost_parameterized
    ]
    points = []
    for depth, n in (SYNTHESIZE_FAST_POINTS if fast else SYNTHESIZE_POINTS):
        built, names = [], []
        for scheme in schemes:
            try:
                built.append(cached_build_schedule(scheme, depth, n))
                names.append(scheme)
            except ScheduleError:
                continue  # scheme structurally invalid at this (D, N)
        batch = simulate_batch_many([(s, model) for s in built])
        makespans = [float(m) for m in batch.compute_makespan]
        best_k = min(range(len(names)), key=lambda k: makespans[k])
        budget = peak_stash_units(built[best_k])
        start = time.perf_counter()
        synthesized = build_schedule(
            "synthesize",
            depth,
            n,
            f_time=f,
            b_time=b,
            w_time=w,
            comm_time=comm,
            memory_budget_units=budget,
        )
        build_s = time.perf_counter() - start
        meta = synthesized.metadata
        points.append(
            {
                "depth": depth,
                "num_micro_batches": n,
                "budget_units": budget,
                "best_scheme": names[best_k],
                "best_makespan": makespans[best_k],
                "synthesize_makespan": float(meta["makespan"]),
                "synthesize_peak_units": float(meta["peak_units"]),
                "seed": meta["seed"],
                "speedup_vs_best": makespans[best_k] / float(meta["makespan"]),
                "build_wall_s": build_s,
            }
        )
    return {"costs": list(SYNTHESIZE_COSTS), "points": points}


def run_offload_block(
    *, fast: bool = False, repeats: int = 3, slowdown: float = 1.0
) -> dict:
    """The gated ``offload`` section (schema 6): host-channel timing.

    Runs each :data:`OFFLOAD_SCHEMES` × depth × {offload,
    offload_lowered} schedule through the event engine and the array
    kernel under :func:`offload_suite_model`, asserts the two agree to
    :data:`MAKESPAN_ATOL` (host-channel FIFOs are kernel code paths, not
    a fallback), and records wall times the checker gates exactly like
    the engine cases — makespans at zero tolerance, normalized
    throughput against the baseline.
    """
    depths = OFFLOAD_FAST_DEPTHS if fast else OFFLOAD_DEPTHS
    n = FAST_MICRO_BATCHES if fast else SUITE_MICRO_BATCHES
    model = offload_suite_model()
    cases: list[dict] = []
    for scheme in OFFLOAD_SCHEMES:
        for depth in depths:
            arts = schedule_artifacts(scheme, depth, n, passes=("offload",))
            for mode in OFFLOAD_MODES:
                lowered = mode == "offload_lowered"
                schedule = arts.schedule_for(lowered, False)
                graph = arts.graph_for(lowered, False)
                case_id = f"{scheme}/D{depth}/N{n}/{mode}"
                # Nonzero stash occupancy: the hint must report the
                # contended routing, or host copies stopped queueing.
                if fast_path_supported(schedule, model, graph=graph):
                    raise ScheduleError(
                        f"kernel path hint mismatch on {case_id}: expected "
                        f"host-channel contended routing"
                    )
                event_wall, event = _best_wall(
                    lambda: simulate(schedule, model, graph=graph), repeats
                )
                fast_wall, fast_result = _best_wall(
                    lambda: simulate_fast(schedule, model, graph=graph),
                    repeats,
                )
                worst = max(
                    abs(event.compute_makespan - fast_result.compute_makespan),
                    abs(event.iteration_time - fast_result.iteration_time),
                )
                if worst > MAKESPAN_ATOL:
                    raise ScheduleError(
                        f"engine/kernel makespan divergence on {case_id}: "
                        f"{worst:.3e} exceeds {MAKESPAN_ATOL:.0e}"
                    )
                event_wall *= slowdown
                fast_wall *= slowdown
                ops = sum(len(row) for row in schedule.worker_ops)
                stash = sum(
                    1 for t in event.transfers if t.payload == "stash"
                )
                cases.append(
                    {
                        "id": case_id,
                        "scheme": scheme,
                        "depth": depth,
                        "num_micro_batches": n,
                        "mode": mode,
                        "ops": ops,
                        "host_copies": stash,
                        "compute_makespan": event.compute_makespan,
                        "iteration_time": event.iteration_time,
                        "event": {
                            "wall_s": event_wall,
                            "ops_per_sec": ops / event_wall,
                        },
                        "fast": {
                            "wall_s": fast_wall,
                            "ops_per_sec": ops / fast_wall,
                            "speedup": event_wall / fast_wall,
                        },
                    }
                )
    return {
        "cases": cases,
        "fast_speedup_min": min(c["fast"]["speedup"] for c in cases),
    }


def run_suite(
    *,
    fast: bool = False,
    depths: Sequence[int] | None = None,
    schemes: Sequence[str] | None = None,
    repeats: int = 3,
    batch_size: int = BATCH_VARIANTS,
    inject_slowdown: float | None = None,
    planner: bool = True,
) -> dict:
    """Run the suite and assemble the ``BENCH_*.json`` payload.

    ``planner=False`` drops the :func:`run_planner_qps` phase — for
    focused engine measurements (a payload without the section cannot be
    used as a CI baseline gate for planner QPS).
    """
    slowdown = _resolve_slowdown(inject_slowdown)
    cases = suite_cases(fast=fast, depths=depths, schemes=schemes)
    results = [
        run_case(case, repeats=repeats, batch_size=batch_size, slowdown=slowdown)
        for case in cases
    ]
    _check_fused_parity(results)
    d16 = [c for c in results if c["depth"] == 16]
    summary = {
        "makespan_checksum": makespan_checksum(results),
        "fast_speedup_min": min(c["fast"]["speedup"] for c in results),
        "batch_speedup_min": min(c["batch"]["speedup"] for c in results),
    }
    fused_speedups = _fused_event_speedups(results)
    if fused_speedups:
        summary["fused_event_speedup_min"] = min(fused_speedups.values())
    contended = [c for c in results if c["mode"] == "contended"]
    if contended:
        summary["contended_fast_speedup_min"] = min(
            c["fast"]["speedup"] for c in contended
        )
        summary["contended_batch_speedup_min"] = min(
            c["batch"]["speedup"] for c in contended
        )
    if d16:
        summary["d16_fast_speedup_min"] = min(c["fast"]["speedup"] for c in d16)
        summary["d16_batch_speedup_min"] = min(c["batch"]["speedup"] for c in d16)
        d16_fused = {k: v for k, v in fused_speedups.items() if k[1] == 16}
        if d16_fused:
            summary["d16_fused_event_speedup_min"] = min(d16_fused.values())
        d16_contended = [c for c in contended if c["depth"] == 16]
        if d16_contended:
            summary["d16_contended_batch_speedup_min"] = min(
                c["batch"]["speedup"] for c in d16_contended
            )
    offload_section = run_offload_block(
        fast=fast, repeats=repeats, slowdown=slowdown
    )
    summary["offload_fast_speedup_min"] = offload_section["fast_speedup_min"]
    planner_section = run_planner_qps(fast=fast, slowdown=slowdown) if planner else None
    if planner_section is not None:
        summary["planner_qps"] = planner_section["qps"]
        summary["planner_plan_many_speedup"] = planner_section["plan_many_speedup"]
        if "mp_qps" in planner_section:
            summary["planner_mp_qps"] = planner_section["mp_qps"]
        if "mp_speedup" in planner_section:
            summary["planner_mp_speedup"] = planner_section["mp_speedup"]

    # Non-gating cache-efficacy metadata: cumulative process-wide counters
    # after the whole run (the planner section additionally records its
    # own phase-local hit rates).
    from repro.schedules.cache import disk_cache_stats, schedule_cache_stats

    mem = schedule_cache_stats()
    cache_meta = {
        "hits": mem.hits,
        "misses": mem.misses,
        "entries": mem.entries,
        "hit_rate": mem.hit_rate,
    }
    disk = disk_cache_stats()
    if disk is not None:
        cache_meta["disk"] = {
            "hits": disk.hits,
            "misses": disk.misses,
            "stores": disk.stores,
            "evictions": disk.evictions,
            "entries": disk.entries,
            "total_bytes": disk.total_bytes,
            "hit_rate": disk.hit_rate,
        }
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": "fast" if fast else "full",
        "revision": current_revision(),
        "calibration_score": calibration_score(),
        "inject_slowdown": slowdown,
        "cases": results,
        "schedule_cache": cache_meta,
        "summary": summary,
        "offload": offload_section,
        "synthesize": run_synthesize_block(fast=fast),
    }
    if planner_section is not None:
        payload["planner_qps"] = planner_section
    return payload


def _group_by_scheme_depth(results: Sequence[dict]) -> dict[tuple, dict[str, dict]]:
    """(scheme, depth) -> mode -> case. One case identity for the fused
    parity check and the fused speedup summary, so they can never group
    differently."""
    by_key: dict[tuple, dict[str, dict]] = {}
    for case in results:
        by_key.setdefault((case["scheme"], case["depth"]), {})[case["mode"]] = case
    return by_key


def _check_fused_parity(results: Sequence[dict]) -> None:
    """Assert fused == lowered makespans to 1e-9 per (scheme, depth).

    This is fuse_comm's contract on the suite's contention-free model:
    batching a SEND/RECV pair must not move a single op. Runs on every
    suite invocation, so any drift trips both local runs and CI.
    """
    for (scheme, depth), modes in _group_by_scheme_depth(results).items():
        if "lowered" not in modes or "fused" not in modes:
            continue
        for field in ("compute_makespan", "iteration_time"):
            drift = abs(modes["lowered"][field] - modes["fused"][field])
            if drift > MAKESPAN_ATOL:
                raise ScheduleError(
                    f"fuse_comm parity violation on {scheme}/D{depth}: "
                    f"{field} differs by {drift:.3e}"
                )


def _fused_event_speedups(results: Sequence[dict]) -> dict[tuple, float]:
    """(scheme, depth) -> lowered event wall time / fused event wall time.

    Both cases simulate the *same logical schedule* (fusion changes the
    op encoding, not the workload), so the wall-time ratio is the honest
    per-schedule event-engine speedup of batched communication.
    """
    out = {}
    for key, modes in _group_by_scheme_depth(results).items():
        if "lowered" in modes and "fused" in modes:
            fused_wall = modes["fused"]["event"]["wall_s"]
            if fused_wall > 0:
                out[key] = modes["lowered"]["event"]["wall_s"] / fused_wall
    return out


def write_bench_json(payload: dict, path: str | os.PathLike) -> pathlib.Path:
    """Write the payload as pretty JSON; returns the resolved path."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def default_output_name(payload: dict) -> str:
    """Canonical artifact name for one run: ``BENCH_<revision>.json``."""
    return f"BENCH_{payload['revision']}.json"


def check_against(
    current: dict, baseline: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Regression verdicts of ``current`` vs ``baseline`` (empty = pass).

    Makespans must match to :data:`MAKESPAN_ATOL`; normalized throughput
    (ops/sec over the run's own calibration score) must not drop more
    than ``tolerance`` relative to the baseline, per case and per engine.
    When the run covers the D=16 contended reference point, its batched
    kernel speedup over the event engine must also clear the absolute
    :data:`CONTENDED_BATCH_SPEEDUP_FLOOR` — a same-host wall-time ratio,
    so it is checked unnormalized on the current run. The planner load
    harness gates the same two ways: ``plan_many_speedup`` against the
    absolute :data:`PLAN_MANY_SPEEDUP_FLOOR` (same-host ratio), and
    normalized planner QPS against the baseline's with the shared
    ``tolerance``.
    """
    violations: list[str] = []
    floor = current.get("summary", {}).get("d16_contended_batch_speedup_min")
    if floor is not None and floor < CONTENDED_BATCH_SPEEDUP_FLOOR:
        violations.append(
            f"d16 contended batch speedup {floor:.2f}x fell below the "
            f"{CONTENDED_BATCH_SPEEDUP_FLOOR:.0f}x floor"
        )
    planner = current.get("planner_qps") or {}
    plan_speedup = planner.get("plan_many_speedup")
    if plan_speedup is not None and plan_speedup < PLAN_MANY_SPEEDUP_FLOOR:
        violations.append(
            f"plan_many batch speedup {plan_speedup:.2f}x fell below the "
            f"{PLAN_MANY_SPEEDUP_FLOOR:.0f}x floor"
        )
    # The multiprocess floor is a same-run ratio like the other absolute
    # floors, but only physically attainable when the host has at least
    # as many cores as the pool has workers — a single-core refresh
    # records the phase without being gated on an impossible speedup.
    mp_speedup = planner.get("mp_speedup")
    if (
        mp_speedup is not None
        and planner.get("cpu_count", 0) >= QPS_MP_WORKERS
        and planner.get("mp_workers", 0) >= QPS_MP_WORKERS
        and mp_speedup < MP_QPS_FLOOR
    ):
        violations.append(
            f"planner_qps: multiprocess QPS {mp_speedup:.2f}x the "
            f"single-process phase fell below the {MP_QPS_FLOOR:.0f}x "
            f"floor at {planner['mp_workers']} workers"
        )
    if current.get("schema_version") != baseline.get("schema_version"):
        return [
            f"schema version mismatch: current "
            f"{current.get('schema_version')} vs baseline "
            f"{baseline.get('schema_version')} — refresh the baseline"
        ]
    if current.get("suite") != baseline.get("suite"):
        return [
            f"suite mismatch: current {current.get('suite')!r} vs baseline "
            f"{baseline.get('suite')!r} — compare like with like"
        ]
    cur_cases = {c["id"]: c for c in current.get("cases", ())}
    base_cases = {c["id"]: c for c in baseline.get("cases", ())}
    for missing in sorted(set(base_cases) - set(cur_cases)):
        violations.append(f"case disappeared from the suite: {missing}")
    for extra in sorted(set(cur_cases) - set(base_cases)):
        violations.append(f"case not in baseline: {extra} — refresh the baseline")

    cur_cal = float(current.get("calibration_score", 0.0))
    base_cal = float(baseline.get("calibration_score", 0.0))
    if cur_cal <= 0 or base_cal <= 0:
        violations.append("missing calibration score; cannot normalize throughput")
        return violations

    for case_id in sorted(set(cur_cases) & set(base_cases)):
        cur, base = cur_cases[case_id], base_cases[case_id]
        for field in ("compute_makespan", "iteration_time"):
            drift = abs(cur[field] - base[field])
            if drift > MAKESPAN_ATOL:
                violations.append(
                    f"{case_id}: {field} mismatch "
                    f"({cur[field]!r} vs baseline {base[field]!r})"
                )
        for engine in ("event", "fast", "batch"):
            cur_norm = cur[engine]["ops_per_sec"] / cur_cal
            base_norm = base[engine]["ops_per_sec"] / base_cal
            if cur_norm < base_norm * (1.0 - tolerance):
                drop = 1.0 - cur_norm / base_norm
                violations.append(
                    f"{case_id}: {engine} throughput regressed "
                    f"{drop * 100:.1f}% (> {tolerance * 100:.0f}% allowed; "
                    f"normalized {cur_norm:.3f} vs baseline {base_norm:.3f})"
                )

    # The offload section gates identically to the engine cases: exact
    # makespans, normalized event/fast throughput within tolerance.
    cur_off = {
        c["id"]: c for c in (current.get("offload") or {}).get("cases", ())
    }
    base_off = {
        c["id"]: c for c in (baseline.get("offload") or {}).get("cases", ())
    }
    if base_off and not cur_off:
        violations.append(
            "offload section disappeared from the run — refresh or "
            "investigate"
        )
    for missing in sorted(set(base_off) - set(cur_off)):
        violations.append(f"offload case disappeared from the suite: {missing}")
    for extra in sorted(set(cur_off) - set(base_off)):
        violations.append(
            f"offload case not in baseline: {extra} — refresh the baseline"
        )
    for case_id in sorted(set(cur_off) & set(base_off)):
        cur, base = cur_off[case_id], base_off[case_id]
        for field in ("compute_makespan", "iteration_time"):
            drift = abs(cur[field] - base[field])
            if drift > MAKESPAN_ATOL:
                violations.append(
                    f"offload {case_id}: {field} mismatch "
                    f"({cur[field]!r} vs baseline {base[field]!r})"
                )
        for engine in ("event", "fast"):
            cur_norm = cur[engine]["ops_per_sec"] / cur_cal
            base_norm = base[engine]["ops_per_sec"] / base_cal
            if cur_norm < base_norm * (1.0 - tolerance):
                drop = 1.0 - cur_norm / base_norm
                violations.append(
                    f"offload {case_id}: {engine} throughput regressed "
                    f"{drop * 100:.1f}% (> {tolerance * 100:.0f}% allowed; "
                    f"normalized {cur_norm:.3f} vs baseline {base_norm:.3f})"
                )

    base_planner = baseline.get("planner_qps") or {}
    if base_planner and not planner:
        violations.append(
            "planner_qps section disappeared from the run — refresh or "
            "investigate"
        )
    cur_qps, base_qps = planner.get("qps"), base_planner.get("qps")
    if cur_qps is not None and base_qps is not None:
        cur_norm = cur_qps / cur_cal
        base_norm = base_qps / base_cal
        if cur_norm < base_norm * (1.0 - tolerance):
            drop = 1.0 - cur_norm / base_norm
            violations.append(
                f"planner_qps: QPS regressed {drop * 100:.1f}% "
                f"(> {tolerance * 100:.0f}% allowed; normalized "
                f"{cur_norm:.6f} vs baseline {base_norm:.6f})"
            )
    cur_mp, base_mp = planner.get("mp_qps"), base_planner.get("mp_qps")
    if base_mp is not None and cur_mp is None:
        violations.append(
            "planner_qps: multiprocess phase disappeared from the run — "
            "refresh or investigate"
        )
    if cur_mp is not None and base_mp is not None:
        cur_norm = cur_mp / cur_cal
        base_norm = base_mp / base_cal
        if cur_norm < base_norm * (1.0 - tolerance):
            drop = 1.0 - cur_norm / base_norm
            violations.append(
                f"planner_qps: multiprocess QPS regressed {drop * 100:.1f}% "
                f"(> {tolerance * 100:.0f}% allowed; normalized "
                f"{cur_norm:.6f} vs baseline {base_norm:.6f})"
            )
    return violations


def format_suite(payload: dict) -> str:
    """Human-readable table of one suite run."""
    rows = []
    for case in payload["cases"]:
        rows.append(
            [
                case["id"],
                case["ops"],
                f"{case['event']['wall_s'] * 1e3:.2f}",
                f"{case['fast']['wall_s'] * 1e3:.2f}",
                f"{case['batch']['wall_s_per_model'] * 1e3:.2f}",
                f"{case['fast']['speedup']:.1f}x",
                f"{case['batch']['speedup']:.1f}x",
            ]
        )
    table = format_table(
        rows,
        headers=[
            "case",
            "ops",
            "event ms",
            "fast ms",
            "batch ms/model",
            "fast speedup",
            "batch speedup",
        ],
    )
    summary = payload["summary"]
    lines = [
        table,
        "",
        f"revision {payload['revision']}  suite {payload['suite']}  "
        f"calibration {payload['calibration_score']:.0f} steps/s",
        f"min speedup: fast {summary['fast_speedup_min']:.1f}x, "
        f"batch {summary['batch_speedup_min']:.1f}x",
    ]
    if "contended_batch_speedup_min" in summary:
        lines.append(
            f"min contended speedup: batch "
            f"{summary['contended_batch_speedup_min']:.1f}x "
            f"(floor {CONTENDED_BATCH_SPEEDUP_FLOOR:.0f}x at D=16)"
        )
    planner = payload.get("planner_qps")
    if planner and "qps" in planner:
        lines.append(
            f"planner: {planner['qps']:.1f} req/s over "
            f"{planner['requests']} requests "
            f"(p50 {planner['p50_ms']:.0f} ms, p99 {planner['p99_ms']:.0f} ms), "
            f"plan_many {planner['plan_many_speedup']:.1f}x sequential "
            f"(floor {PLAN_MANY_SPEEDUP_FLOOR:.0f}x)"
        )
    if planner and "mp_qps" in planner:
        speedup = planner.get("mp_speedup")
        shown = f"{speedup:.2f}x single-process" if speedup else "n/a"
        lines.append(
            f"planner multiprocess: {planner['mp_qps']:.1f} req/s at "
            f"{planner['mp_workers']} workers ({shown}; floor "
            f"{MP_QPS_FLOOR:.0f}x on >={QPS_MP_WORKERS}-core hosts, "
            f"host has {planner['cpu_count']})"
        )
    if planner and "coalesce_batches" in planner:
        lines.append(
            f"coalesce: {planner['coalesce_clients']} clients -> "
            f"{planner['coalesce_batches']} dispatches "
            f"({planner['coalesced_requests']} coalesced, "
            f"{planner['coalesce_window_ms']:.0f} ms window)"
        )
    offload = payload.get("offload")
    if offload and offload.get("cases"):
        copies = sum(c["host_copies"] for c in offload["cases"])
        lines.append(
            f"offload: {len(offload['cases'])} cases, {copies} host copies, "
            f"min fast speedup {offload['fast_speedup_min']:.1f}x "
            f"(host-channel model, gated)"
        )
    synthesize = payload.get("synthesize")
    if synthesize:
        for point in synthesize["points"]:
            lines.append(
                f"synthesize D={point['depth']} N={point['num_micro_batches']}: "
                f"{point['speedup_vs_best']:.2f}x vs {point['best_scheme']} "
                f"at {point['synthesize_peak_units']:g}/{point['budget_units']:g} "
                f"Ma budget (seed {point['seed']}, "
                f"built in {point['build_wall_s'] * 1e3:.0f} ms; non-gating)"
            )
    lines.append(f"makespan checksum {summary['makespan_checksum'][:16]}…")
    return "\n".join(lines)
