"""Benchmark harness: machine models, workload specs, experiment drivers.

One module per evaluated table/figure of the paper lives in
:mod:`repro.bench.experiments`; the pytest-benchmark entry points in the
top-level ``benchmarks/`` directory call into these drivers and print the
reproduced rows.
"""

from repro.bench.machines import MachineSpec, PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import TransformerSpec, BERT48, GPT2_64, GPT2_32
from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    run_configuration,
    sweep,
    format_table,
)
from repro.bench.perfsuite import check_against, run_suite, suite_cases

__all__ = [
    "MachineSpec",
    "PIZ_DAINT",
    "V100_CLUSTER",
    "TransformerSpec",
    "BERT48",
    "GPT2_64",
    "GPT2_32",
    "ExperimentConfig",
    "ExperimentResult",
    "run_configuration",
    "sweep",
    "format_table",
    "check_against",
    "run_suite",
    "suite_cases",
]
