"""Figure 18: scaling to large mini-batches — GPT-2, 512 nodes.

Everything runs with recomputation at this model size (B = 1 barely fits),
which flips the §3.5 preference: *forward doubling* removes the
intermediate bubbles at no extra cost (recompute is already paid), so
Chimera(doubling) leads; GPipe's regular schedule overtakes DAPPLE.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, format_table, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import GPT2_64

#: label -> (scheme, depth, micro_batch, options)
SERIES = {
    "chimera-direct (B=1, R)": ("chimera", 8, 1, {"concat": "direct"}),
    "chimera-doubling (B=1, R)": ("chimera", 8, 1, {"concat": "doubling"}),
    "dapple (B=1, R)": ("dapple", 8, 1, {}),
    "gpipe (B=1, R)": ("gpipe", 8, 1, {}),
    "gems (B=2)": ("gems", 8, 2, {}),
    "pipedream_2bw (B=1, R)": ("pipedream_2bw", 8, 1, {}),
    "pipedream (B=128, R)": ("pipedream", 8, 2, {}),
}


def run(fast: bool = True) -> str:
    num_workers = 128 if fast else 512
    bbs = (128, 256, 512) if fast else (512, 1024, 1536, 2048)
    body = []
    for label, (scheme, depth, micro_batch, options) in SERIES.items():
        width = num_workers // depth
        row = [label]
        for bb in bbs:
            eff_bb = width * micro_batch if scheme == "pipedream" else bb
            try:
                r = run_configuration(
                    ExperimentConfig(
                        scheme=scheme,
                        machine=PIZ_DAINT,
                        workload=GPT2_64,
                        width=width,
                        depth=depth,
                        micro_batch=micro_batch,
                        mini_batch=eff_bb,
                        options=options,
                    )
                )
                row.append("OOM" if r.oom else f"{r.throughput:.1f}")
            except Exception:
                row.append("-")
        body.append(row)
    return (
        f"Figure 18 reproduction (GPT-2, {num_workers} nodes, large B̂)\n"
        + format_table(body, headers=["series"] + [f"B̂={bb}" for bb in bbs])
    )
