"""Figure 1: GPT-2 on 2,048 nodes, mini-batch 2,048 — the headline result.

Per scheme: bubble ratio, peak memory (with the ``R`` recomputation
annotation), and best throughput at the paper's per-scheme best depth
(PipeDream D=8 R, PipeDream-2BW D=16 R, GPipe D=8 R, GEMS D=8,
DAPPLE D=16 R, Chimera D=32 without recomputation). The expected shape:
Chimera wins, 1.16x over 2BW up to 2.34x over GEMS.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, ExperimentResult, format_table, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import GPT2_64

#: (scheme, depth, micro-batch) — the best configurations annotated in
#: Figure 1 of the paper.
BEST_CONFIGS = (
    ("pipedream", 8, 1),
    ("pipedream_2bw", 16, 1),
    ("gpipe", 8, 1),
    ("gems", 8, 2),
    ("dapple", 16, 1),
    ("chimera", 32, 1),
)

NUM_WORKERS = 2048
MINI_BATCH = 2048


def results(num_workers: int = NUM_WORKERS, mini_batch: int = MINI_BATCH) -> list[ExperimentResult]:
    out = []
    for scheme, depth, micro_batch in BEST_CONFIGS:
        width = num_workers // depth
        bb = mini_batch
        if scheme == "pipedream":
            # PipeDream updates per micro-batch: its effective mini-batch is
            # capped at W * B (the paper scales it 128 -> 512).
            bb = width * micro_batch
        cfg = ExperimentConfig(
            scheme=scheme,
            machine=PIZ_DAINT,
            workload=GPT2_64,
            width=width,
            depth=depth,
            micro_batch=micro_batch,
            mini_batch=bb,
        )
        out.append(run_configuration(cfg))
    return out


def run(fast: bool = True) -> str:
    num_workers = 512 if fast else NUM_WORKERS
    mini_batch = 512 if fast else MINI_BATCH
    res = results(num_workers, mini_batch)
    chimera = next(r for r in res if r.config.scheme == "chimera")
    body = []
    for r in res:
        speedup = (
            chimera.throughput / r.throughput if r.throughput > 0 else float("inf")
        )
        body.append(
            [
                r.label(),
                f"{r.bubble_ratio * 100:.1f}%",
                f"{r.peak_memory_bytes / 2**30:.2f} GiB",
                f"{r.throughput:.1f}",
                f"{speedup:.2f}x",
            ]
        )
    return (
        f"Figure 1 reproduction (GPT-2, P={num_workers}, B̂={mini_batch})\n"
        + format_table(
            body,
            headers=["config", "bubble", "peak mem", "seq/s", "chimera speedup"],
        )
    )
