"""Figure 11: baseline tuning — GPT-2, 512 nodes, B̂ = 512.

At this scale ``B = 1`` dominates (memory), so the sweep is over depth;
GEMS additionally sweeps larger micro-batches (its bubble ratio does not
benefit from small B).
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    best_result,
    format_table,
    sweep,
)
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import GPT2_64

NUM_WORKERS = 512
MINI_BATCH = 512


def configurations(scheme: str, *, fast: bool = True) -> list[ExperimentConfig]:
    num_workers = 128 if fast else NUM_WORKERS
    mini_batch = 128 if fast else MINI_BATCH
    depths = (4, 8, 16, 32)
    micro_batches = {
        "gems": (1, 2, 4, 8),
        "pipedream": (1, 2),
    }.get(scheme, (1, 2))
    out = []
    for depth in depths:
        if num_workers % depth or GPT2_64.num_layers % depth:
            continue
        width = num_workers // depth
        for b in micro_batches:
            bb = width * b if scheme == "pipedream" else mini_batch
            if bb % (width * b):
                continue
            out.append(
                ExperimentConfig(
                    scheme=scheme,
                    machine=PIZ_DAINT,
                    workload=GPT2_64,
                    width=width,
                    depth=depth,
                    micro_batch=b,
                    mini_batch=bb,
                )
            )
    return out


def tune(scheme: str, *, fast: bool = True) -> tuple[list[ExperimentResult], ExperimentResult | None]:
    results = sweep(configurations(scheme, fast=fast))
    return results, best_result(results)


def run(fast: bool = True) -> str:
    blocks = []
    for scheme in ("dapple", "gpipe", "gems", "pipedream_2bw", "pipedream"):
        results, best = tune(scheme, fast=fast)
        body = [
            [
                f"D={r.config.depth}",
                r.config.micro_batch,
                "R" if r.recompute else "",
                "OOM" if r.oom else f"{r.throughput:.1f}",
                "*" if best is r else "",
            ]
            for r in results
        ]
        blocks.append(
            f"{scheme}\n"
            + format_table(body, headers=["depth", "B", "", "seq/s", "best"])
        )
    scale = "128 nodes (fast mode)" if fast else f"{NUM_WORKERS} nodes"
    return f"Figure 11 reproduction (GPT-2, {scale})\n\n" + "\n\n".join(blocks)
