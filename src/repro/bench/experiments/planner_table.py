"""Planner table: best configurations vs. peak-memory budget, per machine.

Not a figure from the Chimera paper — this table exercises the
scheme-agnostic planner (:mod:`repro.perf.planner`) the way the
controllable-memory paper [Qi et al. 2024] motivates it: sweep the
per-device activation budget downwards and watch the winning configuration
migrate from the fastest schedule to the memory-lean zero-bubble variants
(``zb_v`` -> ``zb_vhalf`` -> ``zb_vmin``/recompute) before the search
space empties. Run for at least two machine specs so the NVLink-vs-flat
contrast shows in the rankings.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.bench.harness import format_table
from repro.bench.machines import MachineSpec, PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, TransformerSpec
from repro.perf.planner import PlanEntry, plan_configurations

#: Synchronous subset used in fast mode (the async PipeDream family costs
#: extra steady-state simulations and its rankings do not change with the
#: budget narrative shown here).
FAST_SCHEMES = ("dapple", "chimera", "zb_h1", "zb_v", "zb_vhalf", "zb_vmin")


def best_per_budget(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    budgets_gib: tuple[float | None, ...],
    schemes: tuple[str, ...] | None = None,
    lowered: bool = True,
) -> list[tuple[float | None, PlanEntry | None, int]]:
    """Top plan entry and survivor count for each budget (None = infeasible)."""
    out: list[tuple[float | None, PlanEntry | None, int]] = []
    for gib in budgets_gib:
        budget = gib * GIB if gib is not None else None
        try:
            entries = plan_configurations(
                machine,
                workload,
                num_workers=num_workers,
                mini_batch=mini_batch,
                memory_budget_bytes=budget,
                schemes=schemes,
                lowered=lowered,
            )
        except ConfigurationError:
            out.append((gib, None, 0))
            continue
        out.append((gib, entries[0], len(entries)))
    return out


def run(fast: bool = True) -> str:
    if fast:
        scenarios = [(PIZ_DAINT, BERT48, 16, 128), (V100_CLUSTER, BERT48, 16, 128)]
        budgets: tuple[float | None, ...] = (None, 6.0, 3.0, 2.0)
        schemes: tuple[str, ...] | None = FAST_SCHEMES
    else:
        scenarios = [(PIZ_DAINT, BERT48, 32, 512), (V100_CLUSTER, BERT48, 32, 512)]
        budgets = (None, 10.0, 6.0, 4.0, 3.0, 2.0, 1.5)
        schemes = None
    blocks = []
    for machine, workload, num_workers, mini_batch in scenarios:
        body = []
        for gib, best, count in best_per_budget(
            machine,
            workload,
            num_workers=num_workers,
            mini_batch=mini_batch,
            budgets_gib=budgets,
            schemes=schemes,
        ):
            label = "device" if gib is None else f"{gib:g} GiB"
            if best is None:
                body.append([label, 0, "(no feasible configuration)", "-", "-"])
            else:
                body.append(
                    [
                        label,
                        count,
                        best.label(),
                        f"{best.throughput:.1f}",
                        f"{best.peak_memory_bytes / GIB:.2f}",
                    ]
                )
        blocks.append(
            f"{workload.name} on {machine.name} (P={num_workers}, B̂={mini_batch})\n"
            + format_table(
                body,
                headers=["budget", "fits", "best configuration", "seq/s", "peak GiB"],
            )
        )
    return (
        "Planner table (scheme-agnostic search under a peak-memory budget)\n\n"
        + "\n\n".join(blocks)
    )
