"""Figure 15: weak scaling, GPT-2 on Piz Daint (512 -> 2,048 nodes).

Legend configurations: Chimera (D=32, B=1, no recompute — the balanced
memory lets it skip recomputation, §4.2.3), DAPPLE (D=16, B=1, R),
GPipe (D=8->16, B=1, R), GEMS (D=8, B=2), PipeDream-2BW (D=16, B=1, R),
PipeDream (D=8, B̂ = 128 -> 512, R). Also reports Chimera's weak-scaling
parallel efficiency at the largest scale (paper: 91.4%).
"""

from __future__ import annotations

from repro.bench.experiments.figure14 import scaling_results
from repro.bench.harness import format_table
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import GPT2_64
from repro.sim.metrics import parallel_efficiency

LEGEND = {
    "chimera": (32, 1),
    "dapple": (16, 1),
    "gpipe": (8, 1),
    "gems": (8, 2),
    "pipedream_2bw": (16, 1),
    "pipedream": (8, 1),
}


def run(fast: bool = True) -> str:
    if fast:
        scales = ((128, 128), (256, 256), (512, 512))
    else:
        scales = ((512, 512), (1024, 1024), (2048, 2048))
    data = scaling_results(
        machine=PIZ_DAINT, workload=GPT2_64, scales=scales, legend=LEGEND
    )
    body = []
    for scheme, series in data.items():
        row = [series[0].label()]
        row.extend("OOM" if r.oom else f"{r.throughput:.1f}" for r in series)
        body.append(row)
    chimera = data["chimera"]
    eff = parallel_efficiency(
        chimera[0].throughput,
        scales[0][0],
        chimera[-1].throughput,
        scales[-1][0],
    )
    lines = [
        "Figure 15 reproduction (weak scaling, GPT-2, Piz Daint model)",
        format_table(body, headers=["config"] + [f"{p} nodes" for p, _ in scales]),
        f"Chimera weak-scaling efficiency {scales[0][0]} -> {scales[-1][0]} nodes: "
        f"{eff * 100:.1f}% (paper: 91.4% for 512 -> 2,048)",
        "Chimera speedups at the largest scale: "
        + ", ".join(
            f"{scheme} {chimera[-1].throughput / series[-1].throughput:.2f}x"
            for scheme, series in data.items()
            if scheme != "chimera" and series[-1].throughput > 0
        ),
    ]
    return "\n".join(lines)
