"""Figure 14: weak scaling, Bert-48 on Piz Daint (16 -> 64 nodes).

Per-scheme best configurations from the paper's legend: Chimera (D=4,
B=8), DAPPLE (D=4, B=4), GEMS (D=4, B=32), GPipe (D=4, B=4, R),
PipeDream-2BW (D=4, B=16, R), PipeDream (D=8, B̂ = 24 -> 96). Expected
shape at 64 nodes: Chimera first; 2BW and DAPPLE next; GPipe behind
(recompute); PipeDream hurt by per-micro-batch allreduce; GEMS last.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, ExperimentResult, format_table, run_configuration
from repro.bench.machines import MachineSpec, PIZ_DAINT
from repro.bench.workloads import BERT48, TransformerSpec

#: scheme -> (depth, micro_batch)
LEGEND = {
    "chimera": (4, 8),
    "dapple": (4, 4),
    "gems": (4, 32),
    "gpipe": (4, 4),
    "pipedream_2bw": (4, 16),
    "pipedream": (8, 12),
}


def scaling_results(
    machine: MachineSpec = PIZ_DAINT,
    workload: TransformerSpec = BERT48,
    scales: tuple[tuple[int, int], ...] = ((16, 256), (32, 512), (64, 1024)),
    legend: dict | None = None,
) -> dict[str, list[ExperimentResult]]:
    legend = legend or LEGEND
    out: dict[str, list[ExperimentResult]] = {}
    for scheme, (depth, micro_batch) in legend.items():
        series = []
        for num_workers, mini_batch in scales:
            width = num_workers // depth
            bb = mini_batch
            if scheme == "pipedream":
                bb = width * micro_batch
            series.append(
                run_configuration(
                    ExperimentConfig(
                        scheme=scheme,
                        machine=machine,
                        workload=workload,
                        width=width,
                        depth=depth,
                        micro_batch=micro_batch,
                        mini_batch=bb,
                    )
                )
            )
        out[scheme] = series
    return out


def run(fast: bool = True) -> str:
    scales = ((16, 256), (32, 512), (64, 1024))
    data = scaling_results(scales=scales)
    body = []
    for scheme, series in data.items():
        row = [series[0].label()]
        row.extend("OOM" if r.oom else f"{r.throughput:.1f}" for r in series)
        body.append(row)
    chimera = data["chimera"][-1].throughput
    lines = [
        "Figure 14 reproduction (weak scaling, Bert-48, Piz Daint model)",
        format_table(
            body,
            headers=["config"] + [f"{p} nodes" for p, _ in scales],
        ),
        "Chimera speedups at 64 nodes: "
        + ", ".join(
            f"{scheme} {chimera / series[-1].throughput:.2f}x"
            for scheme, series in data.items()
            if scheme != "chimera" and series[-1].throughput > 0
        ),
    ]
    return "\n".join(lines)
