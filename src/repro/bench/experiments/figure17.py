"""Figure 17: scaling to large mini-batches — Bert-48, 32 nodes.

Sweep B̂ up to 4,096 with per-scheme best micro-batches. Chimera runs all
three §3.5 concatenation strategies. Expected shapes: *direct* is
Chimera's best on Bert-48 (intermediate bubbles double as p2p slack);
at B̂ >= 1024 Chimera(direct) approaches PipeDream-2BW and beats GPipe
(recompute tax), GEMS (bubbles), and edges DAPPLE.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, format_table, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48

NUM_WORKERS = 32

#: label -> (scheme, depth, micro_batch, options)
SERIES = {
    "chimera-direct (B=8)": ("chimera", 4, 8, {"concat": "direct"}),
    "chimera-doubling (B=8)": ("chimera", 4, 8, {"concat": "doubling"}),
    "chimera-halving (B=4)": ("chimera", 4, 4, {"concat": "halving"}),
    "dapple (B=8)": ("dapple", 4, 8, {}),
    "gpipe (B=8)": ("gpipe", 4, 8, {}),
    "gems (B=32)": ("gems", 4, 32, {}),
    "pipedream_2bw (B=32)": ("pipedream_2bw", 4, 32, {}),
    "pipedream (B=48->fixed)": ("pipedream", 8, 12, {}),
}


def mini_batches(fast: bool) -> tuple[int, ...]:
    return (512, 1024, 2048) if fast else (512, 1024, 2048, 4096)


def run(fast: bool = True) -> str:
    bbs = mini_batches(fast)
    body = []
    series_data: dict[str, list[float]] = {}
    for label, (scheme, depth, micro_batch, options) in SERIES.items():
        width = NUM_WORKERS // depth
        row = [label]
        values = []
        for bb in bbs:
            eff_bb = width * micro_batch if scheme == "pipedream" else bb
            try:
                r = run_configuration(
                    ExperimentConfig(
                        scheme=scheme,
                        machine=PIZ_DAINT,
                        workload=BERT48,
                        width=width,
                        depth=depth,
                        micro_batch=micro_batch,
                        mini_batch=eff_bb,
                        options=options,
                    )
                )
                value = 0.0 if r.oom else r.throughput
                row.append("OOM" if r.oom else f"{r.throughput:.1f}")
            except Exception:
                value = 0.0
                row.append("-")
            values.append(value)
        series_data[label] = values
        body.append(row)
    return (
        f"Figure 17 reproduction (Bert-48, {NUM_WORKERS} nodes, large B̂)\n"
        + format_table(body, headers=["series"] + [f"B̂={bb}" for bb in bbs])
    )
