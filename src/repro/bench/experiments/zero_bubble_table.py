"""Zero-bubble comparison: ZB-H1 / ZB-V vs the paper's synchronous schemes.

Not a figure from the Chimera paper — this table positions Chimera against
the strongest modern synchronous baseline [Qi et al., "Zero Bubble Pipeline
Parallelism"]. For a sweep of (D, N) shapes it reports each scheme's
simulated bubble ratio and activation peak under the practical cost model
(``B = 2F``, split ``b = w = F``), the head-to-head makespan gain of the
zero-bubble schedules over DAPPLE, and Chimera's position between them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio

#: Synchronous schemes compared, in presentation order. The
#: memory-controllable variants close the table: same V placement as
#: ZB-V, progressively smaller activation peaks, longer ramps.
SCHEMES = ("dapple", "chimera", "zb_h1", "zb_v", "zb_vhalf", "zb_vmin")


@dataclass(frozen=True)
class ZeroBubbleRow:
    depth: int
    n: int
    scheme: str
    bubble: float
    makespan: float
    speedup_vs_dapple: float
    act_units_max: float


def rows(shapes: list[tuple[int, int]]) -> list[ZeroBubbleRow]:
    out: list[ZeroBubbleRow] = []
    for depth, n in shapes:
        baseline = simulate(
            build_schedule("dapple", depth, n), CostModel.practical()
        )
        for scheme in SCHEMES:
            schedule = build_schedule(scheme, depth, n)
            # ZB-V splits the same model into 2D chunks over D workers, so
            # one chunk carries depth/num_stages of a stage's compute and
            # activations; scaling keeps total model work and memory
            # identical across rows (fair head-to-head makespans).
            scale = depth / schedule.num_stages
            result = simulate(
                schedule, CostModel.practical().with_(forward_time=scale)
            )
            report = analyze_memory(
                schedule, MemoryModel(activation_bytes=scale)
            )
            out.append(
                ZeroBubbleRow(
                    depth=depth,
                    n=n,
                    scheme=scheme,
                    bubble=bubble_ratio(result),
                    makespan=result.compute_makespan,
                    speedup_vs_dapple=(
                        baseline.compute_makespan / result.compute_makespan
                    ),
                    act_units_max=max(
                        w.activation_peak_bytes for w in report.workers
                    ),
                )
            )
    return out


def run(fast: bool = True) -> str:
    shapes = [(4, 8), (8, 8), (8, 16)] if fast else [(8, 16), (8, 32), (16, 32), (16, 64)]
    body = [
        [
            f"D={r.depth}, N={r.n}",
            r.scheme,
            f"{r.bubble:.3f}",
            f"{r.makespan:g}",
            f"{r.speedup_vs_dapple:.3f}x",
            f"{r.act_units_max:g} Ma",
        ]
        for r in rows(shapes)
    ]
    return (
        "Zero-bubble family vs synchronous baselines "
        "(practical model, b = w = F)\n"
        + format_table(
            body,
            headers=[
                "shape",
                "scheme",
                "bubble",
                "makespan",
                "vs dapple",
                "peak act",
            ],
        )
    )
