"""One driver per table/figure of the paper's evaluation (§4).

Every module exposes ``run(fast=True) -> str`` returning the reproduced
rows/series as a formatted table (printed by the corresponding
``benchmarks/bench_*.py`` target) plus, where applicable, structured data
for the assertions in the test suite. ``fast=True`` trims sweep sizes so
the full suite stays interactive; the shapes are identical.
"""

from repro.bench.experiments import (
    figure1,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure18,
    figure19,
    planner_table,
    table2,
    table3,
    table4,
    zero_bubble_table,
)

__all__ = [
    "figure1",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure18",
    "figure19",
    "planner_table",
    "table2",
    "table3",
    "table4",
    "zero_bubble_table",
]
