"""Table 4: the evaluated networks and their reconstructed dimensions."""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.bench.workloads import BERT48, GPT2_32, GPT2_64

#: Parameter counts as published in Table 4 of the paper.
PAPER_PARAMS = {"bert-48": 669_790_012, "gpt2-64": 1_389_327_360}


def run(fast: bool = True) -> str:
    body = []
    for spec in (BERT48, GPT2_64, GPT2_32):
        paper = PAPER_PARAMS.get(spec.name)
        err = (
            f"{abs(spec.total_params - paper) / paper * 100:.2f}%"
            if paper
            else "-"
        )
        body.append(
            [
                spec.name,
                spec.num_layers,
                spec.hidden,
                spec.heads,
                spec.seq,
                f"{spec.total_params:,}",
                f"{paper:,}" if paper else "-",
                err,
            ]
        )
    return "Table 4 reproduction (reconstructed architectures)\n" + format_table(
        body,
        headers=[
            "network",
            "layers",
            "hidden",
            "heads",
            "seq",
            "params (ours)",
            "params (paper)",
            "error",
        ],
    )
