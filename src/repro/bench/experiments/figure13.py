"""Figure 13: performance-model prediction vs simulated practice.

For each candidate (W, D) the paper plots Chimera's modelled and measured
throughput; the model picks the configuration, and its error stays under
10%. Here "practice" is the full heterogeneous-cost simulation and
"model" the Equation (1) prediction over homogenized stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48, GPT2_64, TransformerSpec
from repro.perf.calibration import calibrate_cost_model
from repro.perf.model import predict_iteration_time
from repro.perf.planner import greedy_micro_batch
from repro.schedules.registry import build_schedule
from repro.sim.engine import simulate


@dataclass(frozen=True)
class ModelVsPractice:
    width: int
    depth: int
    micro_batch: int
    recompute: bool
    modelled: float  # sequences/s
    simulated: float  # sequences/s

    @property
    def error(self) -> float:
        return abs(self.modelled - self.simulated) / self.simulated


def evaluate(
    workload: TransformerSpec,
    num_workers: int,
    mini_batch: int,
    depths: tuple[int, ...],
) -> list[ModelVsPractice]:
    out = []
    for depth in depths:
        if num_workers % depth or workload.num_layers % depth:
            continue
        width = num_workers // depth
        picked = greedy_micro_batch(
            PIZ_DAINT, workload, width=width, depth=depth, mini_batch=mini_batch
        )
        if picked is None:
            continue
        micro_batch, recompute = picked
        n = mini_batch // (width * micro_batch)
        cost = calibrate_cost_model(
            PIZ_DAINT,
            workload,
            depth=depth,
            micro_batch=micro_batch,
            data_parallel_width=width,
        )
        prediction = predict_iteration_time(depth, n, cost, recompute=recompute)
        schedule = build_schedule("chimera", depth, n, recompute=recompute)
        practice = simulate(schedule, cost)
        out.append(
            ModelVsPractice(
                width=width,
                depth=depth,
                micro_batch=micro_batch,
                recompute=recompute,
                modelled=mini_batch / prediction.iteration_time,
                simulated=mini_batch / practice.iteration_time,
            )
        )
    return out


def run(fast: bool = True) -> str:
    panels = [
        ("Bert-48, 32 nodes, B̂=256", BERT48, 32, 256, (2, 4, 8, 16)),
    ]
    if not fast:
        panels.append(("GPT-2, 512 nodes, B̂=512", GPT2_64, 512, 512, (8, 16, 32, 64)))
    else:
        panels.append(("GPT-2, 128 nodes, B̂=128", GPT2_64, 128, 128, (8, 16, 32, 64)))
    blocks = []
    for title, workload, p, bb, depths in panels:
        rows = evaluate(workload, p, bb, depths)
        body = [
            [
                f"W={r.width}, D={r.depth}, B={r.micro_batch}" + (", R" if r.recompute else ""),
                f"{r.simulated:.1f}",
                f"{r.modelled:.1f}",
                f"{r.error * 100:.1f}%",
            ]
            for r in rows
        ]
        blocks.append(
            f"{title}\n"
            + format_table(body, headers=["config", "practice seq/s", "model seq/s", "error"])
        )
    return "Figure 13 reproduction (performance model accuracy)\n\n" + "\n\n".join(blocks)
