"""Table 3: Chimera generalized to 2f pipelines.

For each divisor ``f`` of ``Q = D/2``: model replicas ``2f``, bubble ratio
``(D - 2f) / (2fN + D - 2f)``, weights ``2f * M0``, activations in
``[(D - D/2f + 1) Ma, D Ma]``. All four columns are checked against the
built schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.schedules.chimera import build_chimera_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio


@dataclass(frozen=True)
class Table3Row:
    f: int
    replicas: int
    analytic_bubble: float
    measured_bubble: float
    act_min_analytic: float
    act_min_measured: float
    act_max_measured: float


def divisors(q: int) -> list[int]:
    return [f for f in range(1, q + 1) if q % f == 0]


def rows(depth: int = 8) -> list[Table3Row]:
    n = depth
    out = []
    # Equal F/B widths: Table 3's bubble formula counts equal slots.
    cost = CostModel.unit()
    memory = MemoryModel(activation_bytes=1.0, weight_bytes=1.0)
    for f in divisors(depth // 2):
        schedule = build_chimera_schedule(
            depth, n, num_down_pipelines=f, slot_model="unit"
        )
        result = simulate(schedule, cost)
        report = analyze_memory(schedule, memory)
        units = [w.activation_peak_units for w in report.workers]
        out.append(
            Table3Row(
                f=f,
                replicas=schedule.num_replicas,
                analytic_bubble=(depth - 2 * f) / (2 * f * n + depth - 2 * f),
                measured_bubble=bubble_ratio(result),
                act_min_analytic=depth - depth / (2 * f) + 1,
                act_min_measured=min(units),
                act_max_measured=max(units),
            )
        )
    return out


def run(fast: bool = True) -> str:
    depth = 8 if fast else 16
    body = [
        [
            r.f,
            f"{r.replicas}",
            f"{r.analytic_bubble:.3f}",
            f"{r.measured_bubble:.3f}",
            f"{r.act_min_analytic:g}",
            f"[{r.act_min_measured:g}, {r.act_max_measured:g}]",
        ]
        for r in rows(depth)
    ]
    return (
        f"Table 3 reproduction (D={depth}, N=D, equal F/B slots)\n"
        + format_table(
            body,
            headers=[
                "f",
                "replicas 2f",
                "bubble (paper)",
                "bubble (sim)",
                "act min (paper)",
                "act [min,max] (sim)",
            ],
        )
    )
