"""Table 2: bubble ratio / weights / activations memory per scheme.

The analytic columns come straight from the paper's formulas; the measured
columns from the discrete-event simulation and the memory model. Matching
them is the core structural validation of the schedule builders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.schedules.analysis import bubble_ratio_formula
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio


@dataclass(frozen=True)
class Table2Row:
    scheme: str
    analytic_bubble: float
    measured_bubble: float
    act_units_min: float
    act_units_max: float
    weight_copies: int
    synchronous: bool


def analytic_bubble_ratio(scheme: str, depth: int, n: int) -> float:
    """Paper Table 2 formulas, under the practical B = 2F workload."""
    d = depth
    if scheme in ("gpipe", "dapple"):
        return (d - 1) / (n + d - 1)
    if scheme == "gems":
        return (d - 1) / (d + 0.5)
    if scheme == "chimera":
        # Practical schedule before middle-bubble removal (§2):
        return (d - 2) / (1.5 * n + d - 2)
    if scheme in ("zb_h1", "zb_v", "zb_vhalf", "zb_vmin"):
        # Zero-bubble rows: b = w = F, see repro.schedules.analysis.
        return bubble_ratio_formula(scheme, depth, n)
    return 0.0  # PipeDream family: ~0 in steady state


def rows(depth: int = 8, n: int = 8) -> list[Table2Row]:
    out: list[Table2Row] = []
    cost = CostModel.practical()
    memory = MemoryModel(activation_bytes=1.0, weight_bytes=1.0)
    for scheme in available_schemes():
        if scheme_traits(scheme).cost_parameterized:
            continue  # no single Table-2 row: output depends on the cost model
        schedule = build_schedule(scheme, depth, n)
        result = simulate(schedule, cost)
        report = analyze_memory(schedule, memory)
        units = [w.activation_peak_units for w in report.workers]
        out.append(
            Table2Row(
                scheme=scheme,
                analytic_bubble=analytic_bubble_ratio(scheme, depth, n),
                measured_bubble=bubble_ratio(result),
                act_units_min=min(units),
                act_units_max=max(units),
                weight_copies=schedule.num_replicas,
                synchronous=schedule.synchronous,
            )
        )
    return out


def run(fast: bool = True) -> str:
    depth, n = (8, 8) if fast else (16, 16)
    table = rows(depth, n)
    body = [
        [
            r.scheme,
            f"{r.analytic_bubble:.3f}",
            f"{r.measured_bubble:.3f}",
            f"[{r.act_units_min:g}, {r.act_units_max:g}] Ma",
            f"{r.weight_copies} M0",
            "sync" if r.synchronous else "ASYNC (stale)",
        ]
        for r in table
    ]
    return (
        f"Table 2 reproduction (D={depth}, N={n}, backward = 2x forward)\n"
        + format_table(
            body,
            headers=[
                "scheme",
                "bubble (paper)",
                "bubble (sim)",
                "activations",
                "weights",
                "convergence",
            ],
        )
    )
