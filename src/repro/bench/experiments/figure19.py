"""Figure 19: Chimera with more than two pipelines (32-layer GPT-2).

B̂ = 64 on 64 nodes; ``pipes = 2f`` model replicas. One pipe is plain
1F1B-with-flush (DAPPLE). Expected shape: with (W=2, D=32) four pipes win
(bubbles still matter at D=32 and the allreduce is affordable); with
(W=4, D=16) the extra allreduce overhead already outweighs the bubble
savings and two pipes (the Chimera default) win.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentConfig, format_table, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import GPT2_32

NUM_WORKERS = 64
MINI_BATCH = 64


def pipe_counts(depth: int) -> list[int]:
    q = depth // 2
    return [1] + [2 * f for f in range(1, q + 1) if q % f == 0]


def throughput(width: int, depth: int, pipes: int) -> float:
    if pipes == 1:
        cfg = ExperimentConfig(
            scheme="dapple",
            machine=PIZ_DAINT,
            workload=GPT2_32,
            width=width,
            depth=depth,
            micro_batch=1,
            mini_batch=MINI_BATCH,
        )
    else:
        cfg = ExperimentConfig(
            scheme="chimera",
            machine=PIZ_DAINT,
            workload=GPT2_32,
            width=width,
            depth=depth,
            micro_batch=1,
            mini_batch=MINI_BATCH,
            options={"num_down_pipelines": pipes // 2},
        )
    r = run_configuration(cfg)
    return 0.0 if r.oom else r.throughput


def panel(width: int, depth: int, max_pipes: int | None = None) -> list[tuple[int, float]]:
    counts = pipe_counts(depth)
    if max_pipes is not None:
        counts = [c for c in counts if c <= max_pipes]
    return [(pipes, throughput(width, depth, pipes)) for pipes in counts]


def run(fast: bool = True) -> str:
    cap = 8 if fast else None
    blocks = []
    for width, depth in ((2, 32), (4, 16)):
        data = panel(width, depth, max_pipes=cap)
        best = max(data, key=lambda t: t[1])
        body = [
            [f"{pipes} pipe{'s' if pipes > 1 else ''}", f"{thr:.2f}", "*" if (pipes, thr) == best else ""]
            for pipes, thr in data
        ]
        blocks.append(
            f"W={width}, D={depth}\n"
            + format_table(body, headers=["pipelines", "seq/s", "best"])
        )
    return (
        f"Figure 19 reproduction (GPT-2 32L, {NUM_WORKERS} nodes, B̂={MINI_BATCH})\n\n"
        + "\n\n".join(blocks)
    )
