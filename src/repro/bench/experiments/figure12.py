"""Figure 12: eager-sync vs eager-sync-opt gradient synchronization.

Bert-48 with D = 4, B = 8; B̂ scales 256 -> 1024 as P scales 16 -> 64.
``eager-sync`` posts non-blocking allreduces for *every* stage right after
its gradients complete; ``eager-sync-opt`` skips the middle stages, whose
gradients only finish at the end of local compute — the eager launch there
cannot overlap anything and its progression overhead sits on the critical
path (§3.2). Expected: eager-sync-opt consistently faster (paper: up to
1.09x at 64 nodes).
"""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.perf.calibration import calibrate_cost_model
from repro.schedules.chimera import build_chimera_schedule
from repro.sim.engine import simulate

DEPTH = 4
MICRO_BATCH = 8


def throughputs(num_workers: int, mini_batch: int) -> dict[str, float]:
    """sequences/s for lazy / eager / eager_opt at one scale."""
    width = num_workers // DEPTH
    n = mini_batch // (width * MICRO_BATCH)
    cost = calibrate_cost_model(
        PIZ_DAINT,
        BERT48,
        depth=DEPTH,
        micro_batch=MICRO_BATCH,
        data_parallel_width=width,
        # The progression overhead of posting a non-blocking collective is
        # the effect this figure isolates; GLOO's helper threads cost a
        # noticeable slice of a (small) stage forward...
        sync_launch_overhead_fraction=0.25,
        # ...and contend with compute while the collective is in flight.
    ).with_(sync_overlap_slowdown=0.8)
    out = {}
    for mode in ("lazy", "eager", "eager_opt"):
        schedule = build_chimera_schedule(DEPTH, n, sync_mode=mode)
        result = simulate(schedule, cost)
        out[mode] = mini_batch / result.iteration_time
    return out


def run(fast: bool = True) -> str:
    scales = ((16, 256), (32, 512), (64, 1024))
    body = []
    for num_workers, mini_batch in scales:
        t = throughputs(num_workers, mini_batch)
        body.append(
            [
                f"{num_workers} nodes",
                f"{t['lazy']:.1f}",
                f"{t['eager']:.1f}",
                f"{t['eager_opt']:.1f}",
                f"{t['eager_opt'] / t['eager']:.3f}x",
            ]
        )
    return (
        "Figure 12 reproduction (Bert-48, D=4, B=8; sync strategies)\n"
        + format_table(
            body,
            headers=["scale", "lazy", "eager-sync", "eager-sync-opt", "opt/eager"],
        )
    )
