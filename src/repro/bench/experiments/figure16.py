"""Figure 16: weak scaling, Bert-48 on the 32x V100 NVLink/IB cluster.

Sequence length 512 (heavier per-token compute than the Piz Daint runs);
B̂ scales 128 -> 256 as the GPU count scales 16 -> 32. Legend: Chimera
(D=4->8, B=4), DAPPLE (D=4, B=2), GEMS (D=4->8, B=8), GPipe (D=4, B=2,
R), PipeDream-2BW (D=4, B=4), PipeDream (D=4, B̂=16->32). Expected: the
same ordering as on Piz Daint — Chimera first — "the same conclusions hold
on newer machines".
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import ExperimentConfig, format_table, run_configuration
from repro.bench.machines import V100_CLUSTER
from repro.bench.workloads import BERT48

#: Bert-48 with the longer sequence used on the V100 cluster.
BERT48_SEQ512 = replace(BERT48, name="bert-48-seq512", seq=512)

#: scheme -> per-scale (depth, micro_batch)
LEGEND = {
    "chimera": ((4, 4), (8, 4)),
    "dapple": ((4, 2), (4, 2)),
    "gems": ((4, 8), (8, 8)),
    "gpipe": ((4, 2), (4, 2)),
    "pipedream_2bw": ((4, 4), (4, 4)),
    "pipedream": ((4, 4), (4, 4)),
}

SCALES = ((16, 128), (32, 256))


def run(fast: bool = True) -> str:
    body = []
    winners = {}
    for scheme, per_scale in LEGEND.items():
        row = [scheme]
        for (num_gpus, mini_batch), (depth, micro_batch) in zip(SCALES, per_scale):
            width = num_gpus // depth
            bb = width * micro_batch if scheme == "pipedream" else mini_batch
            r = run_configuration(
                ExperimentConfig(
                    scheme=scheme,
                    machine=V100_CLUSTER,
                    workload=BERT48_SEQ512,
                    width=width,
                    depth=depth,
                    micro_batch=micro_batch,
                    mini_batch=bb,
                )
            )
            winners.setdefault(num_gpus, []).append((scheme, r.throughput))
            row.append("OOM" if r.oom else f"{r.throughput:.1f} ({r.label()})")
        body.append(row)
    table = format_table(
        body, headers=["scheme"] + [f"{g} GPUs" for g, _ in SCALES]
    )
    sync_schemes = {"chimera", "dapple", "gems", "gpipe"}
    summary = []
    for num_gpus, entries in winners.items():
        entries.sort(key=lambda t: -t[1])
        best_sync = next(s for s, _ in entries if s in sync_schemes)
        summary.append(
            f"{num_gpus} GPUs winner: {entries[0][0]} (sync winner: {best_sync})"
        )
    return (
        "Figure 16 reproduction (Bert-48 seq 512, V100 NVLink/IB cluster)\n"
        + table
        + "\n"
        + "; ".join(summary)
    )
