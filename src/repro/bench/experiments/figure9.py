"""Figure 9: per-worker memory distribution on 32 GPU nodes.

Six configurations (three Bert-48, three 32-layer GPT-2). For each scheme
we report min/max per-worker memory and whether the configuration OOMs on
a 16 GiB P100. Expected shapes: GPipe OOMs everywhere (N in-flight
activations); PipeDream's weight stashes are the second heaviest;
DAPPLE/2BW peak on the first worker; Chimera is visibly flatter and close
to or below DAPPLE's peak; GEMS is the smallest.
"""

from __future__ import annotations

from repro.bench.harness import format_table
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48, GPT2_32, TransformerSpec
from repro.perf.calibration import calibrate_memory_model
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.sim.memory import MemoryReport, analyze_memory

#: (workload, W, D, B, B̂) — the six panels of Figure 9.
CONFIGS: tuple[tuple[TransformerSpec, int, int, int, int], ...] = (
    (BERT48, 2, 16, 8, 512),
    (BERT48, 4, 8, 8, 512),
    (BERT48, 4, 8, 16, 512),
    (GPT2_32, 1, 32, 1, 512),
    (GPT2_32, 2, 16, 1, 512),
    (GPT2_32, 2, 16, 2, 512),
)


def memory_report(
    workload: TransformerSpec, width: int, depth: int, micro_batch: int, mini_batch: int, scheme: str
) -> MemoryReport:
    n = mini_batch // (width * micro_batch)
    schedule = build_schedule(scheme, depth, n)
    # Calibrate per the schedule's own stage count: the V-shaped
    # zero-bubble family folds 2D half-size chunks over D workers.
    model = calibrate_memory_model(
        PIZ_DAINT, workload, depth=schedule.num_stages, micro_batch=micro_batch
    )
    return analyze_memory(schedule, model)


def run(fast: bool = True) -> str:
    configs = CONFIGS[:3] + CONFIGS[3:4] if fast else CONFIGS
    blocks = []
    capacity = PIZ_DAINT.usable_memory_bytes
    for workload, width, depth, micro_batch, mini_batch in configs:
        body = []
        for scheme in available_schemes():
            if scheme_traits(scheme).cost_parameterized:
                continue  # memory profile depends on the cost model
            stages = scheme_traits(scheme).stage_count(depth)
            if workload.num_layers % stages:
                body.append([scheme, "-", "-", "-", f"{stages} stages ∤ layers"])
                continue
            report = memory_report(
                workload, width, depth, micro_batch, mini_batch, scheme
            )
            body.append(
                [
                    scheme,
                    f"{report.min_bytes / 2**30:.2f}",
                    f"{report.peak_bytes / 2**30:.2f}",
                    f"{report.imbalance:.2f}x",
                    "OOM" if not report.fits(capacity) else "fits",
                ]
            )
        blocks.append(
            f"{workload.name} (W={width}, D={depth}, B={micro_batch}, "
            f"B̂={mini_batch})\n"
            + format_table(
                body,
                headers=["scheme", "min GiB", "max GiB", "imbalance", "16 GiB P100"],
            )
        )
    return "Figure 9 reproduction (memory distribution, 32 nodes)\n\n" + "\n\n".join(
        blocks
    )
