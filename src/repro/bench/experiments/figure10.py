"""Figure 10: baseline tuning grids — Bert-48, 32 nodes, B̂ = 512.

Each baseline sweeps (W, D, B); the star (best configuration) in the paper
lands on (W=8, D=4, B=4) for DAPPLE/GPipe, (W=8, D=4, B=32) for GEMS,
(W=8, D=4, B=16) for PipeDream-2BW, and a deeper (W=4, D=8) pipeline for
PipeDream (frequent allreduce favours fewer replicas).
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    best_result,
    format_table,
    sweep,
)
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48

NUM_WORKERS = 32
MINI_BATCH = 512


def configurations(scheme: str, *, fast: bool = True) -> list[ExperimentConfig]:
    depths = (2, 4, 8, 16)
    micro_batches = (1, 2, 4, 8, 16, 32) if not fast else (2, 4, 8, 16, 32)
    out = []
    for depth in depths:
        if NUM_WORKERS % depth or BERT48.num_layers % depth:
            continue
        width = NUM_WORKERS // depth
        for b in micro_batches:
            mini_batch = MINI_BATCH
            if scheme == "pipedream":
                mini_batch = width * b  # per-micro-batch updates cap B̂
            if mini_batch % (width * b):
                continue
            out.append(
                ExperimentConfig(
                    scheme=scheme,
                    machine=PIZ_DAINT,
                    workload=BERT48,
                    width=width,
                    depth=depth,
                    micro_batch=b,
                    mini_batch=mini_batch,
                )
            )
    return out


def tune(scheme: str, *, fast: bool = True) -> tuple[list[ExperimentResult], ExperimentResult | None]:
    results = sweep(configurations(scheme, fast=fast))
    return results, best_result(results)


def run(fast: bool = True) -> str:
    blocks = []
    for scheme in ("dapple", "gpipe", "gems", "pipedream_2bw", "pipedream"):
        results, best = tune(scheme, fast=fast)
        body = [
            [
                f"W={r.config.width}, D={r.config.depth}",
                r.config.micro_batch,
                "R" if r.recompute else "",
                "OOM" if r.oom else f"{r.throughput:.1f}",
                "*" if best is r else "",
            ]
            for r in results
        ]
        blocks.append(f"{scheme}\n" + format_table(
            body, headers=["(W, D)", "B", "", "seq/s", "best"]
        ))
    return (
        f"Figure 10 reproduction (Bert-48, {NUM_WORKERS} nodes, B̂={MINI_BATCH})\n\n"
        + "\n\n".join(blocks)
    )
