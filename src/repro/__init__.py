"""repro — reproduction of Chimera bidirectional pipeline parallelism (SC'21).

The layer stack (schedules IR -> sim -> runtime -> bench) is documented in
``docs/architecture.md``; per-scheme bubble/memory formulas live in
``docs/schedules.md``.

Public API tour
---------------
Schedules (the paper's contribution, every baseline of Table 2, and the
zero-bubble family ``zb_h1``/``zb_v`` built on B/W backward splitting)::

    from repro import build_schedule, validate_schedule
    sched = build_schedule("chimera", depth=8, num_micro_batches=8)
    zb = build_schedule("zb_h1", depth=8, num_micro_batches=8)

Simulation (bubble ratios, memory, throughput on modelled clusters)::

    from repro import simulate, CostModel, render_gantt
    result = simulate(sched, CostModel.practical())
    print(render_gantt(result))

Explicit communication (lowering pass: SEND/RECV ops, link contention,
comm lanes in the Gantt/trace output)::

    from repro import lower_schedule
    lowered = lower_schedule(sched)
    contended = simulate(lowered, CostModel.practical())

Composable schedule passes (``docs/passes.md``): recomputation,
communication fusion, and bubble filling work for every scheme through
the pass pipeline — ``recompute=`` and ``passes=`` are universal
``build_schedule`` options::

    from repro import build_schedule, resolve_pipeline
    r = build_schedule("gpipe", 8, 16, recompute=True)
    fused = build_schedule("zb_v", 8, 16,
                           passes="fill_bubbles,lower_p2p,fuse_comm")
    pipeline = resolve_pipeline("lower_p2p,fuse_comm")   # reusable object

Real training (NumPy transformer through any schedule)::

    from repro import PipelineTrainer, TransformerLMConfig
    trainer = PipelineTrainer(TransformerLMConfig(), scheme="chimera",
                              depth=4, num_micro_batches=4)

Performance model & configuration selection (paper §3.4)::

    from repro import select_configuration
    from repro.bench import PIZ_DAINT, BERT48
    ranked = select_configuration(PIZ_DAINT, BERT48, num_workers=32,
                                  mini_batch=512)

Scheme-agnostic planning under a peak-memory budget (every registered
scheme enumerated over ``(W, D, B)``, pruned by the memory model, ranked
by batched simulation against cached dense schedules)::

    from repro import plan_configurations
    from repro.common.units import GIB
    table = plan_configurations(PIZ_DAINT, BERT48, num_workers=32,
                                mini_batch=512,
                                memory_budget_bytes=8 * GIB)

Batch simulation (the array kernel: many cost models against one cached
schedule; ``repro bench`` gates its throughput in CI)::

    from repro import schedule_artifacts, simulate_batch
    arts = schedule_artifacts("chimera", 8, 16)
    batch = simulate_batch(arts.schedule, [CostModel.practical(),
                                           CostModel.unit()],
                           graph=arts.graph())
"""

from repro.schedules import (
    ConcatStrategy,
    Operation,
    OpKind,
    Schedule,
    StagePlacement,
    DEFAULT_PASS_MANAGER,
    FillBubblesPass,
    FuseCommPass,
    InsertSyncPass,
    LowerP2PPass,
    PassManager,
    PassPipeline,
    RecomputePass,
    SchedulePass,
    available_schemes,
    build_chimera_schedule,
    build_dapple_schedule,
    build_gems_schedule,
    build_gpipe_schedule,
    build_pipedream_2bw_schedule,
    build_pipedream_schedule,
    build_schedule,
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
    is_lowered,
    lower_schedule,
    pipeline_signature,
    register_pass,
    resolve_pipeline,
    schedule_artifacts,
    scheme_traits,
    validate_schedule,
)
from repro.sim import (
    BatchResult,
    CostModel,
    MemoryModel,
    SimulationResult,
    TransferRecord,
    analyze_memory,
    bubble_ratio,
    render_gantt,
    simulate,
    simulate_batch,
    simulate_fast,
)
from repro.perf import (
    PlanEntry,
    plan_configurations,
    predict_closed_form,
    predict_iteration_time,
    select_configuration,
)
from repro.models import TransformerLMConfig
from repro.runtime import PipelineTrainer, SGD, Adam, Momentum

__version__ = "1.0.0"

__all__ = [
    "ConcatStrategy",
    "Operation",
    "OpKind",
    "Schedule",
    "StagePlacement",
    "available_schemes",
    "build_chimera_schedule",
    "build_dapple_schedule",
    "build_gems_schedule",
    "build_gpipe_schedule",
    "build_pipedream_2bw_schedule",
    "build_pipedream_schedule",
    "build_schedule",
    "build_zb_h1_schedule",
    "build_zb_v_schedule",
    "build_zb_vhalf_schedule",
    "build_zb_vmin_schedule",
    "scheme_traits",
    "is_lowered",
    "lower_schedule",
    "DEFAULT_PASS_MANAGER",
    "PassManager",
    "PassPipeline",
    "SchedulePass",
    "InsertSyncPass",
    "RecomputePass",
    "FillBubblesPass",
    "LowerP2PPass",
    "FuseCommPass",
    "pipeline_signature",
    "register_pass",
    "resolve_pipeline",
    "schedule_artifacts",
    "validate_schedule",
    "BatchResult",
    "CostModel",
    "MemoryModel",
    "SimulationResult",
    "TransferRecord",
    "analyze_memory",
    "bubble_ratio",
    "render_gantt",
    "simulate",
    "simulate_batch",
    "simulate_fast",
    "PlanEntry",
    "plan_configurations",
    "predict_closed_form",
    "predict_iteration_time",
    "select_configuration",
    "TransformerLMConfig",
    "PipelineTrainer",
    "SGD",
    "Adam",
    "Momentum",
    "__version__",
]
