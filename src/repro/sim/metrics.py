"""Iteration-level metrics derived from simulation results.

Definitions follow the paper: the *bubble ratio* is "the bubble overhead
divided by the overall runtime of the pipeline" (§2). For asynchronous
schemes (no flush) we report the steady-state ratio measured inside each
worker's own active window, since fill/drain amortize over the infinite
schedule.
"""

from __future__ import annotations

from statistics import mean

from repro.sim.engine import SimulationResult


def worker_busy_times(result: SimulationResult) -> list[float]:
    """Compute-busy seconds per worker."""
    return [result.busy_time(w) for w in range(result.schedule.num_workers)]


def bubble_ratio(result: SimulationResult, *, steady_state: bool | None = None) -> float:
    """Mean fraction of compute time the workers sit idle.

    ``steady_state`` defaults to True for asynchronous schedules (PipeDream
    family): the idle fraction is measured within each worker's
    [first-start, last-end] window. Synchronous schedules measure against
    the full compute makespan (pipeline flush at the end of the iteration).
    """
    schedule = result.schedule
    if steady_state is None:
        steady_state = not schedule.synchronous
    ratios: list[float] = []
    for worker in range(schedule.num_workers):
        timed = result.timed_ops_on(worker)
        busy = sum(t.duration for t in timed)
        if steady_state:
            if not timed:
                continue
            span = timed[-1].end - timed[0].start
        else:
            span = result.compute_makespan
        if span <= 0:
            continue
        ratios.append(max(0.0, 1.0 - busy / span))
    return mean(ratios) if ratios else 0.0


def throughput_samples_per_sec(
    result: SimulationResult, *, micro_batch_size: int, data_parallel_width: int = 1
) -> float:
    """End-to-end training throughput in samples (sequences) per second.

    One simulated iteration covers ``N`` micro-batches of ``B`` samples per
    pipeline group, replicated over ``W`` groups: ``B̂ = B * N * W`` samples
    per ``iteration_time`` seconds.
    """
    samples = (
        result.schedule.num_micro_batches
        * micro_batch_size
        * data_parallel_width
    )
    if result.iteration_time <= 0:
        return float("inf")
    return samples / result.iteration_time


def parallel_efficiency(
    base_throughput: float, base_workers: int, throughput: float, workers: int
) -> float:
    """Weak-scaling efficiency relative to a baseline configuration."""
    if base_throughput <= 0 or workers <= 0:
        return 0.0
    ideal = base_throughput * (workers / base_workers)
    return throughput / ideal
