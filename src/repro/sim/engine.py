"""Discrete-event execution of a schedule under a cost model.

Semantics
---------
* Each worker executes its operation list strictly **in order** (this is how
  a static pipeline schedule runs in practice); an operation starts as soon
  as the worker is free and all of its data dependencies are satisfied.
* A cross-worker dependency (activation or input-gradient transfer) delays
  the consumer by the alpha-beta p2p time — matching the paper's model where
  ``Comm_p2p`` sits on the critical path between stages. Split-backward
  schedules need no special casing: a ``BACKWARD_INPUT`` produces the
  gradient message, and its deferred ``BACKWARD_WEIGHT`` is held back only
  by the local ``DEFERRAL`` edge plus worker order, which is what lets the
  zero-bubble schedules park ``W`` ops inside bubbles.
* **Lowered schedules** (:mod:`repro.schedules.lowering`) carry explicit
  ``SEND``/``RECV`` ops. A ``SEND`` blocks its worker only for
  ``comm_launch_overhead``, then launches a transfer that occupies the
  link's contention channel for the bandwidth term (``beta * L``, the
  latency ``alpha`` pipelines) — transfers on one channel are serviced
  FIFO, contend with each other, and overlap with compute. The matching
  ``RECV`` completes when the transfer arrives. With ``beta = 0`` the
  occupancy vanishes and lowered timing equals the implicit model exactly.
* ``ALLREDUCE`` operations are non-blocking by default: reaching one in the
  list *launches* it (consuming ``sync_launch_overhead`` of worker time);
  the collective itself starts once every group member has launched and
  completes ``allreduce_time`` later, in the background. In a lowered
  simulation a collective additionally waits for the p2p transfers still
  in flight on its members' interfaces — point-to-point traffic and
  collectives contend for the same links. The iteration ends when all
  compute **and** all collectives are done — exactly the
  ``max(Comm_unoverlapped)`` term of Equation (1). ``blocking_sync=True``
  turns them into synchronous collectives for ablation.

Engine
------
``simulate`` is a heap-based event-queue simulator: every operation
completion (and collective resolution) is one event, and each event does
O(out-degree) work plus a heap push/pop — O(E log E) overall for a
schedule with E dependency edges. The seed's round-robin polling loop is
preserved as :func:`simulate_polling` (a reference implementation for
differential tests and the ``bench_sim_engine`` baseline); it re-scans
every worker per round, O(workers x rounds), which the event queue
replaces for large schedules.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass

from repro.common.errors import ScheduleError
from repro.schedules.dependencies import (
    DependencyGraph,
    EdgeKind,
    OpKey,
    build_dependency_graph,
)
from repro.schedules.ir import Operation, OpKind, Schedule
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class TimedOp:
    """An operation with its simulated start/end times."""

    op: Operation
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveRecord:
    """One gradient-synchronization collective instance."""

    stage: int
    micro_batches: tuple[int, ...]
    workers: tuple[int, ...]
    launch_times: tuple[float, ...]
    start: float
    end: float

    @property
    def cost(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TransferRecord:
    """One explicit point-to-point transfer of a lowered schedule."""

    src_worker: int
    dst_worker: int
    payload: str  # "act" or "grad"
    micro_batches: tuple[int, ...]
    part: tuple[int, int]
    #: Moment the message's bytes start serializing onto the link (after
    #: any queueing behind earlier transfers on the same channel).
    start: float
    #: Arrival at the destination (start + alpha + beta * L).
    end: float
    #: Seconds the contention channel was held (beta * L).
    occupancy: float
    #: Channel id from the topology, or None when links are free.
    channel: tuple | None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Timed schedule plus the derived iteration-level quantities."""

    schedule: Schedule
    cost_model: CostModel
    timed: dict[OpKey, TimedOp]
    collectives: list[CollectiveRecord]
    #: Last compute (forward/backward) completion across all workers.
    compute_makespan: float
    #: Iteration time including non-overlapped gradient synchronization.
    iteration_time: float
    #: Explicit p2p transfers (lowered schedules only; empty otherwise).
    transfers: tuple[TransferRecord, ...] = ()

    def timed_ops_on(self, worker: int) -> list[TimedOp]:
        """This worker's timed compute ops, in execution order."""
        return [
            self.timed[op.key()]
            for op in self.schedule.ops_on(worker)
            if op.is_compute
        ]

    def transfers_from(self, worker: int) -> list[TransferRecord]:
        """Outgoing transfers of ``worker``, ordered by wire time."""
        return sorted(
            (t for t in self.transfers if t.src_worker == worker),
            key=lambda t: (t.start, t.end),
        )

    def busy_time(self, worker: int) -> float:
        """Total compute seconds on ``worker``."""
        return sum(t.duration for t in self.timed_ops_on(worker))

    def bubble_time(self, worker: int) -> float:
        """Idle compute time on ``worker`` within the compute makespan."""
        return self.compute_makespan - self.busy_time(worker)

    def sync_tail(self) -> float:
        """Non-overlapped synchronization time appended after compute."""
        return self.iteration_time - self.compute_makespan

    def worker_compute_end(self, worker: int) -> float:
        ops = self.timed_ops_on(worker)
        return ops[-1].end if ops else 0.0


def _clear_of_transfers(
    start: float,
    workers,
    nic_busy: dict[int, list[tuple[float, float]]],
) -> float:
    """Push ``start`` past in-flight transfer occupancy on any member.

    The single implementation of the collective-vs-p2p contention rule: a
    collective cannot start while a message is still serializing on a
    member's interface. Used both when resolving blocking collectives in
    the event loop and when recording background collectives afterwards.
    """
    moved = True
    while moved:
        moved = False
        for w in workers:
            for s, e in nic_busy.get(w, ()):
                if s <= start < e:
                    start = e
                    moved = True
    return start


#: Kind codes of the dense representation (branch on ints, not enums).
_PLAIN, _ALLREDUCE, _SEND, _RECV = 0, 1, 2, 3


class _DenseSchedule:
    """Cost-model-independent dense form of a dependency graph.

    Assigns every operation an integer id and flattens the op lists and
    edge lists into parallel arrays, so the event loop branches on ints
    and indexes lists instead of hashing ``op.key()`` tuples. Built once
    per graph and cached on it — repeated simulations of one schedule
    under many cost models (calibration sweeps, ablations) pay only the
    per-cost-model arrays.
    """

    def __init__(self, graph: DependencyGraph):
        schedule = graph.schedule
        self.ops_flat: list[Operation] = []
        self.op_worker: list[int] = []
        self.row_ids: list[list[int]] = []
        #: Position of each op within its worker's row. Together with
        #: ``(end, worker)`` this reconstructs the event loop's pop order:
        #: the heap orders events by ``(end, worker)``, and a worker's own
        #: ties resolve in program order because its next event is only
        #: pushed after the previous one pops. The array kernel's FIFO
        #: serialization sorts transfers by exactly this key.
        self.row_pos: list[int] = []
        #: ``op.key() -> dense id`` (the array kernel indexes through it).
        self.id_of: dict[OpKey, int] = {}
        id_of = self.id_of
        for worker, row in enumerate(schedule.worker_ops):
            ids = []
            for pos, op in enumerate(row):
                oid = len(self.ops_flat)
                id_of[op.key()] = oid
                self.ops_flat.append(op)
                self.op_worker.append(worker)
                self.row_pos.append(pos)
                ids.append(oid)
            self.row_ids.append(ids)
        total = len(self.ops_flat)
        self.total = total

        self.kind_code = [_PLAIN] * total
        #: Host-transfer direction: -1 for network sends, 0 for an
        #: OFFLOAD's device→host copy, 1 for a RELOAD's host→device copy.
        #: Host ops reuse the _SEND machinery (both launch a transfer that
        #: occupies a channel); this array tells the wire-parameter setup
        #: to price them on the worker's host channel instead of a link.
        self.host_dir = [-1] * total
        #: Duration-memoization key: everything compute_time() reads.
        self.shape: list[tuple] = [()] * total
        for oid, op in enumerate(self.ops_flat):
            if op.kind is OpKind.ALLREDUCE:
                self.kind_code[oid] = _ALLREDUCE
            elif op.kind is OpKind.SEND:
                self.kind_code[oid] = _SEND
            elif op.kind is OpKind.RECV:
                self.kind_code[oid] = _RECV
            elif op.kind is OpKind.OFFLOAD:
                self.kind_code[oid] = _SEND
                self.host_dir[oid] = 0
            elif op.kind is OpKind.RELOAD:
                self.kind_code[oid] = _SEND
                self.host_dir[oid] = 1
            self.shape[oid] = (op.kind, op.stage, op.work_units, op.recompute)

        self.in_count = [0] * total
        #: Local edges: satisfied at the producer's end time.
        self.out_local: list[list[int]] = [[] for _ in range(total)]
        #: Implicit cross-worker edges: (dst, src_worker, dst_worker, units).
        self.out_remote: list[list[tuple[int, int, int, float]]] = [
            [] for _ in range(total)
        ]
        #: SEND id -> RECV id of its TRANSFER edge (-1 when absent).
        self.transfer_out = [-1] * total
        #: SEND id -> (dst_worker, payload units) for the wire. Filled from
        #: the TRANSFER edge so the payload size has exactly one source of
        #: truth: Edge.payload_units, precomputed at graph build.
        self.send_info: dict[int, tuple[int, float]] = {}
        for key, incoming in graph.deps.items():
            dst = id_of[key]
            self.in_count[dst] = len(incoming)
            dst_worker = self.op_worker[dst]
            for edge in incoming:
                src = id_of[edge.src]
                kind = edge.kind
                if kind is EdgeKind.TRANSFER:
                    self.transfer_out[src] = dst
                    self.send_info[src] = (dst_worker, edge.payload_units)
                elif (
                    kind is EdgeKind.ACTIVATION or kind is EdgeKind.GRADIENT
                ) and self.op_worker[src] != dst_worker:
                    self.out_remote[src].append(
                        (dst, self.op_worker[src], dst_worker, edge.payload_units)
                    )
                else:
                    self.out_local[src].append(dst)

        self.group_of: dict[int, tuple] = {}
        self.sync_group_members: dict[tuple, list[tuple[int, Operation]]] = (
            defaultdict(list)
        )
        for oid, op in enumerate(self.ops_flat):
            if op.kind is OpKind.ALLREDUCE:
                group_key = (op.stage, op.micro_batches)
                self.sync_group_members[group_key].append(
                    (self.op_worker[oid], op)
                )
                self.group_of[oid] = group_key


def _dense_of(graph: DependencyGraph) -> _DenseSchedule:
    dense = getattr(graph, "_dense", None)
    if dense is None:
        dense = _DenseSchedule(graph)
        graph._dense = dense  # type: ignore[attr-defined]
    return dense


def simulate(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    graph: DependencyGraph | None = None,
    blocking_sync: bool = False,
) -> SimulationResult:
    """Simulate one training iteration of ``schedule`` under ``cost_model``.

    Parameters
    ----------
    graph:
        Optionally a pre-built dependency graph (skips rebuilding when
        simulating the same schedule under many cost models).
    blocking_sync:
        Treat allreduces as synchronous (the worker blocks until the
        collective completes). Default False: non-blocking launch +
        background completion (§3.2).
    """
    if graph is None:
        graph = build_dependency_graph(schedule)
    dense = _dense_of(graph)

    num_workers = schedule.num_workers
    worker_rows = schedule.worker_ops
    ops_flat = dense.ops_flat
    op_worker = dense.op_worker
    row_ids = dense.row_ids
    kind_code = dense.kind_code
    out_local = dense.out_local
    out_remote = dense.out_remote
    transfer_out = dense.transfer_out
    total = dense.total

    # ---- per-cost-model arrays ------------------------------------------
    # Durations memoized by op shape (kind, stage, work units, recompute):
    # a schedule has thousands of ops but only a handful of shapes.
    dur_of_shape: dict[tuple, float] = {}
    duration = [0.0] * total
    for oid, op in enumerate(ops_flat):
        code = kind_code[oid]
        if code == _ALLREDUCE:
            duration[oid] = cost_model.sync_launch_overhead
        elif code == _SEND or code == _RECV:
            duration[oid] = cost_model.comm_launch_overhead
        else:
            shape = dense.shape[oid]
            d = dur_of_shape.get(shape)
            if d is None:
                d = cost_model.compute_time(op)
                dur_of_shape[shape] = d
            duration[oid] = d

    # Implicit p2p delays and wire parameters, memoized per (src, dst,
    # units) — topologies expose few distinct worker-pair classes.
    p2p_cache: dict[tuple, float] = {}

    def p2p_delay(src_w: int, dst_w: int, units: float) -> float:
        mkey = (src_w, dst_w, units)
        d = p2p_cache.get(mkey)
        if d is None:
            d = cost_model.p2p_time(src_w, dst_w, units)
            p2p_cache[mkey] = d
        return d

    host_dir = dense.host_dir
    send_wire: dict[int, tuple[int, float, float, tuple | None]] = {}
    for oid, (dst_w, units) in dense.send_info.items():
        src_w = op_worker[oid]
        hd = host_dir[oid]
        if hd >= 0:
            # OFFLOAD/RELOAD: the copy runs on the worker's own host
            # channel — host-link alpha-beta time, contending only with
            # this worker's other host transfers (never with p2p links).
            send_wire[oid] = (
                dst_w,
                cost_model.host_time(units),
                cost_model.host_occupancy(units),
                cost_model.host_channel_key(src_w, "h2d" if hd else "d2h"),
            )
        else:
            send_wire[oid] = (
                dst_w,
                p2p_delay(src_w, dst_w, units),
                cost_model.p2p_occupancy(src_w, dst_w, units),
                cost_model.p2p_channel(src_w, dst_w),
            )

    sync_group_members = dense.sync_group_members
    group_of = dense.group_of
    sync_launches: dict[tuple, dict[int, float]] = defaultdict(dict)
    group_waiters: dict[tuple, list[int]] = defaultdict(list)
    #: Blocking collectives resolved during the loop: group -> (start, end).
    #: _finalize records these verbatim so the released workers and the
    #: collective records can never contradict each other.
    loop_resolved: dict[tuple, tuple[float, float]] = {}

    # Link channels: FIFO occupancy for explicit transfers. nic_busy_loop
    # mirrors each transfer's occupancy per endpoint worker so blocking
    # collectives can apply _clear_of_transfers without rescanning the
    # global transfer list.
    channel_free: dict[tuple, float] = defaultdict(float)
    transfers: list[TransferRecord] = []
    nic_busy_loop: dict[int, list[tuple[float, float]]] = defaultdict(list)

    # ---- event loop ------------------------------------------------------
    unmet = list(dense.in_count)
    ready = [0.0] * total
    pointers = [0] * num_workers
    free_at = [0.0] * num_workers
    started = [False] * num_workers
    blocked = [False] * num_workers
    start_of = [0.0] * total
    end_of_id = [0.0] * total

    heap: list[tuple[float, int]] = []  # (end time, worker)
    push = heapq.heappush
    pop = heapq.heappop

    def try_start(worker: int) -> None:
        if started[worker] or blocked[worker]:
            return
        ids = row_ids[worker]
        ptr = pointers[worker]
        if ptr >= len(ids):
            return
        oid = ids[ptr]
        if unmet[oid] > 0:
            return
        start = free_at[worker]
        if ready[oid] > start:
            start = ready[oid]
        end = start + duration[oid]
        start_of[oid] = start
        end_of_id[oid] = end
        free_at[worker] = end
        started[worker] = True
        push(heap, (end, worker))

    def resolve_group(group_key: tuple) -> None:
        """All members launched a blocking collective: release them.

        The collective starts once every member launched *and* no p2p
        transfer is still serializing on a member's interface (lowered
        schedules — transfers already on the wire win the link), so the
        blocking ablation sees the same p2p/collective contention as the
        background path. Contention-free links (zero occupancy) leave the
        start at ``max(launches)``, preserving lowered/implicit parity.
        """
        launches = sync_launches[group_key]
        stage, _ = group_key
        workers = tuple(w for w, _ in sync_group_members[group_key])
        start = _clear_of_transfers(max(launches.values()), workers, nic_busy_loop)
        end = start + cost_model.allreduce_time(stage, workers)
        loop_resolved[group_key] = (start, end)
        for waiter in group_waiters.pop(group_key, []):
            blocked[waiter] = False
            free_at[waiter] = max(free_at[waiter], end)
            try_start(waiter)

    done = 0
    for worker in range(num_workers):
        try_start(worker)

    while heap:
        _now, worker = pop(heap)
        oid = row_ids[worker][pointers[worker]]
        end = end_of_id[oid]
        started[worker] = False
        pointers[worker] += 1
        done += 1

        code = kind_code[oid]
        if code == _ALLREDUCE:
            group_key = group_of[oid]
            sync_launches[group_key][worker] = start_of[oid]
            if blocking_sync:
                blocked[worker] = True
                group_waiters[group_key].append(worker)
                if len(sync_launches[group_key]) == len(
                    sync_group_members[group_key]
                ):
                    resolve_group(group_key)
        elif code == _SEND and oid in send_wire:
            op = ops_flat[oid]
            dst_w, wire_time, occupancy, channel = send_wire[oid]
            wire_start = end
            if channel is not None:
                if channel_free[channel] > wire_start:
                    wire_start = channel_free[channel]
                channel_free[channel] = wire_start + occupancy
            arrival = wire_start + wire_time
            if occupancy > 0 and host_dir[oid] < 0:
                # Host copies ride PCIe, not the NIC: they never block a
                # collective's interface (mirrored in _finalize/kernel).
                interval = (wire_start, wire_start + occupancy)
                nic_busy_loop[worker].append(interval)
                nic_busy_loop[dst_w].append(interval)
            transfers.append(
                TransferRecord(
                    src_worker=worker,
                    dst_worker=dst_w,
                    payload=op.payload,
                    micro_batches=op.micro_batches,
                    part=op.part,
                    start=wire_start,
                    end=arrival,
                    occupancy=occupancy,
                    channel=channel,
                )
            )
            recv = transfer_out[oid]
            if recv >= 0:
                if arrival > ready[recv]:
                    ready[recv] = arrival
                unmet[recv] -= 1
                if unmet[recv] == 0:
                    try_start(op_worker[recv])

        for dst in out_local[oid]:
            if end > ready[dst]:
                ready[dst] = end
            unmet[dst] -= 1
            if unmet[dst] == 0:
                try_start(op_worker[dst])
        for dst, src_w, dst_w, units in out_remote[oid]:
            at = end + p2p_delay(src_w, dst_w, units)
            if at > ready[dst]:
                ready[dst] = at
            unmet[dst] -= 1
            if unmet[dst] == 0:
                try_start(op_worker[dst])
        try_start(worker)

    if done < total:
        stuck = [
            (w, worker_rows[w][pointers[w]].short())
            for w in range(num_workers)
            if pointers[w] < len(worker_rows[w])
        ]
        raise ScheduleError(
            f"simulation deadlock; {total - done} ops pending, heads: {stuck[:8]}"
        )

    timed: dict[OpKey, TimedOp] = {}
    for oid, op in enumerate(ops_flat):
        timed[op.key()] = TimedOp(
            op, op_worker[oid], start_of[oid], end_of_id[oid]
        )
    compute_makespan = max(
        (
            end_of_id[oid]
            for oid in range(total)
            if kind_code[oid] == _PLAIN
        ),
        default=0.0,
    )

    return _finalize(
        schedule,
        cost_model,
        timed,
        sync_group_members,
        sync_launches,
        transfers,
        blocking_sync=blocking_sync,
        compute_makespan=compute_makespan,
        resolved=loop_resolved,
    )


def _finalize(
    schedule: Schedule,
    cost_model: CostModel,
    timed: dict[OpKey, TimedOp],
    sync_group_members: dict[tuple, list[tuple[int, Operation]]],
    sync_launches: dict[tuple, dict[int, float]],
    transfers: list[TransferRecord],
    *,
    blocking_sync: bool,
    compute_makespan: float | None = None,
    resolved: dict[tuple, tuple[float, float]] | None = None,
) -> SimulationResult:
    """Resolve collectives and assemble the :class:`SimulationResult`.

    Shared by the event-queue engine and the polling reference so both
    apply identical collective-overlap semantics. ``resolved`` carries the
    blocking collectives the event loop already timed (start, end) — those
    are recorded verbatim, because the member workers were released from
    exactly those times; re-deriving them here could contradict the
    compute timeline.

    The array kernel's batch path re-implements the non-blocking subset of
    these rules on flat arrays (:func:`repro.sim.kernel._iteration_time`)
    to avoid materializing per-op records; any change to the collective
    ordering, link-serialization, or overlap-slowdown semantics here must
    be mirrored there (the kernel differential tests and every
    ``repro bench`` run assert the two stay within 1e-9).
    """
    num_workers = schedule.num_workers
    resolved = resolved or {}
    if compute_makespan is None:
        compute_makespan = max(
            (t.end for t in timed.values() if t.op.is_compute), default=0.0
        )

    # Per-worker interface busy intervals from explicit p2p transfers: a
    # collective cannot start while a message is still serializing on a
    # member's link (transfers scheduled first win the channel; traffic
    # launched after the collective's start is not re-queued behind it).
    # Blocking collectives saw the same rule inside the event loop.
    nic_busy: dict[int, list[tuple[float, float]]] = defaultdict(list)
    for t in transfers:
        if t.occupancy > 0 and t.payload != "stash":
            interval = (t.start, t.start + t.occupancy)
            nic_busy[t.src_worker].append(interval)
            nic_busy[t.dst_worker].append(interval)

    # Resolve collective completions (non-blocking case; for blocking they
    # are already folded into the cursors, but recording them is useful).
    # Collectives sharing a worker are serviced serially — one network
    # interface per node — in ready-time order.
    pending = []
    for group_key, members in sync_group_members.items():
        stage, micro_batches = group_key
        launches = sync_launches[group_key]
        workers = tuple(w for w, _ in members)
        ready = max(launches.values())
        cost = cost_model.allreduce_time(stage, workers)
        pending.append((ready, stage, micro_batches, workers, launches, cost))
    pending.sort(key=lambda t: (t[0], t[1], t[2]))

    collectives: list[CollectiveRecord] = []
    iteration_time = compute_makespan
    link_free = [0.0] * num_workers
    for ready, stage, micro_batches, workers, launches, cost in pending:
        if (stage, micro_batches) in resolved:
            start, end = resolved[(stage, micro_batches)]
        else:
            start = max([ready] + [link_free[w] for w in workers])
            start = _clear_of_transfers(start, workers, nic_busy)
            end = start + cost
        for w in workers:
            link_free[w] = max(link_free[w], end)
        collectives.append(
            CollectiveRecord(
                stage=stage,
                micro_batches=micro_batches,
                workers=workers,
                launch_times=tuple(launches[w] for w in workers),
                start=start,
                end=end,
            )
        )
        iteration_time = max(iteration_time, end)

    # Progression contention: a collective in flight slows the compute it
    # overlaps with (§3.2). Charged per worker proportionally to the
    # overlapped span; extends both that worker's effective finish and the
    # iteration.
    if cost_model.sync_overlap_slowdown > 0 and collectives and not blocking_sync:
        worker_compute_end = [0.0] * num_workers
        for t in timed.values():
            if t.op.is_compute:
                worker_compute_end[t.worker] = max(
                    worker_compute_end[t.worker], t.end
                )
        for record in collectives:
            for w in record.workers:
                overlap = max(
                    0.0, min(record.end, worker_compute_end[w]) - record.start
                )
                penalty = cost_model.sync_overlap_slowdown * overlap
                worker_compute_end[w] += penalty
        compute_makespan = max(compute_makespan, max(worker_compute_end))
        iteration_time = max(iteration_time, compute_makespan)

    collectives.sort(key=lambda c: (c.start, c.stage))
    transfers.sort(key=lambda t: (t.start, t.end, t.src_worker, t.dst_worker))
    return SimulationResult(
        schedule=schedule,
        cost_model=cost_model,
        timed=timed,
        collectives=collectives,
        compute_makespan=compute_makespan,
        iteration_time=iteration_time,
        transfers=tuple(transfers),
    )


def simulate_polling(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    graph: DependencyGraph | None = None,
    blocking_sync: bool = False,
) -> SimulationResult:
    """The seed's round-robin polling simulator, kept as a reference.

    Semantically identical to :func:`simulate` for implicit-communication
    schedules (the differential tests assert this); it re-scans every
    worker per round — O(workers x rounds) — which is what the event queue
    replaces. Lowered schedules are rejected: link-channel contention needs
    the event queue.
    """
    if schedule.lowered:
        raise ScheduleError(
            "simulate_polling does not support lowered schedules; use simulate()"
        )
    if schedule.metadata.get("offload") or any(
        op.is_host_comm for _, op in schedule.all_ops()
    ):
        raise ScheduleError(
            "simulate_polling does not support offloaded schedules; "
            "host-channel contention needs the event queue — use simulate()"
        )
    if graph is None:
        graph = build_dependency_graph(schedule)

    num_workers = schedule.num_workers
    pointers = [0] * num_workers
    cursor = [0.0] * num_workers  # when the worker becomes free
    end_of: dict[OpKey, float] = {}
    timed: dict[OpKey, TimedOp] = {}

    sync_group_members: dict[tuple, list[tuple[int, Operation]]] = defaultdict(list)
    for worker, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            sync_group_members[(op.stage, op.micro_batches)].append((worker, op))
    sync_launches: dict[tuple, dict[int, float]] = defaultdict(dict)
    collective_end_cache: dict[tuple, float] = {}

    def deps_ready_time(worker: int, op: Operation) -> float | None:
        """Earliest start permitted by data dependencies, or None if a
        dependency has not been timed yet."""
        ready = 0.0
        for edge in graph.deps[op.key()]:
            src_end = end_of.get(edge.src)
            if src_end is None:
                return None
            if edge.is_p2p_candidate:
                src_worker = graph.location[edge.src][0]
                src_end = src_end + cost_model.p2p_time(
                    src_worker, worker, edge.payload_units
                )
            ready = max(ready, src_end)
        return ready

    def collective_blocking_end(group_key: tuple) -> float | None:
        """Completion time of a blocking collective, once all launched."""
        members = sync_group_members[group_key]
        launches = sync_launches[group_key]
        if len(launches) < len(members):
            return None
        if group_key not in collective_end_cache:
            stage, _ = group_key
            workers = tuple(w for w, _ in members)
            start = max(launches.values())
            cost = cost_model.allreduce_time(stage, workers)
            collective_end_cache[group_key] = start + cost
        return collective_end_cache[group_key]

    total = sum(len(ops) for ops in schedule.worker_ops)
    done = 0
    # Ops whose timing is deferred because a blocking collective is waiting
    # for other members: (worker, group_key).
    blocked_on_collective: dict[int, tuple] = {}

    while done < total:
        progressed = False
        for worker in range(num_workers):
            while pointers[worker] < len(schedule.worker_ops[worker]):
                op = schedule.worker_ops[worker][pointers[worker]]
                key = op.key()

                if worker in blocked_on_collective:
                    group_key = blocked_on_collective[worker]
                    end = collective_blocking_end(group_key)
                    if end is None:
                        break
                    cursor[worker] = max(cursor[worker], end)
                    del blocked_on_collective[worker]
                    # fall through to time the current op

                if op.kind is OpKind.ALLREDUCE:
                    group_key = (op.stage, op.micro_batches)
                    launch = cursor[worker]
                    sync_launches[group_key][worker] = launch
                    cursor[worker] = launch + cost_model.sync_launch_overhead
                    end_of[key] = cursor[worker]
                    timed[key] = TimedOp(op, worker, launch, cursor[worker])
                    pointers[worker] += 1
                    done += 1
                    progressed = True
                    if blocking_sync:
                        blocked_on_collective[worker] = group_key
                        # Cannot proceed past a blocking collective until all
                        # members have launched.
                        end = collective_blocking_end(group_key)
                        if end is None:
                            break
                        cursor[worker] = max(cursor[worker], end)
                        del blocked_on_collective[worker]
                    continue

                ready = deps_ready_time(worker, op)
                if ready is None:
                    break
                start = max(cursor[worker], ready)
                end = start + cost_model.compute_time(op)
                timed[key] = TimedOp(op, worker, start, end)
                end_of[key] = end
                cursor[worker] = end
                pointers[worker] += 1
                done += 1
                progressed = True
        if not progressed:
            stuck = [
                (w, schedule.worker_ops[w][pointers[w]].short())
                for w in range(num_workers)
                if pointers[w] < len(schedule.worker_ops[w])
            ]
            raise ScheduleError(
                f"simulation deadlock; {total - done} ops pending, heads: {stuck[:8]}"
            )

    return _finalize(
        schedule,
        cost_model,
        timed,
        sync_group_members,
        sync_launches,
        [],
        blocking_sync=blocking_sync,
    )
