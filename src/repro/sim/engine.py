"""Discrete-event execution of a schedule under a cost model.

Semantics
---------
* Each worker executes its operation list strictly **in order** (this is how
  a static pipeline schedule runs in practice); an operation starts as soon
  as the worker is free and all of its data dependencies are satisfied.
* A cross-worker dependency (activation or input-gradient transfer) delays
  the consumer by the alpha-beta p2p time — matching the paper's model where
  ``Comm_p2p`` sits on the critical path between stages. Split-backward
  schedules need no special casing: a ``BACKWARD_INPUT`` produces the
  gradient message, and its deferred ``BACKWARD_WEIGHT`` is held back only
  by the local ``DEFERRAL`` edge plus worker order, which is what lets the
  zero-bubble schedules park ``W`` ops inside bubbles.
* ``ALLREDUCE`` operations are non-blocking by default: reaching one in the
  list *launches* it (consuming ``sync_launch_overhead`` of worker time);
  the collective itself starts once every group member has launched and
  completes ``allreduce_time`` later, in the background. The iteration ends
  when all compute **and** all collectives are done — exactly the
  ``max(Comm_unoverlapped)`` term of Equation (1). ``blocking_sync=True``
  turns them into synchronous collectives for ablation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.common.errors import ScheduleError
from repro.schedules.dependencies import (
    DependencyGraph,
    EdgeKind,
    build_dependency_graph,
)
from repro.schedules.ir import Operation, OpKind, Schedule
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class TimedOp:
    """An operation with its simulated start/end times."""

    op: Operation
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CollectiveRecord:
    """One gradient-synchronization collective instance."""

    stage: int
    micro_batches: tuple[int, ...]
    workers: tuple[int, ...]
    launch_times: tuple[float, ...]
    start: float
    end: float

    @property
    def cost(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """Timed schedule plus the derived iteration-level quantities."""

    schedule: Schedule
    cost_model: CostModel
    timed: dict  # op.key() -> TimedOp
    collectives: list[CollectiveRecord]
    #: Last compute (forward/backward) completion across all workers.
    compute_makespan: float
    #: Iteration time including non-overlapped gradient synchronization.
    iteration_time: float

    def timed_ops_on(self, worker: int) -> list[TimedOp]:
        """This worker's timed compute ops, in execution order."""
        return [
            self.timed[op.key()]
            for op in self.schedule.ops_on(worker)
            if op.is_compute
        ]

    def busy_time(self, worker: int) -> float:
        """Total compute seconds on ``worker``."""
        return sum(t.duration for t in self.timed_ops_on(worker))

    def bubble_time(self, worker: int) -> float:
        """Idle compute time on ``worker`` within the compute makespan."""
        return self.compute_makespan - self.busy_time(worker)

    def sync_tail(self) -> float:
        """Non-overlapped synchronization time appended after compute."""
        return self.iteration_time - self.compute_makespan

    def worker_compute_end(self, worker: int) -> float:
        ops = self.timed_ops_on(worker)
        return ops[-1].end if ops else 0.0


def simulate(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    graph: DependencyGraph | None = None,
    blocking_sync: bool = False,
) -> SimulationResult:
    """Simulate one training iteration of ``schedule`` under ``cost_model``.

    Parameters
    ----------
    graph:
        Optionally a pre-built dependency graph (skips rebuilding when
        simulating the same schedule under many cost models).
    blocking_sync:
        Treat allreduces as synchronous (the worker blocks until the
        collective completes). Default False: non-blocking launch +
        background completion (§3.2).
    """
    if graph is None:
        graph = build_dependency_graph(schedule)

    edge_payload: dict[tuple, float] = {}
    producers: dict[tuple, Operation] = {}
    for _, op in schedule.all_ops():
        producers[op.key()] = op

    num_workers = schedule.num_workers
    pointers = [0] * num_workers
    cursor = [0.0] * num_workers  # when the worker becomes free
    end_of: dict[tuple, float] = {}
    timed: dict = {}

    # Collective bookkeeping: group allreduce ops by (stage, micro_batches).
    sync_group_members: dict[tuple, list[tuple[int, Operation]]] = defaultdict(list)
    for worker, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            sync_group_members[(op.stage, op.micro_batches)].append((worker, op))
    sync_launches: dict[tuple, dict[int, float]] = defaultdict(dict)
    collective_end_cache: dict[tuple, float] = {}

    def payload_between(src: Operation, dst: Operation) -> float:
        """Micro-batch units moved along a dependency edge."""
        shared = len(set(src.micro_batches) & set(dst.micro_batches))
        return shared / dst.part[1]

    def deps_ready_time(worker: int, op: Operation) -> float | None:
        """Earliest start permitted by data dependencies, or None if a
        dependency has not been timed yet."""
        ready = 0.0
        for edge in graph.deps[op.key()]:
            src_end = end_of.get(edge.src)
            if src_end is None:
                return None
            if edge.kind in (EdgeKind.ACTIVATION, EdgeKind.GRADIENT):
                src_worker = graph.location[edge.src][0]
                src_op = producers[edge.src]
                src_end = src_end + cost_model.p2p_time(
                    src_worker, worker, payload_between(src_op, op)
                )
            ready = max(ready, src_end)
        return ready

    def collective_blocking_end(group_key: tuple) -> float | None:
        """Completion time of a blocking collective, once all launched."""
        members = sync_group_members[group_key]
        launches = sync_launches[group_key]
        if len(launches) < len(members):
            return None
        if group_key not in collective_end_cache:
            stage, _ = group_key
            workers = tuple(w for w, _ in members)
            start = max(launches.values())
            cost = cost_model.allreduce_time(stage, workers)
            collective_end_cache[group_key] = start + cost
        return collective_end_cache[group_key]

    total = sum(len(ops) for ops in schedule.worker_ops)
    done = 0
    # Ops whose timing is deferred because a blocking collective is waiting
    # for other members: (worker, group_key).
    blocked_on_collective: dict[int, tuple] = {}

    while done < total:
        progressed = False
        for worker in range(num_workers):
            while pointers[worker] < len(schedule.worker_ops[worker]):
                op = schedule.worker_ops[worker][pointers[worker]]
                key = op.key()

                if worker in blocked_on_collective:
                    group_key = blocked_on_collective[worker]
                    end = collective_blocking_end(group_key)
                    if end is None:
                        break
                    cursor[worker] = max(cursor[worker], end)
                    del blocked_on_collective[worker]
                    # fall through to time the current op

                if op.kind is OpKind.ALLREDUCE:
                    group_key = (op.stage, op.micro_batches)
                    launch = cursor[worker]
                    sync_launches[group_key][worker] = launch
                    cursor[worker] = launch + cost_model.sync_launch_overhead
                    end_of[key] = cursor[worker]
                    timed[key] = TimedOp(op, worker, launch, cursor[worker])
                    pointers[worker] += 1
                    done += 1
                    progressed = True
                    if blocking_sync:
                        blocked_on_collective[worker] = group_key
                        # Cannot proceed past a blocking collective until all
                        # members have launched.
                        end = collective_blocking_end(group_key)
                        if end is None:
                            break
                        cursor[worker] = max(cursor[worker], end)
                        del blocked_on_collective[worker]
                    continue

                ready = deps_ready_time(worker, op)
                if ready is None:
                    break
                start = max(cursor[worker], ready)
                end = start + cost_model.compute_time(op)
                timed[key] = TimedOp(op, worker, start, end)
                end_of[key] = end
                cursor[worker] = end
                pointers[worker] += 1
                done += 1
                progressed = True
        if not progressed:
            stuck = [
                (w, schedule.worker_ops[w][pointers[w]].short())
                for w in range(num_workers)
                if pointers[w] < len(schedule.worker_ops[w])
            ]
            raise ScheduleError(
                f"simulation deadlock; {total - done} ops pending, heads: {stuck[:8]}"
            )

    compute_makespan = max(
        (t.end for t in timed.values() if t.op.is_compute), default=0.0
    )

    # Resolve collective completions (non-blocking case; for blocking they
    # are already folded into the cursors, but recording them is useful).
    # Collectives sharing a worker are serviced serially — one network
    # interface per node — in ready-time order.
    pending = []
    for group_key, members in sync_group_members.items():
        stage, micro_batches = group_key
        launches = sync_launches[group_key]
        workers = tuple(w for w, _ in members)
        ready = max(launches.values())
        cost = cost_model.allreduce_time(stage, workers)
        pending.append((ready, stage, micro_batches, workers, launches, cost))
    pending.sort(key=lambda t: (t[0], t[1], t[2]))

    collectives: list[CollectiveRecord] = []
    iteration_time = compute_makespan
    link_free = [0.0] * num_workers
    for ready, stage, micro_batches, workers, launches, cost in pending:
        start = max([ready] + [link_free[w] for w in workers])
        end = start + cost
        for w in workers:
            link_free[w] = end
        collectives.append(
            CollectiveRecord(
                stage=stage,
                micro_batches=micro_batches,
                workers=workers,
                launch_times=tuple(launches[w] for w in workers),
                start=start,
                end=end,
            )
        )
        iteration_time = max(iteration_time, end)

    # Progression contention: a collective in flight slows the compute it
    # overlaps with (§3.2). Charged per worker proportionally to the
    # overlapped span; extends both that worker's effective finish and the
    # iteration.
    if cost_model.sync_overlap_slowdown > 0 and collectives and not blocking_sync:
        worker_compute_end = [0.0] * num_workers
        for t in timed.values():
            if t.op.is_compute:
                worker_compute_end[t.worker] = max(
                    worker_compute_end[t.worker], t.end
                )
        for record in collectives:
            for w in record.workers:
                overlap = max(
                    0.0, min(record.end, worker_compute_end[w]) - record.start
                )
                penalty = cost_model.sync_overlap_slowdown * overlap
                worker_compute_end[w] += penalty
        compute_makespan = max(compute_makespan, max(worker_compute_end))
        iteration_time = max(iteration_time, compute_makespan)

    collectives.sort(key=lambda c: (c.start, c.stage))
    return SimulationResult(
        schedule=schedule,
        cost_model=cost_model,
        timed=timed,
        collectives=collectives,
        compute_makespan=compute_makespan,
        iteration_time=iteration_time,
    )
