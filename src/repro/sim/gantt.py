"""ASCII Gantt rendering of (timed) schedules.

Reproduces the style of the paper's Figures 2, 3, 7 and 8: one row per
worker, forward cells as the micro-batch number, backward cells shaded
(``*`` suffix), bubbles as dots. Split zero-bubble backwards render their
input-gradient half with a ``b`` suffix and the weight-gradient half with a
``w`` suffix. Used by the quickstart example and invaluable when debugging
schedule builders.

Lowered schedules (:mod:`repro.schedules.lowering`) additionally get
**communication lanes** per worker (the ``P0>`` rows under ``P0``) showing
that worker's outgoing transfers on the wire: ``a``/``g`` for
activation/gradient payloads, the micro-batches, and the destination
worker — e.g. ``a0>1`` is micro-batch 0's activations heading to worker 1.
A transfer cell spans the interval the message is on the link, so queueing
behind an earlier transfer (link contention) is directly visible as a
right-shifted cell; transfers whose wire intervals overlap (the latency
term pipelines) stack onto additional ``P0>`` rows rather than
overwriting each other.

Schedules with the offload pass additionally get **host-channel lanes**
(the ``P0~`` rows): that worker's activation-stash copies on its private
host↔device channel — ``0v`` is micro-batch 0's stash heading down to
host RAM (OFFLOAD, d2h), ``0^`` is the same stash coming back up
(RELOAD, h2d). Host copies never share rows with p2p transfers: they
ride PCIe, not the NIC, and contend only with this worker's other host
copies (queueing shows as the same right-shift as on the wire lanes).
"""

from __future__ import annotations

from repro.schedules.ir import OpKind, Schedule
from repro.sim.cost import CostModel
from repro.sim.engine import SimulationResult, simulate


def render_gantt(
    source: Schedule | SimulationResult,
    *,
    cost_model: CostModel | None = None,
    cell_width: int = 4,
    time_step: float | None = None,
    comm_lanes: bool | None = None,
) -> str:
    """Render a schedule (or a simulation result) as an ASCII Gantt chart.

    Parameters
    ----------
    source:
        A schedule (simulated under ``cost_model`` or the practical default)
        or an existing simulation result.
    cell_width:
        Characters per time cell.
    time_step:
        Seconds per cell; defaults to the smallest op duration.
    comm_lanes:
        Draw per-worker transfer lanes. Defaults to True exactly when the
        simulation produced transfers with nonzero wire time (i.e. a
        lowered schedule under a topology with communication costs).
    """
    if isinstance(source, SimulationResult):
        result = source
    else:
        result = simulate(source, cost_model or CostModel.practical())

    compute = [t for t in result.timed.values() if t.op.is_compute]
    if not compute:
        return "(empty schedule)"
    if time_step is None:
        time_step = min(t.duration for t in compute if t.duration > 0)
    horizon = result.compute_makespan
    num_cells = max(1, round(horizon / time_step))
    if comm_lanes is None:
        comm_lanes = any(t.duration > 0 for t in result.transfers)

    lines = []
    header = f"{result.schedule.describe()}  (1 cell = {time_step:g}s)"
    lines.append(header)
    # Row prefixes share one width so comm lanes align with their compute
    # row at any worker count.
    tag_width = max(4, len(f"P{result.schedule.num_workers - 1}>"))
    for worker in range(result.schedule.num_workers):
        cells = ["." * cell_width] * num_cells
        for t in result.timed_ops_on(worker):
            label = _label(t.op)
            first = min(num_cells - 1, round(t.start / time_step))
            last = max(first, min(num_cells - 1, round(t.end / time_step) - 1))
            for c in range(first, last + 1):
                cells[c] = label[:cell_width].center(cell_width)
        lines.append(f"P{worker}".ljust(tag_width) + "|" + "|".join(cells) + "|")
        if comm_lanes:
            # Overlapping transfers (only the beta term serializes; alpha
            # pipelines) stack onto extra lanes instead of overwriting.
            # Host-channel stash copies get their own lane set (``P0~``):
            # they occupy the worker's PCIe channel, never the NIC.
            wire: list[tuple[str, object]] = []
            host: list[tuple[str, object]] = []
            for t in result.transfers_from(worker):
                if t.duration <= 0:
                    continue
                if t.payload == "stash":
                    direction = (
                        t.channel[2]
                        if isinstance(t.channel, tuple) and len(t.channel) > 2
                        else None
                    )
                    mark = {"d2h": "v", "h2d": "^"}.get(direction, "~")
                    mbs = ",".join(str(m) for m in t.micro_batches)
                    host.append((f"{mbs}{mark}", t))
                else:
                    label = (
                        f"{'a' if t.payload == 'act' else 'g'}"
                        f"{','.join(str(m) for m in t.micro_batches)}"
                        f">{t.dst_worker}"
                    )
                    wire.append((label, t))
            for tag, group in ((f"P{worker}>", wire), (f"P{worker}~", host)):
                lanes: list[list[str]] = []
                lane_free: list[float] = []
                for label, t in group:
                    for index, free in enumerate(lane_free):
                        if t.start >= free - 1e-12:
                            lane = index
                            break
                    else:
                        lanes.append([" " * cell_width] * num_cells)
                        lane_free.append(0.0)
                        lane = len(lanes) - 1
                    lane_free[lane] = t.end
                    first = min(num_cells - 1, round(t.start / time_step))
                    last = max(
                        first, min(num_cells - 1, round(t.end / time_step) - 1)
                    )
                    for c in range(first, last + 1):
                        lanes[lane][c] = label[:cell_width].center(cell_width)
                for row in lanes:
                    lines.append(
                        tag.ljust(tag_width) + "|" + "|".join(row) + "|"
                    )
    # Synchronization summary line.
    if result.collectives:
        syncs = ", ".join(
            f"S{c.stage}@[{c.start:g},{c.end:g})" for c in result.collectives[:8]
        )
        more = "" if len(result.collectives) <= 8 else ", ..."
        lines.append(f"allreduce: {syncs}{more}")
    p2p = [t for t in result.transfers if t.payload != "stash"]
    stash = [t for t in result.transfers if t.payload == "stash"]
    if p2p:
        lines.append(
            f"p2p transfers: {len(p2p)} "
            f"(wire time {sum(t.duration for t in p2p):g}s, "
            f"occupancy {sum(t.occupancy for t in p2p):g}s)"
        )
    if stash:
        lines.append(
            f"host copies: {len(stash)} "
            f"(wire time {sum(t.duration for t in stash):g}s, "
            f"occupancy {sum(t.occupancy for t in stash):g}s)"
        )
    lines.append(
        f"compute makespan={result.compute_makespan:g}s  "
        f"iteration={result.iteration_time:g}s"
    )
    return "\n".join(lines)


def _label(op) -> str:
    mbs = "+".join(str(m) for m in op.micro_batches)
    if op.kind is OpKind.BACKWARD:
        suffix = "*"
        if op.part != (0, 1):
            suffix = f"*{op.part[0]}"
        return f"{mbs}{suffix}"
    if op.kind is OpKind.BACKWARD_INPUT:
        return f"{mbs}b"
    if op.kind is OpKind.BACKWARD_WEIGHT:
        return f"{mbs}w"
    if op.kind is OpKind.RECOMPUTE:
        return f"{mbs}r"
    return mbs
