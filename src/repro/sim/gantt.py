"""ASCII Gantt rendering of (timed) schedules.

Reproduces the style of the paper's Figures 2, 3, 7 and 8: one row per
worker, forward cells as the micro-batch number, backward cells shaded
(``*`` suffix), bubbles as dots. Split zero-bubble backwards render their
input-gradient half with a ``b`` suffix and the weight-gradient half with a
``w`` suffix. Used by the quickstart example and invaluable when debugging
schedule builders.
"""

from __future__ import annotations

from repro.schedules.ir import OpKind, Schedule
from repro.sim.cost import CostModel
from repro.sim.engine import SimulationResult, simulate


def render_gantt(
    source: Schedule | SimulationResult,
    *,
    cost_model: CostModel | None = None,
    cell_width: int = 4,
    time_step: float | None = None,
) -> str:
    """Render a schedule (or a simulation result) as an ASCII Gantt chart.

    Parameters
    ----------
    source:
        A schedule (simulated under ``cost_model`` or the practical default)
        or an existing simulation result.
    cell_width:
        Characters per time cell.
    time_step:
        Seconds per cell; defaults to the smallest op duration.
    """
    if isinstance(source, SimulationResult):
        result = source
    else:
        result = simulate(source, cost_model or CostModel.practical())

    compute = [t for t in result.timed.values() if t.op.is_compute]
    if not compute:
        return "(empty schedule)"
    if time_step is None:
        time_step = min(t.duration for t in compute if t.duration > 0)
    horizon = result.compute_makespan
    num_cells = max(1, round(horizon / time_step))

    lines = []
    header = f"{result.schedule.describe()}  (1 cell = {time_step:g}s)"
    lines.append(header)
    for worker in range(result.schedule.num_workers):
        cells = ["." * cell_width] * num_cells
        for t in result.timed_ops_on(worker):
            label = _label(t.op)
            first = min(num_cells - 1, round(t.start / time_step))
            last = max(first, min(num_cells - 1, round(t.end / time_step) - 1))
            for c in range(first, last + 1):
                cells[c] = label[:cell_width].center(cell_width)
        lines.append(f"P{worker:<3}|" + "|".join(cells) + "|")
    # Synchronization summary line.
    if result.collectives:
        syncs = ", ".join(
            f"S{c.stage}@[{c.start:g},{c.end:g})" for c in result.collectives[:8]
        )
        more = "" if len(result.collectives) <= 8 else ", ..."
        lines.append(f"allreduce: {syncs}{more}")
    lines.append(
        f"compute makespan={result.compute_makespan:g}s  "
        f"iteration={result.iteration_time:g}s"
    )
    return "\n".join(lines)


def _label(op) -> str:
    mbs = "+".join(str(m) for m in op.micro_batches)
    if op.kind is OpKind.BACKWARD:
        suffix = "*"
        if op.part != (0, 1):
            suffix = f"*{op.part[0]}"
        return f"{mbs}{suffix}"
    if op.kind is OpKind.BACKWARD_INPUT:
        return f"{mbs}b"
    if op.kind is OpKind.BACKWARD_WEIGHT:
        return f"{mbs}w"
    return mbs
