"""Array-backed simulation kernel: the fast path for every schedule.

The event-queue engine (:mod:`repro.sim.engine`) defines the timing
model: explicit transfers queue FIFO on link channels, blocking
collectives synchronize workers mid-schedule, and background collectives
contend with p2p traffic. This module evaluates the *same* model over
flat numpy-backed arrays instead of a heap of Python events — for every
registered scheme, every pass pipeline, and every cost model, contended
or not. There is no event-engine fallback.

Contention-free schedules (implicit communication under any cost model,
or lowered schedules with ``beta = 0``) are a pure longest-path
computation over the dependency DAG plus each worker's program order:

    ``start(op) = max over incoming edges of (end(src) + delay(edge))``

evaluated in one pass over a precomputed topological order.

Contended schedules (nonzero channel occupancy) add FIFO queueing: a
transfer's wire start is ``max(send_end, channel_free)`` in the order
SEND completions pop from the engine's event heap. The kernel reproduces
that with a **fixed-point relaxation**: each sweep is a longest-path pass
whose transfer edges carry a per-SEND queueing delay; after the sweep,
transfers are re-serialized through per-channel FIFO arrays (occupancy =
``beta * L``, latency ``alpha`` pipelines, full/half duplex) in the
engine's pop order — sorted by ``(send_end, worker, row position)`` —
and the queueing delays are recomputed. Iteration stops when the delays
are *exactly* stable (max/+ arithmetic over floats reaches a bitwise
fixed point once the channel order stabilizes, so the converged times
are self-consistent and equal the engine's); a cap of
:data:`MAX_RELAXATION_SWEEPS` raises
:class:`~repro.common.errors.KernelConvergenceError` instead of ever
returning non-converged times. Blocking collectives resolve inside the
sweep over an augmented topological order (member launches barrier their
program-order successors), with the transfer-contention push folded into
the same fixed point.

Public surface:

* :class:`ScheduleKernel` — the cost-model-independent array form of a
  dependency graph: a numpy structured op table, flattened edge arrays,
  a wave levelization, precomputed per-SEND tables (worker endpoints,
  payload units, row positions), and `reduceat` segment offsets. Built
  once per graph and cached on it, next to the engine's dense form.
* :func:`simulate_fast` — drop-in :func:`~repro.sim.engine.simulate` for
  a single cost model. One scalar pass when contention-free; the
  fixed-point relaxation when contended or blocking.
* :func:`simulate_batch` — evaluates *many* cost models against one
  cached kernel; contention-free rows share one wave-vectorized sweep,
  contended rows share wave-vectorized fixed-point sweeps.
* :func:`simulate_batch_many` — the heterogeneous batch API: rows may
  differ in schedule shape ``(D, N)`` and pass pipeline, not just in
  cost model/topology. Rows sharing a kernel vectorize together, so the
  planner ranks *all* its survivors in a single call.
* :func:`fast_path_supported` — a fast/slow **telemetry hint** (will the
  single-sweep path run, or the iterative contended one?). It gates
  nothing: every input runs on the kernel.

Both paths end in the engine's own ``_finalize`` semantics for
collective resolution and overlap accounting, so results match the event
engine to floating-point equality (the differential suites assert 1e-9)
— the kernel is a faster evaluator of the same model, never a second
model.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import KernelConvergenceError, ScheduleError
from repro.schedules.dependencies import DependencyGraph, build_dependency_graph
from repro.schedules.ir import Operation, Schedule
from repro.sim.cost import CostModel
from repro.sim.engine import (
    _ALLREDUCE,
    _PLAIN,
    _RECV,
    _SEND,
    SimulationResult,
    TimedOp,
    TransferRecord,
    _clear_of_transfers,
    _dense_of,
    _finalize,
)

#: Cap on fixed-point sweeps before the kernel raises
#: :class:`~repro.common.errors.KernelConvergenceError`. Real schedules
#: converge in 2-4 sweeps (the channel order stabilizes after contention
#: first feeds back into the timeline); the cap is a safety net against
#: oscillation, far above anything observed.
MAX_RELAXATION_SWEEPS = 120

#: Structured layout of the per-operation table. ``shape`` indexes the
#: kernel's duration-class table (ops sharing a shape share a duration
#: under every cost model); ``wave`` is the op's level in the combined
#: dependency-plus-program-order DAG.
OP_DTYPE = np.dtype(
    [
        ("kind", np.int8),
        ("worker", np.int32),
        ("shape", np.int32),
        ("wave", np.int32),
    ]
)


class ScheduleKernel:
    """Cost-model-independent array form of one dependency graph.

    Parallel arrays, all indexed by the engine's dense op ids:

    ``ops``
        The :data:`OP_DTYPE` structured table.
    ``edge_src`` / ``edge_dst`` / ``edge_cls``
        The combined edge list — worker-order chains, local dependency
        edges, implicit cross-worker p2p edges, and lowered ``SEND → RECV``
        wire edges — sorted by the destination's topological position.
        ``edge_cls`` indexes the delay-class table (class 0 = no delay).
    ``order``
        Op ids in topological order (wave-major, id-minor).
    ``send_oid`` / ``send_worker`` / ``send_dst_w`` / ``send_units`` /
    ``send_row_pos``
        The per-SEND table, built once: everything the FIFO serialization
        and the occupancy hint need, with no per-call scan of the dense
        form.

    The wave/segment offset arrays (``wave_op_ptr``, ``wave_edge_ptr``,
    ``red_off``, ``red_dst``, ``wave_red_ptr``, ``inc_ptr``) drive the two
    relaxation strategies; see :meth:`relax_scalar` and :meth:`relax`.
    """

    def __init__(self, graph: DependencyGraph):
        dense = _dense_of(graph)
        self.dense = dense
        total = dense.total
        self.total = total

        # ---- shape classes (duration memoization across cost models) ----
        shape_id: dict[tuple, int] = {}
        self.shape_reps: list[tuple[int, Operation]] = []
        op_shape = np.zeros(total, dtype=np.int32)
        for oid, op in enumerate(dense.ops_flat):
            shape = dense.shape[oid]
            sid = shape_id.get(shape)
            if sid is None:
                sid = len(self.shape_reps)
                shape_id[shape] = sid
                self.shape_reps.append((dense.kind_code[oid], op))
            op_shape[oid] = sid

        # ---- combined edge list -----------------------------------------
        # Delay classes: distinct (src_worker, dst_worker, payload_units,
        # host_dir) tuples actually present on delay-carrying edges.
        # host_dir is -1 for network edges and the transfer direction for
        # host-channel (OFFLOAD/RELOAD) wire edges, which are priced on
        # the cost model's host link instead of the topology. Class 0 is
        # the zero-delay class shared by program-order and local edges.
        cls_id: dict[tuple[int, int, float, int], int] = {}
        self.delay_classes: list[tuple[int, int, float, int]] = []

        def _cls(src_w: int, dst_w: int, units: float, host_dir: int = -1) -> int:
            key = (src_w, dst_w, units, host_dir)
            cid = cls_id.get(key)
            if cid is None:
                cid = len(self.delay_classes) + 1
                cls_id[key] = cid
                self.delay_classes.append(key)
            return cid

        esrc: list[int] = []
        edst: list[int] = []
        ecls: list[int] = []
        #: Per-edge send-table index (-1 for non-TRANSFER edges); the
        #: contended sweeps add each SEND's queueing delay to its wire
        #: edge through this mapping.
        etr: list[int] = []
        op_worker = dense.op_worker
        for ids in dense.row_ids:
            for a, b in zip(ids, ids[1:]):
                esrc.append(a)
                edst.append(b)
                ecls.append(0)
                etr.append(-1)
        #: SEND op id -> delay class of its wire edge.
        self.send_cls: dict[int, int] = {}
        send_oid: list[int] = []
        send_dst_w: list[int] = []
        send_units: list[float] = []
        for src in range(total):
            for dst in dense.out_local[src]:
                esrc.append(src)
                edst.append(dst)
                ecls.append(0)
                etr.append(-1)
            for dst, src_w, dst_w, units in dense.out_remote[src]:
                esrc.append(src)
                edst.append(dst)
                ecls.append(_cls(src_w, dst_w, units))
                etr.append(-1)
            recv = dense.transfer_out[src]
            if recv >= 0:
                dst_w, units = dense.send_info[src]
                cid = _cls(op_worker[src], dst_w, units, dense.host_dir[src])
                self.send_cls[src] = cid
                esrc.append(src)
                edst.append(recv)
                ecls.append(cid)
                etr.append(len(send_oid))
                send_oid.append(src)
                send_dst_w.append(dst_w)
                send_units.append(units)
        num_edges = len(esrc)

        # ---- the per-kernel SEND table ----------------------------------
        # Everything per-cost-model send evaluation needs, in array form:
        # max_send_occupancy and the FIFO serialization never loop over
        # dense.send_info again.
        self.send_oid = np.array(send_oid, dtype=np.int64)
        self.send_worker = np.array(
            [op_worker[o] for o in send_oid], dtype=np.int64
        )
        self.send_dst_w = np.array(send_dst_w, dtype=np.int64)
        self.send_units = np.array(send_units, dtype=np.float64)
        self.send_row_pos = np.array(
            [dense.row_pos[o] for o in send_oid], dtype=np.int64
        )
        #: Host-transfer direction per send (-1 network, 0 d2h, 1 h2d).
        self.send_host_dir = np.array(
            [dense.host_dir[o] for o in send_oid], dtype=np.int64
        )
        self.has_host_sends = bool((self.send_host_dir >= 0).any())
        self.send_ids = send_oid
        #: Op id -> send-table index (-1 for non-SEND ops).
        send_of_op = [-1] * total
        for i, oid in enumerate(send_oid):
            send_of_op[oid] = i
        self._send_of_op = send_of_op
        # Full-duplex channels are single-source (channel (a, b) only ever
        # carries worker a's sends, whose end times are monotone in row
        # order), so the FIFO order per channel is static and contended
        # full-duplex schedules serialize inline in ONE sweep. Compact the
        # channel ids for dense per-channel cursor arrays. Host transfers
        # get their own compact channels above the worker-pair namespace —
        # one per (worker, direction), the full-host-duplex granularity
        # (half-duplex host channels route to the fixed point instead; see
        # :func:`_inline_fifo_ok`) — which keeps a worker's OFFLOADs off
        # the worker-pair diagonal id a network send would use.
        num_workers = graph.schedule.num_workers
        chan_full = self.send_worker * num_workers + self.send_dst_w
        if self.has_host_sends:
            host = self.send_host_dir >= 0
            chan_full = np.where(
                host,
                num_workers * num_workers
                + self.send_worker * 2
                + np.maximum(self.send_host_dir, 0),
                chan_full,
            )
        uniq, inverse = (
            np.unique(chan_full, return_inverse=True)
            if len(send_oid)
            else (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        )
        self.send_chan_idx = inverse
        self.num_channels = len(uniq)
        self._send_chan_list = inverse.tolist()

        # ---- wave levelization (Kahn over the combined DAG) -------------
        indeg = [0] * total
        out: list[list[int]] = [[] for _ in range(total)]
        for e in range(num_edges):
            indeg[edst[e]] += 1
            out[esrc[e]].append(edst[e])
        wave = [0] * total
        frontier = [o for o in range(total) if indeg[o] == 0]
        level = 0
        seen = 0
        while frontier:
            nxt: list[int] = []
            for o in frontier:
                wave[o] = level
                seen += 1
                for d in out[o]:
                    indeg[d] -= 1
                    if indeg[d] == 0:
                        nxt.append(d)
            frontier = nxt
            level += 1
        if seen != total:
            # The validator guarantees acyclicity for every registered
            # scheme; reaching this means a hand-built schedule has a
            # dependency cycle.
            raise ScheduleError(
                f"kernel levelization stuck: {total - seen} ops sit on a "
                f"dependency cycle"
            )
        self.num_waves = level
        #: Whether the wave-vectorized sweeps amortize their per-wave numpy
        #: dispatch. Nearly-serial schedules (GEMS runs ~2 micro-batches in
        #: flight, so its critical chain covers most ops) levelize into
        #: thousands of 1-2 op waves, where a per-row scalar pass beats the
        #: batched sweep by 2x+; the batch paths route on this flag.
        self.wave_sweep_profitable = total >= 6 * max(1, level)

        order = sorted(range(total), key=lambda o: (wave[o], o))
        pos_of = [0] * total
        for pos, oid in enumerate(order):
            pos_of[oid] = pos

        # ---- structured op table ----------------------------------------
        ops = np.zeros(total, dtype=OP_DTYPE)
        ops["kind"] = dense.kind_code
        ops["worker"] = op_worker
        ops["shape"] = op_shape
        ops["wave"] = wave
        self.ops = ops

        # Edges sorted by the destination's topological position, so one
        # sorted array serves both the scalar pass (per-op CSR slices) and
        # the wave pass (per-wave slices + reduceat segments).
        eorder = sorted(range(num_edges), key=lambda e: pos_of[edst[e]])
        self.edge_src = np.array([esrc[e] for e in eorder], dtype=np.int64)
        self.edge_dst = np.array([edst[e] for e in eorder], dtype=np.int64)
        self.edge_cls = np.array([ecls[e] for e in eorder], dtype=np.int64)
        edge_send = np.array([etr[e] for e in eorder], dtype=np.int64)
        #: Positions (in the sorted edge arrays) of the TRANSFER edges and
        #: the send-table index each one belongs to.
        self.tr_edge_pos = np.flatnonzero(edge_send >= 0)
        self.tr_edge_send = edge_send[self.tr_edge_pos]
        self._edge_send_list = edge_send.tolist()
        # edge_src with TRANSFER edges remapped to virtual wire slots
        # (total + send index): the scalar FIFO sweep extends its end
        # list with one slot per SEND holding that SEND's wire start, so
        # its inner loop is the branch-free one-add-per-edge body of
        # relax_scalar_delays.
        esrc_fifo = self.edge_src.copy()
        esrc_fifo[self.tr_edge_pos] = total + self.tr_edge_send
        self._esrc_fifo_list = esrc_fifo.tolist()
        # Scalar-path views (python lists index ~3x faster than ndarrays
        # in a tight interpreter loop).
        self._edge_src_list = self.edge_src.tolist()
        self._edge_cls_list = self.edge_cls.tolist()
        self._order_list = order
        self._pos_of = pos_of
        inc_ptr = [0] * (total + 1)
        for e in range(num_edges):
            inc_ptr[pos_of[edst[e]] + 1] += 1
        for i in range(total):
            inc_ptr[i + 1] += inc_ptr[i]
        self._inc_ptr = inc_ptr
        #: Per-op in-degree, aligned with ``order``. The scalar sweeps
        #: dispatch on it (straight-line bodies for the dominant degree-
        #: 1/2/3 ops instead of a ``range`` loop per op).
        self._indeg_list = [
            inc_ptr[i + 1] - inc_ptr[i] for i in range(total)
        ]

        self.order = np.array(order, dtype=np.int64)
        wave_of_op = ops["wave"].astype(np.int64)
        waves = np.arange(self.num_waves + 1)
        self.wave_op_ptr = np.searchsorted(wave_of_op[self.order], waves)
        edge_wave = wave_of_op[self.edge_dst]
        self.wave_edge_ptr = np.searchsorted(edge_wave, waves)
        if num_edges:
            boundary = np.empty(num_edges, dtype=bool)
            boundary[0] = True
            boundary[1:] = self.edge_dst[1:] != self.edge_dst[:-1]
            self.red_off = np.flatnonzero(boundary)
            self.red_dst = self.edge_dst[self.red_off]
            self.wave_red_ptr = np.searchsorted(edge_wave[self.red_off], waves)
        else:  # pragma: no cover - every schedule has worker-order edges
            self.red_off = np.zeros(0, dtype=np.int64)
            self.red_dst = np.zeros(0, dtype=np.int64)
            self.wave_red_ptr = np.zeros(self.num_waves + 1, dtype=np.int64)
        # Per-wave slices for the inline FIFO sweep: the transfer edges
        # landing in each wave (their per-edge positions are wave-sorted
        # already) and the SEND ops completing in each wave. Full duplex
        # guarantees at most one send per channel per wave (program order
        # chains same-channel sends into strictly increasing waves), so
        # the per-wave channel-cursor update is a well-defined scatter.
        self.wave_tr_ptr = np.searchsorted(edge_wave[self.tr_edge_pos], waves)
        send_wave = wave_of_op[self.send_oid]
        by_wave = np.argsort(send_wave, kind="stable")
        self.send_by_wave = by_wave
        self.wave_send_ptr = np.searchsorted(send_wave[by_wave], waves)

        # ---- derived index sets ------------------------------------------
        kind = ops["kind"]
        self.compute_ids = np.flatnonzero(kind == _PLAIN)
        comp_worker = ops["worker"][self.compute_ids]
        by_worker = np.argsort(comp_worker, kind="stable")
        self.compute_by_worker = self.compute_ids[by_worker]
        self.num_workers = graph.schedule.num_workers
        self.worker_ptr = np.searchsorted(
            comp_worker[by_worker], np.arange(self.num_workers + 1)
        )
        self._blocking: _BlockingAux | None = None

    # ------------------------------------------------------------ per-model
    def durations(self, cost_model: CostModel) -> np.ndarray:
        """Per-op durations under ``cost_model`` (via the shape classes)."""
        shape_durs = np.empty(len(self.shape_reps))
        for sid, (code, rep) in enumerate(self.shape_reps):
            if code == _ALLREDUCE:
                shape_durs[sid] = cost_model.sync_launch_overhead
            elif code == _SEND or code == _RECV:
                shape_durs[sid] = cost_model.comm_launch_overhead
            else:
                shape_durs[sid] = cost_model.compute_time(rep)
        return shape_durs[self.ops["shape"]]

    def class_delays(self, cost_model: CostModel) -> np.ndarray:
        """Edge-delay table under ``cost_model`` (class 0 stays zero)."""
        delays = np.zeros(len(self.delay_classes) + 1)
        for cid, (src_w, dst_w, units, hd) in enumerate(self.delay_classes, 1):
            if hd >= 0:
                delays[cid] = cost_model.host_time(units)
            else:
                delays[cid] = cost_model.p2p_time(src_w, dst_w, units)
        return delays

    def send_tables(
        self, cost_model: CostModel
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-SEND ``(wire_time, occupancy, channel_id)`` arrays.

        Built from the topology's array API (:meth:`link_table` /
        :meth:`channel_id_array`) over the kernel's static SEND table —
        O(sends) of vectorized work, no per-send Python loop. Host
        transfers (OFFLOAD/RELOAD) are priced on the cost model's host
        channel; their channel ids live at ``W**2 + worker*2 + dir``,
        above the worker-pair namespace. Channel id ``-1`` means no
        contention channel (free links, free host channel, or same-worker
        network endpoints); decode network ids as ``(id // W, id % W)``.
        """
        n = len(self.send_oid)
        wire = np.zeros(n)
        occupancy = np.zeros(n)
        chan = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return wire, occupancy, chan
        host = self.send_host_dir >= 0
        net = ~host
        topo = cost_model.topology
        if topo is not None and net.any():
            src_w = self.send_worker[net]
            dst_w = self.send_dst_w[net]
            alpha, beta = topo.link_table(src_w, dst_w)
            size = cost_model.activation_message_bytes * self.send_units[net]
            net_wire = alpha + beta * size
            net_occ = beta * size
            net_chan = topo.channel_id_array(src_w, dst_w, self.num_workers)
            same = src_w == dst_w
            if same.any():  # pragma: no cover - lowering never emits these
                net_wire = np.where(same, 0.0, net_wire)
                net_occ = np.where(same, 0.0, net_occ)
                net_chan = np.where(same, -1, net_chan)
            wire[net] = net_wire
            occupancy[net] = net_occ
            chan[net] = net_chan
        hc = cost_model.host_channel
        if hc is not None and self.has_host_sends:
            size = cost_model.host_bytes(self.send_units[host])
            wire[host] = hc.link.alpha + hc.link.beta * size
            occupancy[host] = hc.link.beta * size
            dirs = self.send_host_dir[host]
            code = np.zeros_like(dirs) if hc.duplex == "half" else dirs
            chan[host] = (
                self.num_workers * self.num_workers
                + self.send_worker[host] * 2
                + code
            )
        return wire, occupancy, chan

    def max_send_occupancy(self, cost_model: CostModel) -> float:
        """Largest link occupancy any SEND would claim under this model."""
        if not len(self.send_oid):
            return 0.0
        _, occupancy, _ = self.send_tables(cost_model)
        return float(occupancy.max())

    # ------------------------------------------------------- blocking aux
    def blocking_aux(self) -> "_BlockingAux":
        """The blocking-collective structures, built lazily and cached."""
        if self._blocking is None:
            self._blocking = _BlockingAux(self)
        return self._blocking

    # ----------------------------------------------------------- relaxation
    def relax_scalar(
        self, durations: np.ndarray, delays: np.ndarray
    ) -> tuple[list[float], list[float]]:
        """Single-model longest-path pass; returns (start, end) lists.

        Materializes the per-edge delay list up front (one vectorized
        gather) so the interpreter loop never touches the class table.
        """
        edl = delays[self.edge_cls]
        return self.relax_scalar_delays(durations.tolist(), edl.tolist())

    def relax_scalar_delays(
        self, dur: list[float], edge_delay: list[float]
    ) -> tuple[list[float], list[float]]:
        """Scalar pass with a fully materialized per-edge delay list.

        The contended sweep: transfer edges carry their class delay plus
        the current per-SEND queueing delay, everything else is as
        :meth:`relax_scalar`. The edge cursor ``e`` advances linearly
        (edges are sorted by destination position), and the in-degree
        dispatch runs straight-line bodies for the dominant degree-1/2/3
        ops — roughly a quarter off the interpreter cost per op versus a
        ``range`` inner loop.
        """
        edl = edge_delay
        esrc = self._edge_src_list
        start = [0.0] * self.total
        end = [0.0] * self.total
        e = 0
        for oid, n in zip(self._order_list, self._indeg_list):
            if n == 2:
                ready = end[esrc[e]] + edl[e]
                e += 1
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
            elif n == 3:
                ready = end[esrc[e]] + edl[e]
                e += 1
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
            elif n == 1:
                ready = end[esrc[e]] + edl[e]
                e += 1
            elif n == 0:
                ready = 0.0
            else:
                ready = 0.0
                for _ in range(n):
                    t = end[esrc[e]] + edl[e]
                    if t > ready:
                        ready = t
                    e += 1
            start[oid] = ready
            end[oid] = ready + dur[oid]
        return start, end

    def relax_scalar_fifo(
        self,
        durations: np.ndarray,
        delays: np.ndarray,
        wire: np.ndarray,
        occupancy: np.ndarray,
    ) -> tuple[list[float], list[float], np.ndarray]:
        """Single-model contended sweep with inline FIFO serialization.

        Valid for full-duplex topologies only: each channel's FIFO order
        is its source worker's row order, which every topological order
        respects, so channel cursors can be updated the moment each SEND
        completes — one sweep, no fixed point. Transfer edges read their
        SEND's wire start through the virtual slots appended to ``end``
        (``_esrc_fifo_list``), keeping the inner loop branch-free: one
        indexed add per edge. Returns ``(start, end, wire_start)``.
        """
        dur = durations.tolist()
        edge_delay = delays[self.edge_cls]
        if len(self.tr_edge_pos):
            edge_delay[self.tr_edge_pos] = wire[self.tr_edge_send]
        edl = edge_delay.tolist()
        occ_l = occupancy.tolist()
        esrc = self._esrc_fifo_list
        send_of_op = self._send_of_op
        chan_idx = self._send_chan_list
        total = self.total
        start = [0.0] * total
        end = [0.0] * (total + len(occ_l))
        chan_free = [0.0] * self.num_channels
        e = 0
        for oid, n in zip(self._order_list, self._indeg_list):
            if n == 2:
                ready = end[esrc[e]] + edl[e]
                e += 1
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
            elif n == 3:
                ready = end[esrc[e]] + edl[e]
                e += 1
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
                t = end[esrc[e]] + edl[e]
                e += 1
                if t > ready:
                    ready = t
            elif n == 1:
                ready = end[esrc[e]] + edl[e]
                e += 1
            elif n == 0:
                ready = 0.0
            else:
                ready = 0.0
                for _ in range(n):
                    t = end[esrc[e]] + edl[e]
                    if t > ready:
                        ready = t
                    e += 1
            start[oid] = ready
            end_t = ready + dur[oid]
            end[oid] = end_t
            sidx = send_of_op[oid]
            if sidx >= 0:
                c = chan_idx[sidx]
                free = chan_free[c]
                wire_t = end_t if end_t >= free else free
                chan_free[c] = wire_t + occ_l[sidx]
                end[total + sidx] = wire_t
        return start, end[:total], np.asarray(end[total:])

    def relax(
        self,
        durations: np.ndarray,
        delays: np.ndarray | None = None,
        *,
        edge_delays: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched longest-path pass over ``K`` models at once.

        ``durations`` is ``(K, total)``; delays come either as a per-class
        table ``delays`` of shape ``(K, classes+1)`` or as a precomputed
        per-edge matrix ``edge_delays`` of shape ``(K, edges)`` (the
        contended fixed point, where transfer edges carry per-row
        queueing delays). Returns ``(start, end)`` as ``(K, total)``
        arrays. Each wave is a handful of vectorized operations
        regardless of ``K``, which is where the batch API's throughput
        comes from.
        """
        k = durations.shape[0]
        start = np.zeros((k, self.total))
        end = np.zeros((k, self.total))
        if edge_delays is None:
            if delays is None:
                raise ValueError("relax needs either delays or edge_delays")
            edge_delays = delays[:, self.edge_cls]
        esrc = self.edge_src
        order = self.order
        wop = self.wave_op_ptr
        wep = self.wave_edge_ptr
        wrp = self.wave_red_ptr
        red_off = self.red_off
        red_dst = self.red_dst
        for w in range(self.num_waves):
            lo, hi = wep[w], wep[w + 1]
            if lo < hi:
                contrib = end[:, esrc[lo:hi]] + edge_delays[:, lo:hi]
                segments = red_off[wrp[w] : wrp[w + 1]] - lo
                start[:, red_dst[wrp[w] : wrp[w + 1]]] = np.maximum.reduceat(
                    contrib, segments, axis=1
                )
            ops = order[wop[w] : wop[w + 1]]
            end[:, ops] = start[:, ops] + durations[:, ops]
        return start, end

    def relax_fifo(
        self,
        durations: np.ndarray,
        delays: np.ndarray,
        wire: np.ndarray,
        occupancy: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched contended sweep with inline FIFO serialization.

        The ``K``-model analogue of :meth:`relax_scalar_fifo` (full-duplex
        rows only): per-wave, transfer-edge contributions read the wire
        arrival ``wire_start + wire_time`` instead of the class delay, and
        the sends completing in the wave advance their channel cursors in
        one vectorized scatter (full duplex guarantees one send per
        channel per wave). ``wire`` / ``occupancy`` are ``(K, sends)``
        tables. Returns ``(start, end, wire_start)``.
        """
        k = durations.shape[0]
        start = np.zeros((k, self.total))
        end = np.zeros((k, self.total))
        edge_delays = delays[:, self.edge_cls]
        n_send = len(self.send_oid)
        wire_start = np.zeros((k, n_send))
        chan_free = np.zeros((k, self.num_channels))
        esrc = self.edge_src
        order = self.order
        soid = self.send_oid
        scidx = self.send_chan_idx
        wop = self.wave_op_ptr
        wep = self.wave_edge_ptr
        wrp = self.wave_red_ptr
        wtp = self.wave_tr_ptr
        wsp = self.wave_send_ptr
        red_off = self.red_off
        red_dst = self.red_dst
        tpos = self.tr_edge_pos
        tsend = self.tr_edge_send
        sbw = self.send_by_wave
        for w in range(self.num_waves):
            lo, hi = wep[w], wep[w + 1]
            if lo < hi:
                contrib = end[:, esrc[lo:hi]] + edge_delays[:, lo:hi]
                t0, t1 = wtp[w], wtp[w + 1]
                if t0 < t1:
                    sends = tsend[t0:t1]
                    contrib[:, tpos[t0:t1] - lo] = (
                        wire_start[:, sends] + wire[:, sends]
                    )
                segments = red_off[wrp[w] : wrp[w + 1]] - lo
                start[:, red_dst[wrp[w] : wrp[w + 1]]] = np.maximum.reduceat(
                    contrib, segments, axis=1
                )
            ops = order[wop[w] : wop[w + 1]]
            end[:, ops] = start[:, ops] + durations[:, ops]
            s0, s1 = wsp[w], wsp[w + 1]
            if s0 < s1:
                sends = sbw[s0:s1]
                cursors = scidx[sends]
                ws = np.maximum(end[:, soid[sends]], chan_free[:, cursors])
                chan_free[:, cursors] = ws + occupancy[:, sends]
                wire_start[:, sends] = ws
        return start, end, wire_start


class _BlockingAux:
    """Precomputed structures for blocking-collective resolution.

    Blocking semantics in the event engine: a worker that launches an
    ``ALLREDUCE`` blocks until every group member has launched and the
    collective completes; resolution releases each member's program-order
    successor at ``max(own end, collective end)``. In DAG terms that is a
    barrier — every member's launch precedes every member's successor —
    so the kernel levelizes an *augmented* DAG (base edges plus
    member -> successor edges) once, and a single sweep over that order
    can resolve each group the moment its last member is processed. A
    cycle in the augmented DAG is exactly a blocking deadlock; it raises
    :class:`~repro.common.errors.ScheduleError` like the engine does.
    """

    def __init__(self, kernel: ScheduleKernel):
        dense = kernel.dense
        total = kernel.total
        #: Group index of each op's ALLREDUCE membership (-1 otherwise).
        self.member_group = [-1] * total
        #: Groups whose resolution floors this op's start (the op is the
        #: program-order successor of a member); None for most ops.
        self.release_groups: list[tuple[int, ...] | None] = [None] * total
        self.group_keys: list[tuple] = []
        self.group_stage: list[int] = []
        self.group_workers: list[tuple[int, ...]] = []
        self.member_counts: list[int] = []
        member_lists: list[list[int]] = []

        aug_edges: list[tuple[int, int]] = []
        for group_key, members in dense.sync_group_members.items():
            g = len(self.group_keys)
            self.group_keys.append(group_key)
            self.group_stage.append(group_key[0])
            self.group_workers.append(tuple(w for w, _ in members))
            mids = [dense.id_of[op.key()] for _, op in members]
            member_lists.append(mids)
            self.member_counts.append(len(mids))
            successors = []
            for m in mids:
                self.member_group[m] = g
                worker = dense.op_worker[m]
                pos = dense.row_pos[m]
                row = dense.row_ids[worker]
                if pos + 1 < len(row):
                    successors.append(row[pos + 1])
            for s in successors:
                held = self.release_groups[s]
                self.release_groups[s] = (
                    (g,) if held is None else held + (g,)
                )
                for m in mids:
                    aug_edges.append((m, s))
        self.member_ids = member_lists

        # Augmented Kahn levelization: base edges + the group barriers.
        indeg = [0] * total
        out: list[list[int]] = [[] for _ in range(total)]
        esrc = kernel._edge_src_list
        edst = kernel.edge_dst.tolist()
        for a, b in zip(esrc, edst):
            indeg[b] += 1
            out[a].append(b)
        for a, b in aug_edges:
            indeg[b] += 1
            out[a].append(b)
        frontier = [o for o in range(total) if indeg[o] == 0]
        order: list[int] = []
        while frontier:
            nxt: list[int] = []
            for o in frontier:
                order.append(o)
                for d in out[o]:
                    indeg[d] -= 1
                    if indeg[d] == 0:
                        nxt.append(d)
            frontier = nxt
        if len(order) != total:
            raise ScheduleError(
                f"blocking collectives deadlock: {total - len(order)} ops "
                f"depend on a collective that can never resolve"
            )
        self.order = order


def kernel_of(graph: DependencyGraph) -> ScheduleKernel:
    """The graph's array kernel, built once and cached on the graph."""
    kernel = getattr(graph, "_kernel", None)
    if kernel is None:
        kernel = ScheduleKernel(graph)
        graph._kernel = kernel  # type: ignore[attr-defined]
    return kernel


def fast_path_supported(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    blocking_sync: bool = False,
    graph: DependencyGraph | None = None,
) -> bool:
    """Telemetry hint: will the single-sweep path run (True), or the
    iterative contended/blocking relaxation (False)?

    This gates **nothing** — every schedule × cost model runs on the
    array kernel and matches the event engine to 1e-9 either way. False
    means the kernel will iterate (lowered schedule with nonzero channel
    occupancy, or blocking collectives), which costs a small integer
    multiple of one sweep; callers can use the hint for perf accounting,
    as the bench suite does to label its contended cases.
    """
    if blocking_sync:
        return False
    if not schedule.lowered and not schedule.metadata.get("offload"):
        return True
    if graph is None:
        graph = build_dependency_graph(schedule)
    return kernel_of(graph).max_send_occupancy(cost_model) == 0.0


def simulate_fast(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    graph: DependencyGraph | None = None,
    blocking_sync: bool = False,
) -> SimulationResult:
    """Array-kernel :func:`~repro.sim.engine.simulate`, no fallback.

    Produces a full :class:`~repro.sim.engine.SimulationResult` (timed
    ops, transfers, collectives) identical to the event engine's for
    every registered scheme × pass pipeline × cost model — contended
    lowered schedules and blocking collectives run the fixed-point
    relaxation instead of falling back to the event engine.
    """
    if graph is None:
        graph = build_dependency_graph(schedule)
    kernel = kernel_of(graph)
    wire, occupancy, chan = kernel.send_tables(cost_model)
    contended = bool(occupancy.size) and bool((occupancy > 0.0).any())
    if not contended and not blocking_sync:
        start, end = kernel.relax_scalar(
            kernel.durations(cost_model), kernel.class_delays(cost_model)
        )
        wire_start = (
            np.asarray(end)[kernel.send_oid]
            if len(kernel.send_oid)
            else np.zeros(0)
        )
        resolved = None
    elif not blocking_sync and _inline_fifo_ok(kernel, cost_model):
        start, end, wire_start = kernel.relax_scalar_fifo(
            kernel.durations(cost_model),
            kernel.class_delays(cost_model),
            wire,
            occupancy,
        )
        resolved = None
    else:
        start, end, wire_start, resolved = _solve_scalar(
            kernel, cost_model, occupancy, chan, blocking_sync
        )
    return _assemble_result(
        kernel,
        schedule,
        cost_model,
        start,
        end,
        wire_start=wire_start,
        wire_time=wire,
        occupancy=occupancy,
        chan=chan,
        resolved=resolved,
        blocking_sync=blocking_sync,
    )


def _full_duplex(cost_model: CostModel) -> bool:
    """Whether the model's channels are single-source (static FIFO order).

    Full-duplex channels carry exactly one worker's sends, whose end
    times are monotone in program order — the inline one-sweep FIFO paths
    apply. Half-duplex channels interleave two senders by completion
    time, which is timing-dependent: those rows take the fixed point.
    """
    return getattr(cost_model.topology, "duplex", "full") == "full"


def _inline_fifo_ok(kernel: ScheduleKernel, cost_model: CostModel) -> bool:
    """Whether the one-sweep inline-FIFO paths apply to this row.

    Requires a full-duplex topology, and — when the schedule carries host
    transfers — a full-duplex host channel: the kernel's static channel
    compaction splits each worker's host traffic by direction, which is
    only the true contention granularity under full host duplex. A
    half-duplex host channel interleaves the worker's offloads and
    reloads on one engine, so those rows take the fixed point (which
    serializes against the cost model's own channel ids and handles any
    duplex exactly).
    """
    if getattr(cost_model.topology, "duplex", "full") != "full":
        return False
    if (
        kernel.has_host_sends
        and cost_model.host_channel is not None
        and cost_model.host_channel.duplex == "half"
    ):
        return False
    return True


def _serialize_channels(
    kernel: ScheduleKernel,
    send_end: np.ndarray,
    occupancy: np.ndarray,
    chan: np.ndarray,
) -> np.ndarray:
    """Wire-start times from one FIFO pass over the per-channel arrays.

    Transfers enter their channel in the engine's event-pop order —
    sorted by ``(send_end, worker, row position)`` — and each waits for
    the channel to drain: ``wire_start = max(send_end, channel_free)``,
    ``channel_free = wire_start + occupancy``.
    """
    n = len(send_end)
    wire_start = np.empty(n)
    order = np.lexsort((kernel.send_row_pos, kernel.send_worker, send_end))
    ends = send_end.tolist()
    occ = occupancy.tolist()
    chans = chan.tolist()
    out = wire_start  # local alias for the loop
    chan_free: dict[int, float] = {}
    for i in order.tolist():
        e = ends[i]
        c = chans[i]
        if c < 0:
            out[i] = e
            continue
        free = chan_free.get(c, 0.0)
        ws = e if e >= free else free
        chan_free[c] = ws + occ[i]
        out[i] = ws
    return wire_start


def _blocking_floors(
    kernel: ScheduleKernel,
    aux: _BlockingAux,
    start: list[float],
    end: list[float],
    send_end: np.ndarray,
    wire_start: np.ndarray,
    occupancy: np.ndarray,
) -> np.ndarray:
    """Per-group collective start floors under p2p contention.

    Replicates the event loop's ``resolve_group``: the collective starts
    at ``max(member launch starts)`` pushed past the occupancy intervals
    of every transfer already on the wire when the group resolved. "On
    the wire" is a visibility cutoff in event-pop order: only SENDs whose
    ``(end, worker, row position)`` sorts strictly before the resolving
    member's own pop key had entered the channel.
    """
    floors = np.zeros(len(aux.group_keys))
    if not len(send_end):
        for g, mids in enumerate(aux.member_ids):
            floors[g] = max(start[m] for m in mids)
        return floors
    s_end = send_end
    s_w = kernel.send_worker
    s_pos = kernel.send_row_pos
    op_worker = kernel.dense.op_worker
    row_pos = kernel.dense.row_pos
    for g, mids in enumerate(aux.member_ids):
        cutoff = max((end[m], op_worker[m], row_pos[m]) for m in mids)
        ce, cw, cp = cutoff
        # Host transfers never block a collective's interface (PCIe, not
        # the NIC) — same exclusion as the engine's nic_busy bookkeeping.
        visible = (occupancy > 0.0) & (kernel.send_host_dir < 0) & (
            (s_end < ce)
            | ((s_end == ce) & (s_w < cw))
            | ((s_end == ce) & (s_w == cw) & (s_pos < cp))
        )
        raw = max(start[m] for m in mids)
        workers = aux.group_workers[g]
        if visible.any():
            members = set(workers)
            nic: dict[int, list[tuple[float, float]]] = {}
            for i in np.flatnonzero(visible).tolist():
                interval = (wire_start[i], wire_start[i] + occupancy[i])
                for w in (int(s_w[i]), int(kernel.send_dst_w[i])):
                    if w in members:
                        nic.setdefault(w, []).append(interval)
            raw = _clear_of_transfers(raw, workers, nic)
        floors[g] = raw
    return floors


def _sweep_blocking(
    kernel: ScheduleKernel,
    aux: _BlockingAux,
    dur: list[float],
    edge_delay: list[float],
    floors: list[float],
    ar_cost: list[float],
) -> tuple[
    list[float], list[float], list[float], list[float], list[float]
]:
    """One longest-path sweep that resolves blocking collectives inline.

    Runs over the augmented topological order, so when a group's last
    member is processed every launch time is known: the collective starts
    at ``max(max launch start, floor)`` (the floor carries the
    transfer-contention push from the outer fixed point) and its end
    releases the members' successors.
    """
    esrc = kernel._edge_src_list
    inc_ptr = kernel._inc_ptr
    pos_of = kernel._pos_of
    member_group = aux.member_group
    release_groups = aux.release_groups
    remaining = list(aux.member_counts)
    g_count = len(remaining)
    launch_max = [0.0] * g_count
    g_start = [0.0] * g_count
    g_end = [0.0] * g_count
    start = [0.0] * kernel.total
    end = [0.0] * kernel.total
    for oid in aux.order:
        pos = pos_of[oid]
        ready = 0.0
        for e in range(inc_ptr[pos], inc_ptr[pos + 1]):
            t = end[esrc[e]] + edge_delay[e]
            if t > ready:
                ready = t
        held = release_groups[oid]
        if held is not None:
            for g in held:
                if g_end[g] > ready:
                    ready = g_end[g]
        start[oid] = ready
        end[oid] = ready + dur[oid]
        g = member_group[oid]
        if g >= 0:
            if ready > launch_max[g]:
                launch_max[g] = ready
            remaining[g] -= 1
            if remaining[g] == 0:
                s = launch_max[g] if launch_max[g] > floors[g] else floors[g]
                g_start[g] = s
                g_end[g] = s + ar_cost[g]
    return start, end, g_start, g_end, launch_max


def _solve_scalar(
    kernel: ScheduleKernel,
    cost_model: CostModel,
    occupancy: np.ndarray,
    chan: np.ndarray,
    blocking_sync: bool,
) -> tuple[list[float], list[float], np.ndarray, dict | None]:
    """Fixed-point relaxation for one cost model (contended/blocking).

    Iterates [sweep with current queueing delays and collective floors]
    -> [re-serialize channels, re-resolve collectives] until both are
    exactly stable, then returns ``(start, end, wire_start, resolved)``.
    Raises :class:`KernelConvergenceError` at the sweep cap.
    """
    dur = kernel.durations(cost_model).tolist()
    base_edge = kernel.class_delays(cost_model)[kernel.edge_cls]
    tr_pos = kernel.tr_edge_pos
    tr_send = kernel.tr_edge_send
    n_send = len(kernel.send_oid)
    extras = np.zeros(n_send)
    aux = kernel.blocking_aux() if blocking_sync else None
    if aux is not None:
        ar_cost = [
            cost_model.allreduce_time(aux.group_stage[g], aux.group_workers[g])
            for g in range(len(aux.group_keys))
        ]
        floors = np.zeros(len(aux.group_keys))
    for _ in range(MAX_RELAXATION_SWEEPS):
        edge_delay = base_edge.copy()
        if n_send:
            edge_delay[tr_pos] += extras[tr_send]
        edl = edge_delay.tolist()
        if aux is not None:
            start, end, g_start, g_end, launch_max = _sweep_blocking(
                kernel, aux, dur, edl, floors.tolist(), ar_cost
            )
        else:
            start, end = kernel.relax_scalar_delays(dur, edl)
            g_start = g_end = launch_max = None
        if n_send:
            send_end = np.asarray(end)[kernel.send_oid]
            wire_start = _serialize_channels(kernel, send_end, occupancy, chan)
            new_extras = wire_start - send_end
        else:
            send_end = np.zeros(0)
            wire_start = np.zeros(0)
            new_extras = extras
        stable = np.array_equal(new_extras, extras)
        if aux is not None and len(aux.group_keys):
            new_floors = _blocking_floors(
                kernel, aux, start, end, send_end, wire_start, occupancy
            )
            # Stability of the *effective* collective starts, not the raw
            # floor values: the sweep used max(launch_max, old floor), and
            # it is consistent iff that equals max(launch_max, new floor) —
            # an uncontended floor below max(launches) converges on the
            # first sweep, and a floor that *dropped* is caught too.
            stable = stable and all(
                max(new_floors[g], launch_max[g]) == g_start[g]
                for g in range(len(aux.group_keys))
            )
            if stable:
                resolved = {
                    aux.group_keys[g]: (g_start[g], g_end[g])
                    for g in range(len(aux.group_keys))
                }
                return start, end, wire_start, resolved
            floors = np.maximum(new_floors, 0.0)
        elif stable:
            resolved = {} if blocking_sync else None
            return start, end, wire_start, resolved
        extras = new_extras
    raise KernelConvergenceError(
        f"fixed-point relaxation did not converge within "
        f"{MAX_RELAXATION_SWEEPS} sweeps ({kernel.total} ops, "
        f"{n_send} transfers) — the channel order is oscillating"
    )


def _assemble_result(
    kernel: ScheduleKernel,
    schedule: Schedule,
    cost_model: CostModel,
    start: Sequence[float],
    end: Sequence[float],
    *,
    wire_start: np.ndarray,
    wire_time: np.ndarray,
    occupancy: np.ndarray,
    chan: np.ndarray,
    resolved: dict | None,
    blocking_sync: bool,
) -> SimulationResult:
    """Build the full result from kernel times via the engine's finalizer."""
    dense = kernel.dense
    ops_flat = dense.ops_flat
    op_worker = dense.op_worker
    timed = {}
    for oid, op in enumerate(ops_flat):
        timed[op.key()] = TimedOp(op, op_worker[oid], start[oid], end[oid])

    sync_launches: dict[tuple, dict[int, float]] = {}
    for group_key, members in dense.sync_group_members.items():
        launches = {}
        for worker, op in members:
            launches[worker] = timed[op.key()].start
        sync_launches[group_key] = launches

    num_workers = kernel.num_workers
    transfers: list[TransferRecord] = []
    for idx, oid in enumerate(kernel.send_ids):
        op = ops_flat[oid]
        ws = float(wire_start[idx])
        cid = int(chan[idx])
        if cid < 0:
            channel = None
        elif cid >= num_workers * num_workers:
            # Host-channel id: decode through the cost model's channel so
            # the tuple matches the engine's host_channel_key verbatim.
            channel = cost_model.host_channel.decode_channel_id(
                cid, num_workers
            )
        else:
            channel = (cid // num_workers, cid % num_workers)
        transfers.append(
            TransferRecord(
                src_worker=int(kernel.send_worker[idx]),
                dst_worker=int(kernel.send_dst_w[idx]),
                payload=op.payload,
                micro_batches=op.micro_batches,
                part=op.part,
                start=ws,
                end=ws + float(wire_time[idx]),
                occupancy=float(occupancy[idx]),
                channel=channel,
            )
        )

    compute_makespan = 0.0
    for oid in kernel.compute_ids.tolist():
        if end[oid] > compute_makespan:
            compute_makespan = end[oid]
    return _finalize(
        schedule,
        cost_model,
        timed,
        dense.sync_group_members,
        sync_launches,
        transfers,
        blocking_sync=blocking_sync,
        compute_makespan=compute_makespan,
        resolved=resolved,
    )


@dataclass(frozen=True)
class BatchResult:
    """Per-model iteration quantities from one :func:`simulate_batch`.

    All arrays are indexed by the position of the cost model in the input
    sequence. ``used_fast_path[k]`` is the same telemetry hint
    :func:`fast_path_supported` reports: True for rows evaluated by the
    single-sweep vectorized pass, False for rows that ran the iterative
    contended relaxation. Every row is kernel-computed and engine-exact
    either way.
    """

    schedule: Schedule
    cost_models: tuple[CostModel, ...]
    compute_makespan: np.ndarray
    iteration_time: np.ndarray
    worker_busy: np.ndarray
    used_fast_path: tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.cost_models)

    def bubble_ratio(self, k: int) -> float:
        """Mean idle fraction against the compute makespan (sync schemes)."""
        makespan = float(self.compute_makespan[k])
        if makespan <= 0:
            return 0.0
        ratios = [
            max(0.0, 1.0 - busy / makespan)
            for busy in self.worker_busy[k].tolist()
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def throughput(self, k: int, *, micro_batch: int, width: int = 1) -> float:
        """Samples/second under model ``k`` (mirrors the metrics module)."""
        iteration = float(self.iteration_time[k])
        if iteration <= 0:
            return float("inf")
        samples = self.schedule.num_micro_batches * micro_batch * width
        return samples / iteration


@dataclass(frozen=True)
class HeteroBatchResult:
    """Row-indexed results from one :func:`simulate_batch_many` call.

    Unlike :class:`BatchResult`, rows may come from *different schedules*
    (heterogeneous ``(D, N)`` shapes and pass pipelines), so the
    per-worker busy arrays are a tuple of per-row vectors instead of one
    rectangular matrix.
    """

    schedules: tuple[Schedule, ...]
    cost_models: tuple[CostModel, ...]
    compute_makespan: np.ndarray
    iteration_time: np.ndarray
    worker_busy: tuple[np.ndarray, ...]
    used_fast_path: tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.cost_models)

    def bubble_ratio(self, k: int) -> float:
        """Mean idle fraction against the compute makespan (sync schemes)."""
        makespan = float(self.compute_makespan[k])
        if makespan <= 0:
            return 0.0
        ratios = [
            max(0.0, 1.0 - busy / makespan)
            for busy in self.worker_busy[k].tolist()
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def throughput(self, k: int, *, micro_batch: int, width: int = 1) -> float:
        """Samples/second under row ``k``'s schedule and cost model."""
        iteration = float(self.iteration_time[k])
        if iteration <= 0:
            return float("inf")
        samples = self.schedules[k].num_micro_batches * micro_batch * width
        return samples / iteration


def simulate_batch(
    schedule: Schedule,
    cost_models: Sequence[CostModel],
    *,
    graph: DependencyGraph | None = None,
) -> BatchResult:
    """Evaluate many cost models against one cached dense schedule.

    The batch path never materializes per-op ``TimedOp`` dictionaries —
    it returns exactly the iteration-level quantities ranking needs
    (makespan, iteration time, per-worker busy seconds). Contention-free
    rows share one wave-vectorized relaxation; contended rows share
    wave-vectorized fixed-point sweeps (per-row FIFO serialization
    between sweeps). Every row is engine-exact.
    """
    if not cost_models:
        raise ValueError("simulate_batch needs at least one cost model")
    if graph is None:
        graph = build_dependency_graph(schedule)
    kernel = kernel_of(graph)
    models = tuple(cost_models)
    makespan, iteration, busy, hints = _batch_rows(kernel, models)
    return BatchResult(
        schedule=schedule,
        cost_models=models,
        compute_makespan=makespan,
        iteration_time=iteration,
        worker_busy=busy,
        used_fast_path=hints,
    )


def simulate_batch_many(
    items: Sequence[tuple[Schedule, CostModel]],
    *,
    graphs: Sequence[DependencyGraph | None] | None = None,
) -> HeteroBatchResult:
    """Evaluate heterogeneous ``(schedule, cost_model)`` rows in one call.

    Rows may differ in schedule shape — depth ``D``, micro-batch count
    ``N``, pass pipeline — as well as in cost model and topology. Rows
    sharing a dependency graph share one kernel and vectorize together
    (the wave sweep amortizes over them exactly as in
    :func:`simulate_batch`); distinct shapes evaluate against their own
    cached kernels within the same call. This is the planner's ranking
    primitive: all memory-feasible survivors, one call.
    """
    if not items:
        raise ValueError("simulate_batch_many needs at least one row")
    if graphs is None:
        graphs = [None] * len(items)
    if len(graphs) != len(items):
        raise ValueError("graphs must align with items")
    resolved_graphs: list[DependencyGraph] = []
    for (schedule, _), graph in zip(items, graphs):
        resolved_graphs.append(
            graph if graph is not None else build_dependency_graph(schedule)
        )

    # Group rows by kernel identity, preserving each row's position.
    group_rows: dict[int, list[int]] = {}
    for k, graph in enumerate(resolved_graphs):
        group_rows.setdefault(id(graph), []).append(k)

    n = len(items)
    makespan = np.zeros(n)
    iteration = np.zeros(n)
    busy: list[np.ndarray | None] = [None] * n
    hints = [True] * n
    for rows in group_rows.values():
        kernel = kernel_of(resolved_graphs[rows[0]])
        models = tuple(items[k][1] for k in rows)
        g_mk, g_it, g_busy, g_hints = _batch_rows(kernel, models)
        for j, k in enumerate(rows):
            makespan[k] = g_mk[j]
            iteration[k] = g_it[j]
            busy[k] = g_busy[j]
            hints[k] = g_hints[j]
    return HeteroBatchResult(
        schedules=tuple(schedule for schedule, _ in items),
        cost_models=tuple(model for _, model in items),
        compute_makespan=makespan,
        iteration_time=iteration,
        worker_busy=tuple(busy),  # type: ignore[arg-type]
        used_fast_path=tuple(hints),
    )


def _batch_rows(
    kernel: ScheduleKernel, models: tuple[CostModel, ...]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[bool, ...]]:
    """Shared batch core: (makespan, iteration, busy, fast-path hints)."""
    k_total = len(models)
    tables = [kernel.send_tables(cm) for cm in models]
    contended = [
        bool(occ.size) and bool((occ > 0.0).any()) for _, occ, _ in tables
    ]

    makespan = np.zeros(k_total)
    iteration = np.zeros(k_total)
    busy = np.zeros((k_total, kernel.num_workers))
    #: Per-row wire starts (contended rows only), for the NIC intervals
    #: the finalizer's collective-contention rule reads.
    wire_starts: dict[int, np.ndarray] = {}

    def _fill(
        rows: list[int],
        start: "np.ndarray | list",
        end: np.ndarray,
        durations: np.ndarray | None = None,
    ) -> None:
        # ``start`` is only ever indexed per row, so the scalar branches
        # pass their Python lists straight through (row lists also index
        # faster than ndarrays in _iteration_time's genexprs).
        if durations is None:
            durations = np.stack([kernel.durations(models[k]) for k in rows])
        comp = kernel.compute_ids
        makespan_rows = (
            end[:, comp].max(axis=1) if comp.size else np.zeros(len(rows))
        )
        # Per-worker busy seconds: segment-sum compute durations by worker.
        cbw = kernel.compute_by_worker
        wptr = kernel.worker_ptr
        csum = np.zeros((len(rows), cbw.size + 1))
        np.cumsum(durations[:, cbw], axis=1, out=csum[:, 1:])
        busy_rows = csum[:, wptr[1:]] - csum[:, wptr[:-1]]
        for row, k in enumerate(rows):
            busy[k] = busy_rows[row]
            nic = None
            if contended[k]:
                nic = _nic_intervals(kernel, wire_starts[k], tables[k][1])
            iteration[k], makespan[k] = _iteration_time(
                kernel,
                models[k],
                start[row],
                end[row],
                float(makespan_rows[row]),
                nic_busy=nic,
            )

    # Per-row scalar passes when the wave sweep can't amortize: a single
    # model, or a degenerate (nearly-serial) levelization where per-wave
    # numpy dispatch dominates.
    fast_rows = [k for k in range(k_total) if not contended[k]]
    if fast_rows:
        durations = np.stack([kernel.durations(models[k]) for k in fast_rows])
        if len(fast_rows) == 1 or not kernel.wave_sweep_profitable:
            rows = [
                kernel.relax_scalar(
                    durations[j], kernel.class_delays(models[k])
                )
                for j, k in enumerate(fast_rows)
            ]
            start = [s for s, _ in rows]
            end = np.asarray([e for _, e in rows])
        else:
            delays = np.stack(
                [kernel.class_delays(models[k]) for k in fast_rows]
            )
            start, end = kernel.relax(durations, delays)
        _fill(fast_rows, start, end, durations)

    fifo_rows = [
        k
        for k in range(k_total)
        if contended[k] and _inline_fifo_ok(kernel, models[k])
    ]
    if fifo_rows:
        durations = np.stack([kernel.durations(models[k]) for k in fifo_rows])
        if len(fifo_rows) == 1 or not kernel.wave_sweep_profitable:
            starts, ends = [], []
            for j, k in enumerate(fifo_rows):
                wire_tbl, occ, _ = tables[k]
                s_row, e_row, ws = kernel.relax_scalar_fifo(
                    durations[j],
                    kernel.class_delays(models[k]),
                    wire_tbl,
                    occ,
                )
                starts.append(s_row)
                ends.append(e_row)
                wire_starts[k] = ws
            start = starts
            end = np.asarray(ends)
        else:
            delays = np.stack(
                [kernel.class_delays(models[k]) for k in fifo_rows]
            )
            wire_tbl = np.stack([tables[k][0] for k in fifo_rows])
            occ_tbl = np.stack([tables[k][1] for k in fifo_rows])
            start, end, ws = kernel.relax_fifo(
                durations, delays, wire_tbl, occ_tbl
            )
            for j, k in enumerate(fifo_rows):
                wire_starts[k] = ws[j]
        _fill(fifo_rows, start, end, durations)

    iter_rows = [
        k
        for k in range(k_total)
        if contended[k] and not _inline_fifo_ok(kernel, models[k])
    ]
    if iter_rows:
        if len(iter_rows) == 1 or not kernel.wave_sweep_profitable:
            starts, ends = [], []
            for k in iter_rows:
                _, occ, chan = tables[k]
                s_row, e_row, wire, _ = _solve_scalar(
                    kernel, models[k], occ, chan, blocking_sync=False
                )
                starts.append(s_row)
                ends.append(e_row)
                wire_starts[k] = wire
            start = np.asarray(starts)
            end = np.asarray(ends)
        else:
            start, end, wires = _relax_contended_batch(
                kernel,
                [models[k] for k in iter_rows],
                [tables[k] for k in iter_rows],
            )
            for j, k in enumerate(iter_rows):
                wire_starts[k] = wires[j]
        _fill(iter_rows, start, end)

    return makespan, iteration, busy, tuple(not c for c in contended)


def _relax_contended_batch(
    kernel: ScheduleKernel,
    models: Sequence[CostModel],
    tables: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wave-vectorized fixed point over ``K`` contended rows at once.

    Each sweep relaxes every row in one wave pass (per-row edge-delay
    matrices carry the queueing delays); serialization runs per row
    between sweeps. Iterates until every row's delays are exactly stable
    — converged rows are idempotent under further sweeps, so a shared
    iteration count is safe.
    """
    k_total = len(models)
    durations = np.stack([kernel.durations(m) for m in models])
    base_edges = np.stack(
        [kernel.class_delays(m)[kernel.edge_cls] for m in models]
    )
    tr_pos = kernel.tr_edge_pos
    tr_send = kernel.tr_edge_send
    n_send = len(kernel.send_oid)
    extras = np.zeros((k_total, n_send))
    for _ in range(MAX_RELAXATION_SWEEPS):
        edge_delays = base_edges.copy()
        edge_delays[:, tr_pos] += extras[:, tr_send]
        start, end = kernel.relax(durations, edge_delays=edge_delays)
        send_end = end[:, kernel.send_oid]
        wire = np.stack(
            [
                _serialize_channels(
                    kernel, send_end[k], tables[k][1], tables[k][2]
                )
                for k in range(k_total)
            ]
        )
        new_extras = wire - send_end
        if np.array_equal(new_extras, extras):
            return start, end, wire
        extras = new_extras
    raise KernelConvergenceError(
        f"batched fixed-point relaxation did not converge within "
        f"{MAX_RELAXATION_SWEEPS} sweeps ({kernel.total} ops x "
        f"{k_total} models)"
    )


def _nic_intervals(
    kernel: ScheduleKernel, wire_start: np.ndarray, occupancy: np.ndarray
) -> dict[int, tuple[list[float], list[float]]]:
    """Merged per-worker interface busy intervals from one row's transfers.

    Sorted and coalesced so :func:`_clear_sorted` can binary-search them —
    the engine's linear rescans are O(groups x transfers), which dominates
    for per-micro-batch synchronization (pipedream-family schedules carry
    hundreds of groups). Host transfers ride PCIe, not the NIC, so they
    never appear here (the engine's ``nic_busy`` applies the same rule).
    """
    busy = np.flatnonzero((occupancy > 0.0) & (kernel.send_host_dir < 0))
    merged: dict[int, tuple[list[float], list[float]]] = {}
    if not busy.size:
        return merged
    s_one = wire_start[busy]
    e_one = s_one + occupancy[busy]
    # Each transfer occupies both endpoints' interfaces.
    workers = np.concatenate(
        [kernel.send_worker[busy], kernel.send_dst_w[busy]]
    )
    starts = np.concatenate([s_one, s_one])
    ends = np.concatenate([e_one, e_one])
    order = np.lexsort((starts, workers))
    workers = workers[order]
    starts = starts[order]
    ends = ends[order]
    bounds = np.concatenate(
        [[0], np.flatnonzero(np.diff(workers)) + 1, [len(workers)]]
    )
    for i in range(len(bounds) - 1):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        s = starts[lo:hi]
        e = ends[lo:hi]
        # Coalesce: an interval starting at or before the running max end
        # joins the current merged run (closed intervals, touching merges).
        run_end = np.maximum.accumulate(e)
        head = np.empty(hi - lo, dtype=bool)
        head[0] = True
        head[1:] = s[1:] > run_end[:-1]
        first = np.flatnonzero(head)
        merged[int(workers[lo])] = (
            s[first].tolist(),
            np.maximum.reduceat(e, first).tolist(),
        )
    return merged


def _clear_sorted(
    start: float,
    workers,
    nic: dict[int, tuple[list[float], list[float]]],
) -> float:
    """:func:`repro.sim.engine._clear_of_transfers` over merged intervals.

    Both compute the least time >= ``start`` not covered by the union of
    the members' busy intervals (the fixed point is unique, so the scan
    order cannot matter); this one binary-searches each worker's merged
    list instead of rescanning every interval per round.
    """
    moved = True
    while moved:
        moved = False
        for w in workers:
            iv = nic.get(w)
            if iv is None:
                continue
            starts, ends = iv
            i = bisect_right(starts, start) - 1
            if i >= 0 and start < ends[i]:
                start = ends[i]
                moved = True
    return start


def _iteration_time(
    kernel: ScheduleKernel,
    cost_model: CostModel,
    start: np.ndarray,
    end: np.ndarray,
    compute_makespan: float,
    *,
    nic_busy: dict[int, tuple[list[float], list[float]]] | None = None,
) -> tuple[float, float]:
    """(iteration time, compute makespan): the finalizer's collective rules.

    Replicates ``_finalize``'s non-blocking path on arrays — collectives
    sharing a worker are serviced serially in ready-time order, each one
    pushed past in-flight transfer occupancy on its members' interfaces
    (``nic_busy``, present for contended rows), and the overlap-slowdown
    penalty extends worker finish times (and with them the compute
    makespan) in the same collective order.
    """
    dense = kernel.dense
    pending = []
    ar_cache: dict[tuple, float] = {}
    for group_key, members in dense.sync_group_members.items():
        stage, micro_batches = group_key
        workers = tuple(w for w, _ in members)
        ready = max(start[dense_id] for dense_id, _ in _member_ids(dense, members))
        ckey = (stage, workers)
        cost = ar_cache.get(ckey)
        if cost is None:
            cost = cost_model.allreduce_time(stage, workers)
            ar_cache[ckey] = cost
        pending.append((ready, stage, micro_batches, workers, cost))
    pending.sort(key=lambda t: (t[0], t[1], t[2]))

    iteration = compute_makespan
    link_free: dict[int, float] = {}
    spans: list[tuple[float, float, tuple[int, ...]]] = []
    for ready, _stage, _mbs, workers, cost in pending:
        begin = ready
        for w in workers:
            free = link_free.get(w, 0.0)
            if free > begin:
                begin = free
        if nic_busy:
            begin = _clear_sorted(begin, workers, nic_busy)
        finish = begin + cost
        for w in workers:
            link_free[w] = finish
        spans.append((begin, finish, workers))
        if finish > iteration:
            iteration = finish

    if cost_model.sync_overlap_slowdown > 0 and spans:
        worker_end = _worker_compute_end(kernel, end)
        for begin, finish, workers in spans:
            for w in workers:
                overlap = max(0.0, min(finish, worker_end[w]) - begin)
                worker_end[w] += cost_model.sync_overlap_slowdown * overlap
        slowed = max(worker_end) if worker_end else 0.0
        compute_makespan = max(compute_makespan, slowed)
        iteration = max(iteration, compute_makespan)
    return iteration, compute_makespan


def _member_ids(dense, members):
    """Dense ids of a sync group's member ops (paired with the worker)."""
    for worker, op in members:
        yield dense.id_of[op.key()], worker


def _worker_compute_end(kernel: ScheduleKernel, end: np.ndarray) -> list[float]:
    """Last compute completion per worker from one kernel row."""
    worker_end = [0.0] * kernel.num_workers
    cbw = kernel.compute_by_worker
    wptr = kernel.worker_ptr
    for w in range(kernel.num_workers):
        seg = cbw[wptr[w] : wptr[w + 1]]
        if seg.size:
            worker_end[w] = float(end[seg].max())
    return worker_end
