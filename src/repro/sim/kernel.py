"""Array-backed simulation kernel for the contention-free fast path.

The event-queue engine (:mod:`repro.sim.engine`) exists because *lowered*
schedules need it: explicit transfers queue FIFO on link channels, contend
with collectives, and those interactions are inherently event-driven. But
the two workloads that dominate planner and experiment sweeps — implicit
schedules (any cost model) and lowered schedules on contention-free links
(zero channel occupancy, i.e. ``beta = 0``) — have no contention at all.
Their timing is a pure longest-path computation over the dependency DAG
plus each worker's program order:

    ``start(op) = max over incoming edges of (end(src) + delay(edge))``

with worker order expressed as just another (zero-delay) edge. This module
evaluates that recurrence over flat numpy-backed arrays instead of a heap
of Python events:

* :class:`ScheduleKernel` — the cost-model-independent array form of a
  dependency graph: a numpy structured op table (kind / worker / shape
  class / wave), flattened edge arrays (including the worker-order
  chains), a wave levelization of the combined DAG, and `reduceat`
  segment offsets. Built once per graph and cached on it, next to the
  engine's dense form.
* :func:`simulate_fast` — drop-in :func:`~repro.sim.engine.simulate` for a
  single cost model: a single Python pass over the precomputed topological
  order (no heap, no readiness bookkeeping), ~5-15x the event engine,
  falling back to the event engine whenever the fast path does not apply
  (blocking collectives, or a lowered schedule with nonzero occupancy).
* :func:`simulate_batch` — evaluates *many* cost models against one cached
  kernel in one wave-vectorized numpy sweep: durations and edge delays
  become ``(K, n)`` arrays and every wave relaxes all ``K`` models at
  once. This is what makes planner grids cheap — ranking survivors that
  share a schedule costs one kernel plus ``K`` rows of arrays.

Both paths end in the engine's own ``_finalize`` semantics for collective
resolution and overlap accounting, so results match the event engine to
floating-point equality (the differential suite asserts 1e-9) — the
kernel is a faster evaluator of the same model, never a second model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.schedules.dependencies import DependencyGraph, build_dependency_graph
from repro.schedules.ir import Operation, Schedule
from repro.sim.cost import CostModel
from repro.sim.engine import (
    _ALLREDUCE,
    _PLAIN,
    _RECV,
    _SEND,
    SimulationResult,
    TimedOp,
    TransferRecord,
    _dense_of,
    _finalize,
    simulate,
)

#: Structured layout of the per-operation table. ``shape`` indexes the
#: kernel's duration-class table (ops sharing a shape share a duration
#: under every cost model); ``wave`` is the op's level in the combined
#: dependency-plus-program-order DAG.
OP_DTYPE = np.dtype(
    [
        ("kind", np.int8),
        ("worker", np.int32),
        ("shape", np.int32),
        ("wave", np.int32),
    ]
)


class ScheduleKernel:
    """Cost-model-independent array form of one dependency graph.

    Parallel arrays, all indexed by the engine's dense op ids:

    ``ops``
        The :data:`OP_DTYPE` structured table.
    ``edge_src`` / ``edge_dst`` / ``edge_cls``
        The combined edge list — worker-order chains, local dependency
        edges, implicit cross-worker p2p edges, and lowered ``SEND → RECV``
        wire edges — sorted by the destination's topological position.
        ``edge_cls`` indexes the delay-class table (class 0 = no delay).
    ``order``
        Op ids in topological order (wave-major, id-minor).

    The wave/segment offset arrays (``wave_op_ptr``, ``wave_edge_ptr``,
    ``red_off``, ``red_dst``, ``wave_red_ptr``, ``inc_ptr``) drive the two
    relaxation strategies; see :meth:`relax_scalar` and :meth:`relax`.
    """

    def __init__(self, graph: DependencyGraph):
        dense = _dense_of(graph)
        self.dense = dense
        total = dense.total
        self.total = total

        # ---- shape classes (duration memoization across cost models) ----
        shape_id: dict[tuple, int] = {}
        self.shape_reps: list[tuple[int, Operation]] = []
        op_shape = np.zeros(total, dtype=np.int32)
        for oid, op in enumerate(dense.ops_flat):
            shape = dense.shape[oid]
            sid = shape_id.get(shape)
            if sid is None:
                sid = len(self.shape_reps)
                shape_id[shape] = sid
                self.shape_reps.append((dense.kind_code[oid], op))
            op_shape[oid] = sid

        # ---- combined edge list -----------------------------------------
        # Delay classes: distinct (src_worker, dst_worker, payload_units)
        # triples actually present on delay-carrying edges. Class 0 is the
        # zero-delay class shared by program-order and local edges.
        cls_id: dict[tuple[int, int, float], int] = {}
        self.delay_classes: list[tuple[int, int, float]] = []

        def _cls(src_w: int, dst_w: int, units: float) -> int:
            key = (src_w, dst_w, units)
            cid = cls_id.get(key)
            if cid is None:
                cid = len(self.delay_classes) + 1
                cls_id[key] = cid
                self.delay_classes.append(key)
            return cid

        esrc: list[int] = []
        edst: list[int] = []
        ecls: list[int] = []
        op_worker = dense.op_worker
        for ids in dense.row_ids:
            for a, b in zip(ids, ids[1:]):
                esrc.append(a)
                edst.append(b)
                ecls.append(0)
        #: SEND op id -> delay class of its wire edge (for transfer records
        #: and the occupancy eligibility check).
        self.send_cls: dict[int, int] = {}
        for src in range(total):
            for dst in dense.out_local[src]:
                esrc.append(src)
                edst.append(dst)
                ecls.append(0)
            for dst, src_w, dst_w, units in dense.out_remote[src]:
                esrc.append(src)
                edst.append(dst)
                ecls.append(_cls(src_w, dst_w, units))
            recv = dense.transfer_out[src]
            if recv >= 0:
                dst_w, units = dense.send_info[src]
                cid = _cls(op_worker[src], dst_w, units)
                self.send_cls[src] = cid
                esrc.append(src)
                edst.append(recv)
                ecls.append(cid)
        num_edges = len(esrc)

        # ---- wave levelization (Kahn over the combined DAG) -------------
        indeg = [0] * total
        out: list[list[int]] = [[] for _ in range(total)]
        for e in range(num_edges):
            indeg[edst[e]] += 1
            out[esrc[e]].append(edst[e])
        wave = [0] * total
        frontier = [o for o in range(total) if indeg[o] == 0]
        level = 0
        seen = 0
        while frontier:
            nxt: list[int] = []
            for o in frontier:
                wave[o] = level
                seen += 1
                for d in out[o]:
                    indeg[d] -= 1
                    if indeg[d] == 0:
                        nxt.append(d)
            frontier = nxt
            level += 1
        if seen != total:
            # The validator guarantees acyclicity for every registered
            # scheme; reaching this means a hand-built schedule has a
            # dependency cycle.
            from repro.common.errors import ScheduleError

            raise ScheduleError(
                f"kernel levelization stuck: {total - seen} ops sit on a "
                f"dependency cycle"
            )
        self.num_waves = level

        order = sorted(range(total), key=lambda o: (wave[o], o))
        pos_of = [0] * total
        for pos, oid in enumerate(order):
            pos_of[oid] = pos

        # ---- structured op table ----------------------------------------
        ops = np.zeros(total, dtype=OP_DTYPE)
        ops["kind"] = dense.kind_code
        ops["worker"] = op_worker
        ops["shape"] = op_shape
        ops["wave"] = wave
        self.ops = ops

        # Edges sorted by the destination's topological position, so one
        # sorted array serves both the scalar pass (per-op CSR slices) and
        # the wave pass (per-wave slices + reduceat segments).
        eorder = sorted(range(num_edges), key=lambda e: pos_of[edst[e]])
        self.edge_src = np.array([esrc[e] for e in eorder], dtype=np.int64)
        self.edge_dst = np.array([edst[e] for e in eorder], dtype=np.int64)
        self.edge_cls = np.array([ecls[e] for e in eorder], dtype=np.int64)
        # Scalar-path views (python lists index ~3x faster than ndarrays
        # in a tight interpreter loop).
        self._edge_src_list = self.edge_src.tolist()
        self._edge_cls_list = self.edge_cls.tolist()
        self._order_list = order
        inc_ptr = [0] * (total + 1)
        for e in range(num_edges):
            inc_ptr[pos_of[edst[e]] + 1] += 1
        for i in range(total):
            inc_ptr[i + 1] += inc_ptr[i]
        self._inc_ptr = inc_ptr

        self.order = np.array(order, dtype=np.int64)
        wave_of_op = ops["wave"].astype(np.int64)
        waves = np.arange(self.num_waves + 1)
        self.wave_op_ptr = np.searchsorted(wave_of_op[self.order], waves)
        edge_wave = wave_of_op[self.edge_dst]
        self.wave_edge_ptr = np.searchsorted(edge_wave, waves)
        if num_edges:
            boundary = np.empty(num_edges, dtype=bool)
            boundary[0] = True
            boundary[1:] = self.edge_dst[1:] != self.edge_dst[:-1]
            self.red_off = np.flatnonzero(boundary)
            self.red_dst = self.edge_dst[self.red_off]
            self.wave_red_ptr = np.searchsorted(edge_wave[self.red_off], waves)
        else:  # pragma: no cover - every schedule has worker-order edges
            self.red_off = np.zeros(0, dtype=np.int64)
            self.red_dst = np.zeros(0, dtype=np.int64)
            self.wave_red_ptr = np.zeros(self.num_waves + 1, dtype=np.int64)

        # ---- derived index sets ------------------------------------------
        kind = ops["kind"]
        self.compute_ids = np.flatnonzero(kind == _PLAIN)
        comp_worker = ops["worker"][self.compute_ids]
        by_worker = np.argsort(comp_worker, kind="stable")
        self.compute_by_worker = self.compute_ids[by_worker]
        self.num_workers = graph.schedule.num_workers
        self.worker_ptr = np.searchsorted(
            comp_worker[by_worker], np.arange(self.num_workers + 1)
        )
        self.send_ids = sorted(self.send_cls)

    # ------------------------------------------------------------ per-model
    def durations(self, cost_model: CostModel) -> np.ndarray:
        """Per-op durations under ``cost_model`` (via the shape classes)."""
        shape_durs = np.empty(len(self.shape_reps))
        for sid, (code, rep) in enumerate(self.shape_reps):
            if code == _ALLREDUCE:
                shape_durs[sid] = cost_model.sync_launch_overhead
            elif code == _SEND or code == _RECV:
                shape_durs[sid] = cost_model.comm_launch_overhead
            else:
                shape_durs[sid] = cost_model.compute_time(rep)
        return shape_durs[self.ops["shape"]]

    def class_delays(self, cost_model: CostModel) -> np.ndarray:
        """Edge-delay table under ``cost_model`` (class 0 stays zero)."""
        delays = np.zeros(len(self.delay_classes) + 1)
        for cid, (src_w, dst_w, units) in enumerate(self.delay_classes, 1):
            delays[cid] = cost_model.p2p_time(src_w, dst_w, units)
        return delays

    def max_send_occupancy(self, cost_model: CostModel) -> float:
        """Largest link occupancy any SEND would claim under this model."""
        dense = self.dense
        worst = 0.0
        for oid in self.send_ids:
            dst_w, units = dense.send_info[oid]
            occ = cost_model.p2p_occupancy(dense.op_worker[oid], dst_w, units)
            if occ > worst:
                worst = occ
        return worst

    # ----------------------------------------------------------- relaxation
    def relax_scalar(
        self, durations: np.ndarray, delays: np.ndarray
    ) -> tuple[list[float], list[float]]:
        """Single-model longest-path pass; returns (start, end) lists."""
        dur = durations.tolist()
        dly = delays.tolist()
        esrc = self._edge_src_list
        ecls = self._edge_cls_list
        inc_ptr = self._inc_ptr
        start = [0.0] * self.total
        end = [0.0] * self.total
        for pos, oid in enumerate(self._order_list):
            ready = 0.0
            for e in range(inc_ptr[pos], inc_ptr[pos + 1]):
                cls = ecls[e]
                t = end[esrc[e]] + dly[cls] if cls else end[esrc[e]]
                if t > ready:
                    ready = t
            start[oid] = ready
            end[oid] = ready + dur[oid]
        return start, end

    def relax(
        self, durations: np.ndarray, delays: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched longest-path pass over ``K`` models at once.

        ``durations`` is ``(K, total)`` and ``delays`` ``(K, classes+1)``;
        returns ``(start, end)`` as ``(K, total)`` arrays. Each wave is a
        handful of vectorized operations regardless of ``K``, which is
        where the batch API's throughput comes from.
        """
        k = durations.shape[0]
        start = np.zeros((k, self.total))
        end = np.zeros((k, self.total))
        edge_delay = delays[:, self.edge_cls]
        esrc = self.edge_src
        order = self.order
        wop = self.wave_op_ptr
        wep = self.wave_edge_ptr
        wrp = self.wave_red_ptr
        red_off = self.red_off
        red_dst = self.red_dst
        for w in range(self.num_waves):
            lo, hi = wep[w], wep[w + 1]
            if lo < hi:
                contrib = end[:, esrc[lo:hi]] + edge_delay[:, lo:hi]
                segments = red_off[wrp[w] : wrp[w + 1]] - lo
                start[:, red_dst[wrp[w] : wrp[w + 1]]] = np.maximum.reduceat(
                    contrib, segments, axis=1
                )
            ops = order[wop[w] : wop[w + 1]]
            end[:, ops] = start[:, ops] + durations[:, ops]
        return start, end


def kernel_of(graph: DependencyGraph) -> ScheduleKernel:
    """The graph's array kernel, built once and cached on the graph."""
    kernel = getattr(graph, "_kernel", None)
    if kernel is None:
        kernel = ScheduleKernel(graph)
        graph._kernel = kernel  # type: ignore[attr-defined]
    return kernel


def fast_path_supported(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    blocking_sync: bool = False,
    graph: DependencyGraph | None = None,
) -> bool:
    """True when the array kernel reproduces the event engine exactly.

    The fast path covers implicit-communication schedules under any cost
    model (their p2p messages are pure consumer-side delays) and lowered
    schedules whose transfers claim zero link occupancy (``beta = 0`` —
    with nothing occupying a channel, FIFO queueing and collective
    contention can never fire). Blocking collectives synchronize workers
    mid-schedule, which the longest-path recurrence does not model.
    """
    if blocking_sync:
        return False
    if not schedule.lowered:
        return True
    if graph is None:
        graph = build_dependency_graph(schedule)
    return kernel_of(graph).max_send_occupancy(cost_model) == 0.0


def simulate_fast(
    schedule: Schedule,
    cost_model: CostModel,
    *,
    graph: DependencyGraph | None = None,
    blocking_sync: bool = False,
) -> SimulationResult:
    """Array-kernel :func:`~repro.sim.engine.simulate`, engine fallback.

    Produces a full :class:`~repro.sim.engine.SimulationResult` (timed
    ops, transfers, collectives) identical to the event engine's. When
    :func:`fast_path_supported` is false the call transparently runs the
    event engine instead, so callers can use ``simulate_fast``
    unconditionally.
    """
    if graph is None:
        graph = build_dependency_graph(schedule)
    if not fast_path_supported(
        schedule, cost_model, blocking_sync=blocking_sync, graph=graph
    ):
        return simulate(schedule, cost_model, graph=graph, blocking_sync=blocking_sync)
    kernel = kernel_of(graph)
    start, end = kernel.relax_scalar(
        kernel.durations(cost_model), kernel.class_delays(cost_model)
    )
    return _assemble_result(kernel, schedule, cost_model, start, end)


def _assemble_result(
    kernel: ScheduleKernel,
    schedule: Schedule,
    cost_model: CostModel,
    start: Sequence[float],
    end: Sequence[float],
) -> SimulationResult:
    """Build the full result from kernel times via the engine's finalizer."""
    dense = kernel.dense
    ops_flat = dense.ops_flat
    op_worker = dense.op_worker
    timed = {}
    for oid, op in enumerate(ops_flat):
        timed[op.key()] = TimedOp(op, op_worker[oid], start[oid], end[oid])

    sync_launches: dict[tuple, dict[int, float]] = {}
    for group_key, members in dense.sync_group_members.items():
        launches = {}
        for worker, op in members:
            launches[worker] = timed[op.key()].start
        sync_launches[group_key] = launches

    transfers: list[TransferRecord] = []
    for oid in kernel.send_ids:
        op = ops_flat[oid]
        dst_w, units = dense.send_info[oid]
        src_w = op_worker[oid]
        wire_start = end[oid]
        transfers.append(
            TransferRecord(
                src_worker=src_w,
                dst_worker=dst_w,
                payload=op.payload,
                micro_batches=op.micro_batches,
                part=op.part,
                start=wire_start,
                end=wire_start + cost_model.p2p_time(src_w, dst_w, units),
                occupancy=0.0,
                channel=cost_model.p2p_channel(src_w, dst_w),
            )
        )

    compute_makespan = 0.0
    for oid in kernel.compute_ids.tolist():
        if end[oid] > compute_makespan:
            compute_makespan = end[oid]
    return _finalize(
        schedule,
        cost_model,
        timed,
        dense.sync_group_members,
        sync_launches,
        transfers,
        blocking_sync=False,
        compute_makespan=compute_makespan,
    )


@dataclass(frozen=True)
class BatchResult:
    """Per-model iteration quantities from one :func:`simulate_batch`.

    All arrays are indexed by the position of the cost model in the input
    sequence. ``used_fast_path[k]`` is False for models that fell back to
    the event engine (lowered schedule with nonzero occupancy) — their
    rows are exact event-engine results, so the arrays stay uniform.
    """

    schedule: Schedule
    cost_models: tuple[CostModel, ...]
    compute_makespan: np.ndarray
    iteration_time: np.ndarray
    worker_busy: np.ndarray
    used_fast_path: tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.cost_models)

    def bubble_ratio(self, k: int) -> float:
        """Mean idle fraction against the compute makespan (sync schemes)."""
        makespan = float(self.compute_makespan[k])
        if makespan <= 0:
            return 0.0
        ratios = [
            max(0.0, 1.0 - busy / makespan)
            for busy in self.worker_busy[k].tolist()
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def throughput(self, k: int, *, micro_batch: int, width: int = 1) -> float:
        """Samples/second under model ``k`` (mirrors the metrics module)."""
        iteration = float(self.iteration_time[k])
        if iteration <= 0:
            return float("inf")
        samples = self.schedule.num_micro_batches * micro_batch * width
        return samples / iteration


def simulate_batch(
    schedule: Schedule,
    cost_models: Sequence[CostModel],
    *,
    graph: DependencyGraph | None = None,
) -> BatchResult:
    """Evaluate many cost models against one cached dense schedule.

    The batch path never materializes per-op ``TimedOp`` dictionaries —
    it returns exactly the iteration-level quantities ranking needs
    (makespan, iteration time, per-worker busy seconds), computed for all
    eligible models in one wave-vectorized relaxation. Models the fast
    path cannot represent are evaluated with the event engine and their
    rows filled from the full result, so every row is engine-exact.
    """
    if not cost_models:
        raise ValueError("simulate_batch needs at least one cost model")
    if graph is None:
        graph = build_dependency_graph(schedule)
    kernel = kernel_of(graph)
    models = tuple(cost_models)
    k_total = len(models)
    eligible = [fast_path_supported(schedule, cm, graph=graph) for cm in models]

    makespan = np.zeros(k_total)
    iteration = np.zeros(k_total)
    busy = np.zeros((k_total, kernel.num_workers))

    fast_rows = [k for k in range(k_total) if eligible[k]]
    if fast_rows:
        durations = np.stack([kernel.durations(models[k]) for k in fast_rows])
        delays = np.stack([kernel.class_delays(models[k]) for k in fast_rows])
        if len(fast_rows) == 1:
            # Single model: the scalar pass beats the wave sweep (per-wave
            # numpy dispatch only amortizes across several models).
            s_row, e_row = kernel.relax_scalar(durations[0], delays[0])
            start = np.asarray([s_row])
            end = np.asarray([e_row])
        else:
            start, end = kernel.relax(durations, delays)
        comp = kernel.compute_ids
        makespan_rows = (
            end[:, comp].max(axis=1) if comp.size else np.zeros(len(fast_rows))
        )
        # Per-worker busy seconds: segment-sum compute durations by worker.
        cbw = kernel.compute_by_worker
        wptr = kernel.worker_ptr
        csum = np.zeros((len(fast_rows), cbw.size + 1))
        np.cumsum(durations[:, cbw], axis=1, out=csum[:, 1:])
        busy_rows = csum[:, wptr[1:]] - csum[:, wptr[:-1]]
        for row, k in enumerate(fast_rows):
            busy[k] = busy_rows[row]
            iteration[k], makespan[k] = _iteration_time(
                kernel, models[k], start[row], end[row], float(makespan_rows[row])
            )

    for k in range(k_total):
        if eligible[k]:
            continue
        result = simulate(schedule, models[k], graph=graph)
        makespan[k] = result.compute_makespan
        iteration[k] = result.iteration_time
        busy[k] = [result.busy_time(w) for w in range(kernel.num_workers)]

    return BatchResult(
        schedule=schedule,
        cost_models=models,
        compute_makespan=makespan,
        iteration_time=iteration,
        worker_busy=busy,
        used_fast_path=tuple(eligible),
    )


def _iteration_time(
    kernel: ScheduleKernel,
    cost_model: CostModel,
    start: np.ndarray,
    end: np.ndarray,
    compute_makespan: float,
) -> tuple[float, float]:
    """(iteration time, compute makespan): the finalizer's collective rules.

    Replicates ``_finalize``'s non-blocking path on arrays — collectives
    sharing a worker are serviced serially in ready-time order, and the
    overlap-slowdown penalty extends worker finish times (and with them
    the compute makespan) in the same collective order. Transfers carry
    zero occupancy on the fast path, so the transfer-contention clause can
    never move a collective's start.
    """
    dense = kernel.dense
    pending = []
    for group_key, members in dense.sync_group_members.items():
        stage, micro_batches = group_key
        workers = tuple(w for w, _ in members)
        ready = max(start[dense_id] for dense_id, _ in _member_ids(dense, members))
        cost = cost_model.allreduce_time(stage, workers)
        pending.append((ready, stage, micro_batches, workers, cost))
    pending.sort(key=lambda t: (t[0], t[1], t[2]))

    iteration = compute_makespan
    link_free: dict[int, float] = {}
    spans: list[tuple[float, float, tuple[int, ...]]] = []
    for ready, _stage, _mbs, workers, cost in pending:
        begin = ready
        for w in workers:
            free = link_free.get(w, 0.0)
            if free > begin:
                begin = free
        finish = begin + cost
        for w in workers:
            link_free[w] = finish
        spans.append((begin, finish, workers))
        if finish > iteration:
            iteration = finish

    if cost_model.sync_overlap_slowdown > 0 and spans:
        worker_end = _worker_compute_end(kernel, end)
        for begin, finish, workers in spans:
            for w in workers:
                overlap = max(0.0, min(finish, worker_end[w]) - begin)
                worker_end[w] += cost_model.sync_overlap_slowdown * overlap
        slowed = max(worker_end) if worker_end else 0.0
        compute_makespan = max(compute_makespan, slowed)
        iteration = max(iteration, compute_makespan)
    return iteration, compute_makespan


def _member_ids(dense, members):
    """Dense ids of a sync group's member ops (paired with the worker)."""
    for worker, op in members:
        yield dense.id_of[op.key()], worker


def _worker_compute_end(kernel: ScheduleKernel, end: np.ndarray) -> list[float]:
    """Last compute completion per worker from one kernel row."""
    worker_end = [0.0] * kernel.num_workers
    cbw = kernel.compute_by_worker
    wptr = kernel.worker_ptr
    for w in range(kernel.num_workers):
        seg = cbw[wptr[w] : wptr[w + 1]]
        if seg.size:
            worker_end[w] = float(end[seg].max())
    return worker_end
