"""Cost model: maps schedule operations to simulated durations.

This is the bridge between a workload/machine pair and the discrete-event
engine. The paper's conventions (§3.4):

* ``F_t`` — forward time of one micro-batch on one stage, measured by micro
  benchmark (here: derived analytically in :mod:`repro.perf.calibration`);
* backward = 2x forward, or 3x with activation recomputation;
* p2p activation/gradient messages follow the alpha-beta model;
* allreduce follows Rabenseifner's cost with group size = stage replicas x W.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.schedules.ir import Operation, OpKind
from repro.sim.collectives import allreduce_cost
from repro.sim.network import (
    FlatTopology,
    HierarchicalTopology,
    HostChannel,
    LinkSpec,
)

Topology = FlatTopology | HierarchicalTopology


@dataclass(frozen=True)
class CostModel:
    """Durations and communication costs for one simulated configuration.

    Attributes
    ----------
    forward_time:
        ``F_t`` — seconds for one micro-batch forward on one stage.
    backward_ratio / recompute_backward_ratio:
        ``B_t = ratio * F_t`` without / with activation recomputation.
    backward_input_ratio / backward_weight_ratio:
        ``b_t``/``w_t`` — split-backward (zero-bubble) durations as
        multiples of ``F_t``. ``None`` (default) halves ``backward_ratio``
        between the two, so a fused backward always costs exactly
        ``b + w`` and splitting is cost-neutral; setting them explicitly
        models measured asymmetry (the fused ``BACKWARD`` then costs their
        sum). Rematerialization under recomputation is charged to the
        input-gradient half.
    stage_scale:
        Optional per-stage compute multiplier (e.g. the embedding-heavy
        first stage of a language model); ``None`` means balanced stages.
    activation_message_bytes:
        Per-micro-batch payload of the p2p activation (and input-gradient)
        message between consecutive stages.
    topology:
        Network model for p2p and collectives; ``None`` disables
        communication costs entirely (pure-compute simulation).
    stage_grad_bytes:
        Per-stage gradient bytes synchronized by the stage's allreduce.
        A scalar means all stages equal.
    data_parallel_width:
        ``W`` — multiplies each stage's allreduce group size (§3.3: after
        combining with data parallelism the local gradient size does not
        change but the number of participants grows by ``W``).
    allreduce_algorithm:
        ``rabenseifner`` (paper default), ``ring``, or ``recursive_doubling``.
    sync_launch_overhead:
        Worker-blocking seconds consumed by posting a non-blocking
        allreduce (initialization / progression threading, §3.2 — the
        reason eager-sync-opt skips middle stages).
    comm_launch_overhead:
        Worker-blocking seconds consumed by posting an explicit ``SEND``
        or ``RECV`` op of a lowered schedule (descriptor setup, the CPU
        side of an isend/irecv). The transfer itself runs on the link, not
        the worker; 0.0 (default) makes lowering timing-neutral under
        contention-free links.
    """

    forward_time: float = 1.0
    backward_ratio: float = 2.0
    recompute_backward_ratio: float = 3.0
    backward_input_ratio: float | None = None
    backward_weight_ratio: float | None = None
    stage_scale: tuple[float, ...] | None = None
    activation_message_bytes: float = 0.0
    topology: Topology | None = None
    stage_grad_bytes: tuple[float, ...] | float = 0.0
    data_parallel_width: int = 1
    allreduce_algorithm: str = "rabenseifner"
    sync_launch_overhead: float = 0.0
    comm_launch_overhead: float = 0.0
    #: Per-worker host↔device link used by OFFLOAD/RELOAD ops of the
    #: offload pass. ``None`` (default) makes host transfers free — the
    #: contention-free limit the offload parity tests exercise.
    host_channel: HostChannel | None = None
    #: Per-micro-batch stash payload moved by one OFFLOAD (and back by its
    #: RELOAD). ``None`` reuses ``activation_message_bytes`` — the stash of
    #: a stage is its input activation, same payload the p2p message
    #: carries.
    offload_message_bytes: float | None = None
    #: Fraction of compute slowdown while a non-blocking collective is in
    #: flight on a worker (asynchronous progression contends with compute —
    #: the §3.2 effect that makes eager middle-stage synchronization a net
    #: loss). Applied as extra time proportional to the overlapped span.
    sync_overlap_slowdown: float = 0.0

    def __post_init__(self) -> None:
        if self.forward_time <= 0:
            raise ConfigurationError("forward_time must be positive")
        if self.backward_ratio <= 0 or self.recompute_backward_ratio <= 0:
            raise ConfigurationError("backward ratios must be positive")
        for ratio in (self.backward_input_ratio, self.backward_weight_ratio):
            if ratio is not None and ratio <= 0:
                raise ConfigurationError("split-backward ratios must be positive")
        if self.data_parallel_width < 1:
            raise ConfigurationError("data_parallel_width must be >= 1")

    # ----------------------------------------------------------- constructors
    @staticmethod
    def unit() -> "CostModel":
        """F = B = 1, no communication — the Figure 3 (top) abstraction."""
        return CostModel(forward_time=1.0, backward_ratio=1.0, recompute_backward_ratio=1.0)

    @staticmethod
    def practical() -> "CostModel":
        """F = 1, B = 2 (3 with recompute), no communication — Figure 3 bottom."""
        return CostModel(forward_time=1.0)

    def with_(self, **changes: object) -> "CostModel":
        """Functional update helper."""
        return replace(self, **changes)

    # -------------------------------------------------------------- durations
    def _scale(self, stage: int) -> float:
        if self.stage_scale is None:
            return 1.0
        try:
            return self.stage_scale[stage]
        except IndexError:
            raise ConfigurationError(
                f"stage_scale has {len(self.stage_scale)} entries but stage "
                f"{stage} was simulated"
            ) from None

    # --------------------------------------------------------- split backward
    def input_grad_ratio(self) -> float:
        """``b_t / F_t`` — duration ratio of a split input-gradient op."""
        if self.backward_input_ratio is not None:
            return self.backward_input_ratio
        return self.backward_ratio / 2.0

    def weight_grad_ratio(self) -> float:
        """``w_t / F_t`` — duration ratio of a split weight-gradient op."""
        if self.backward_weight_ratio is not None:
            return self.backward_weight_ratio
        return self.backward_ratio / 2.0

    def fused_backward_ratio(self) -> float:
        """``B_t / F_t`` of the fused backward: ``b + w`` when the split is
        configured explicitly, the legacy ``backward_ratio`` otherwise."""
        if self.backward_input_ratio is None and self.backward_weight_ratio is None:
            return self.backward_ratio
        return self.input_grad_ratio() + self.weight_grad_ratio()

    def remat_ratio(self) -> float:
        """Rematerialization cost as a multiple of ``F_t``.

        The paper models a recomputed backward as 3F instead of 2F — one
        extra forward-equivalent. An explicit ``RECOMPUTE`` op (the
        recompute pass) carries exactly that difference, so flag-based and
        op-based recomputation cost the same total. Clamped at zero for
        degenerate models where the recompute ratio is not larger.
        """
        return max(0.0, self.recompute_backward_ratio - self.backward_ratio)

    def compute_time(self, op: Operation) -> float:
        """Simulated duration of a compute op (0 for ALLREDUCE).

        Flag-based recomputation adds one extra forward-equivalent
        (``recompute_backward_ratio - backward_ratio``) to the fused
        backward — or, under splitting, to the input-gradient half (the
        weight-gradient half reuses the rematerialized activations). An
        explicit ``RECOMPUTE`` op (recompute pass) carries the same
        forward-equivalent as its own duration instead, leaving the
        backward at its base ratio. Comm ops block the worker only for
        ``comm_launch_overhead`` — the transfer itself is timed by the
        engine on the link.
        """
        if op.kind is OpKind.ALLREDUCE:
            return 0.0
        if op.is_comm or op.is_host_comm:
            return self.comm_launch_overhead
        base = self.forward_time * self._scale(op.stage) * op.work_units
        if op.is_forward:
            return base
        if op.is_recompute:
            return base * self.remat_ratio()
        remat = (
            self.recompute_backward_ratio - self.backward_ratio
            if op.recompute
            else 0.0
        )
        if op.is_backward_input:
            return base * (self.input_grad_ratio() + remat)
        if op.is_backward_weight:
            return base * self.weight_grad_ratio()
        return base * (self.fused_backward_ratio() + remat)

    # ---------------------------------------------------------- communication
    def p2p_time(self, src_worker: int, dst_worker: int, payload_units: float) -> float:
        """Activation/gradient message time for ``payload_units`` micro-batches."""
        if self.topology is None or src_worker == dst_worker:
            return 0.0
        return self.topology.p2p_time(
            src_worker, dst_worker, self.activation_message_bytes * payload_units
        )

    def p2p_occupancy(
        self, src_worker: int, dst_worker: int, payload_units: float
    ) -> float:
        """Seconds a transfer holds its link channel (the bandwidth term).

        The latency term pipelines; only the serialization time
        ``beta * L`` excludes other transfers from the channel. Zero when
        communication is free or the endpoints share a worker.
        """
        if self.topology is None or src_worker == dst_worker:
            return 0.0
        return self.topology.link_of(src_worker, dst_worker).occupancy(
            self.activation_message_bytes * payload_units
        )

    def p2p_channel(self, src_worker: int, dst_worker: int) -> tuple | None:
        """Contention channel of a transfer, or None when links are free."""
        if self.topology is None or src_worker == dst_worker:
            return None
        return self.topology.channel(src_worker, dst_worker)

    # ----------------------------------------------------------- host channel
    def host_bytes(self, payload_units: float) -> float:
        """Stash bytes moved by a host transfer of ``payload_units``."""
        per_mb = (
            self.activation_message_bytes
            if self.offload_message_bytes is None
            else self.offload_message_bytes
        )
        return per_mb * payload_units

    def host_time(self, payload_units: float) -> float:
        """Host↔device copy time; 0 when no host channel is configured."""
        if self.host_channel is None:
            return 0.0
        return self.host_channel.link.time(self.host_bytes(payload_units))

    def host_occupancy(self, payload_units: float) -> float:
        """Seconds a host transfer holds its channel (bandwidth term only)."""
        if self.host_channel is None:
            return 0.0
        return self.host_channel.link.occupancy(self.host_bytes(payload_units))

    def host_channel_key(self, worker: int, direction: str) -> tuple | None:
        """Contention channel of a host transfer, or None when free.

        ``direction`` is ``"d2h"`` for an OFFLOAD's copy, ``"h2d"`` for a
        RELOAD's. The tuple matches what the array kernel decodes from its
        integer host-channel ids, so engine and kernel report identical
        :class:`TransferRecord` channels.
        """
        if self.host_channel is None:
            return None
        return self.host_channel.channel_key(worker, direction)

    def grad_bytes(self, stage: int) -> float:
        if isinstance(self.stage_grad_bytes, (int, float)):
            return float(self.stage_grad_bytes)
        return self.stage_grad_bytes[stage]

    def allreduce_time(
        self, stage: int, group_workers: Sequence[int], *, fraction: float = 1.0
    ) -> float:
        """Cost of synchronizing ``stage``'s gradients.

        ``group_workers`` are the workers holding a replica of the stage
        within one pipeline group; the effective group size is
        ``len(group_workers) * W``. ``fraction`` scales the payload for
        per-micro-batch synchronization (PipeDream syncs every backward, so
        each collective still moves the full gradient — callers pass 1.0 —
        but the hook exists for accumulation-fraction experiments).
        """
        group_size = len(set(group_workers)) * self.data_parallel_width
        if group_size <= 1:
            return 0.0
        if self.topology is None:
            link = LinkSpec(0.0, 0.0)
        else:
            link = self.topology.group_link(tuple(group_workers))
        return allreduce_cost(
            self.allreduce_algorithm,
            link.alpha,
            link.beta,
            self.grad_bytes(stage) * fraction,
            group_size,
        )
