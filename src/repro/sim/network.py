"""Alpha-beta network models and topologies.

The paper's performance model (§3.4) uses the classic latency-bandwidth
(alpha-beta) cost: sending ``L`` bytes costs ``alpha + beta * L`` seconds.
We provide a flat topology (every worker pair connected by the same link —
a reasonable model of Piz Daint's Aries dragonfly, which the paper also
treats as "bidirectional and direct point-to-point communication between
compute nodes") and a hierarchical topology for the V100 cluster
(NVLink inside a server, InfiniBand between servers, Figure 16).

Channels and contention
-----------------------
For *lowered* schedules (explicit SEND/RECV ops) the event-queue simulator
treats each link as a serially reusable **channel**: a transfer occupies
its channel for the bandwidth term ``beta * L`` (the serialization time on
the wire) while the latency term ``alpha`` pipelines — two messages can be
in flight, but their bytes cannot interleave. ``duplex`` selects the
channel granularity:

* ``"full"`` (default) — each *direction* of a worker pair is its own
  channel; ``a -> b`` and ``b -> a`` never contend (Aries/NVLink/IB are
  full-duplex).
* ``"half"`` — both directions share one channel, modelling half-duplex
  interconnects or a shared bus.

With ``beta = 0`` (infinite bandwidth) occupancy vanishes and the lowered
simulation reproduces the implicit-communication timing exactly — the
contention-free limit used by the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError

#: Valid values for a topology's ``duplex`` mode.
DUPLEX_MODES = ("full", "half")


@dataclass(frozen=True)
class LinkSpec:
    """One link class in the alpha-beta model.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Transfer time per byte in seconds (i.e. 1 / bandwidth).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError(
                f"link parameters must be non-negative, got alpha={self.alpha}, "
                f"beta={self.beta}"
            )

    def time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link."""
        return self.alpha + self.beta * num_bytes

    def occupancy(self, num_bytes: float) -> float:
        """Seconds the link's channel is held: the bandwidth term only."""
        return self.beta * num_bytes

    @staticmethod
    def from_bandwidth(alpha: float, bandwidth_bytes_per_sec: float) -> "LinkSpec":
        """Build a link from a latency and a bandwidth (bytes/s)."""
        if bandwidth_bytes_per_sec <= 0:
            raise ConfigurationError("bandwidth must be positive")
        return LinkSpec(alpha=alpha, beta=1.0 / bandwidth_bytes_per_sec)


def _check_duplex(duplex: str) -> str:
    if duplex not in DUPLEX_MODES:
        raise ConfigurationError(
            f"duplex must be one of {DUPLEX_MODES}, got {duplex!r}"
        )
    return duplex


def _channel(src: int, dst: int, duplex: str) -> tuple[int, int]:
    """Contention-channel id for a ``src -> dst`` transfer."""
    if duplex == "half" and src > dst:
        return (dst, src)
    return (src, dst)


def _channel_id_array(
    src: np.ndarray, dst: np.ndarray, duplex: str, num_workers: int
) -> np.ndarray:
    """Integer-encoded contention channels for many transfers at once.

    The array form of :func:`_channel`: channel ``(a, b)`` encodes as
    ``a * num_workers + b`` (after the half-duplex canonicalization), so
    ``(id // num_workers, id % num_workers)`` recovers the tuple the
    event engine reports in its :class:`TransferRecord`\\ s.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if duplex == "half":
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        return lo * num_workers + hi
    return src * num_workers + dst


@dataclass(frozen=True)
class HostChannel:
    """One worker's host↔device copy engine (PCIe-class link).

    Activation offload (:mod:`repro.schedules.passes.offload`) moves stash
    bytes over this channel instead of the network: every worker owns a
    private host link — transfers of different workers never contend with
    each other or with p2p traffic, but two copies on the *same* worker
    serialize exactly like messages on a network link. ``duplex`` selects
    the channel granularity, mirroring topologies:

    * ``"full"`` (default) — device→host and host→device are separate DMA
      engines; an offload and a reload on one worker overlap.
    * ``"half"`` — both directions share one engine (a single copy queue).

    Channel identities live in their own namespace: the tuple form is
    ``("host", worker[, direction])`` and the integer encoding used by the
    array kernel starts at ``num_workers ** 2``, above every worker-pair
    channel id, so host and network channels never collide.
    """

    link: LinkSpec
    duplex: str = "full"

    def __post_init__(self) -> None:
        _check_duplex(self.duplex)

    @staticmethod
    def from_bandwidth(
        alpha: float, bandwidth_bytes_per_sec: float, *, duplex: str = "full"
    ) -> "HostChannel":
        """Build a host channel from a latency and a bandwidth (bytes/s)."""
        return HostChannel(
            LinkSpec.from_bandwidth(alpha, bandwidth_bytes_per_sec),
            duplex=duplex,
        )

    def channel_key(self, worker: int, direction: str) -> tuple:
        """Tuple channel identity: ``("host", w, dir)`` / ``("host", w)``.

        ``direction`` is ``"d2h"`` (offload) or ``"h2d"`` (reload). Under
        half duplex both directions collapse onto one channel, so the
        direction component is dropped.
        """
        if self.duplex == "half":
            return ("host", worker)
        return ("host", worker, direction)

    def channel_id(self, worker: int, direction_code: int, num_workers: int) -> int:
        """Integer channel id for the array kernel.

        ``direction_code`` is 0 for device→host, 1 for host→device. Ids
        are ``num_workers**2 + worker*2 + code`` (code forced to 0 under
        half duplex), disjoint from the ``src*W + dst`` network ids.
        """
        code = 0 if self.duplex == "half" else direction_code
        return num_workers * num_workers + worker * 2 + code

    def decode_channel_id(self, cid: int, num_workers: int) -> tuple:
        """Recover the tuple channel identity from an integer id."""
        rem = cid - num_workers * num_workers
        worker, code = divmod(rem, 2)
        if self.duplex == "half":
            return ("host", worker)
        return ("host", worker, "h2d" if code else "d2h")


class FlatTopology:
    """All worker pairs share one link class.

    Compares (and hashes) by value: two topologies with the same link and
    duplex mode are interchangeable, which is what lets cost models built
    from the same machine spec deduplicate in batched planning.
    """

    def __init__(self, link: LinkSpec, *, duplex: str = "full"):
        self.link = link
        self.duplex = _check_duplex(duplex)

    def _key(self) -> tuple:
        return (FlatTopology, self.link, self.duplex)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FlatTopology) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def p2p_time(self, src: int, dst: int, num_bytes: float) -> float:
        """Point-to-point message time between two workers."""
        if src == dst:
            return 0.0
        return self.link.time(num_bytes)

    def link_of(self, src: int, dst: int) -> LinkSpec:
        """The link class carrying a ``src -> dst`` transfer."""
        return self.link

    def channel(self, src: int, dst: int) -> tuple[int, int]:
        """The contention channel a ``src -> dst`` transfer occupies."""
        return _channel(src, dst, self.duplex)

    def link_table(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer ``(alpha, beta)`` arrays — :meth:`link_of` in bulk.

        The array kernel builds its per-SEND wire/occupancy tables from
        this instead of calling ``link_of`` once per transfer.
        """
        n = len(np.asarray(src))
        return (
            np.full(n, self.link.alpha),
            np.full(n, self.link.beta),
        )

    def channel_id_array(
        self, src: np.ndarray, dst: np.ndarray, num_workers: int
    ) -> np.ndarray:
        """Integer channel ids for many transfers — :meth:`channel` in bulk."""
        return _channel_id_array(src, dst, self.duplex, num_workers)

    def group_link(self, workers: tuple[int, ...]) -> LinkSpec:
        """The link class that bounds a collective over ``workers``."""
        return self.link


class HierarchicalTopology:
    """Fast intra-node links, slower inter-node links.

    Workers ``[k * gpus_per_node, (k+1) * gpus_per_node)`` share node ``k``
    (e.g. 8 V100s behind NVLink, nodes connected by InfiniBand).
    Compares and hashes by value, like :class:`FlatTopology`.
    """

    def __init__(
        self,
        intra: LinkSpec,
        inter: LinkSpec,
        gpus_per_node: int,
        *,
        duplex: str = "full",
    ):
        if gpus_per_node < 1:
            raise ConfigurationError("gpus_per_node must be >= 1")
        self.intra = intra
        self.inter = inter
        self.gpus_per_node = gpus_per_node
        self.duplex = _check_duplex(duplex)

    def _key(self) -> tuple:
        return (
            HierarchicalTopology,
            self.intra,
            self.inter,
            self.gpus_per_node,
            self.duplex,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HierarchicalTopology)
            and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash(self._key())

    def node_of(self, worker: int) -> int:
        return worker // self.gpus_per_node

    def p2p_time(self, src: int, dst: int, num_bytes: float) -> float:
        if src == dst:
            return 0.0
        return self.link_of(src, dst).time(num_bytes)

    def link_of(self, src: int, dst: int) -> LinkSpec:
        """NVLink-class within a node, the inter-node link across nodes."""
        return self.intra if self.node_of(src) == self.node_of(dst) else self.inter

    def channel(self, src: int, dst: int) -> tuple[int, int]:
        """The contention channel a ``src -> dst`` transfer occupies."""
        return _channel(src, dst, self.duplex)

    def link_table(
        self, src: np.ndarray, dst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer ``(alpha, beta)`` arrays — :meth:`link_of` in bulk."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        intra = (src // self.gpus_per_node) == (dst // self.gpus_per_node)
        alpha = np.where(intra, self.intra.alpha, self.inter.alpha)
        beta = np.where(intra, self.intra.beta, self.inter.beta)
        return alpha, beta

    def channel_id_array(
        self, src: np.ndarray, dst: np.ndarray, num_workers: int
    ) -> np.ndarray:
        """Integer channel ids for many transfers — :meth:`channel` in bulk."""
        return _channel_id_array(src, dst, self.duplex, num_workers)

    def group_link(self, workers: tuple[int, ...]) -> LinkSpec:
        """Bounding link for a collective: inter-node if the group spans nodes."""
        nodes = {self.node_of(w) for w in workers}
        return self.intra if len(nodes) <= 1 else self.inter
