"""Alpha-beta network models and topologies.

The paper's performance model (§3.4) uses the classic latency-bandwidth
(alpha-beta) cost: sending ``L`` bytes costs ``alpha + beta * L`` seconds.
We provide a flat topology (every worker pair connected by the same link —
a reasonable model of Piz Daint's Aries dragonfly, which the paper also
treats as "bidirectional and direct point-to-point communication between
compute nodes") and a hierarchical topology for the V100 cluster
(NVLink inside a server, InfiniBand between servers, Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class LinkSpec:
    """One link class in the alpha-beta model.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Transfer time per byte in seconds (i.e. 1 / bandwidth).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError(
                f"link parameters must be non-negative, got alpha={self.alpha}, "
                f"beta={self.beta}"
            )

    def time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link."""
        return self.alpha + self.beta * num_bytes

    @staticmethod
    def from_bandwidth(alpha: float, bandwidth_bytes_per_sec: float) -> "LinkSpec":
        """Build a link from a latency and a bandwidth (bytes/s)."""
        if bandwidth_bytes_per_sec <= 0:
            raise ConfigurationError("bandwidth must be positive")
        return LinkSpec(alpha=alpha, beta=1.0 / bandwidth_bytes_per_sec)


class FlatTopology:
    """All worker pairs share one link class."""

    def __init__(self, link: LinkSpec):
        self.link = link

    def p2p_time(self, src: int, dst: int, num_bytes: float) -> float:
        """Point-to-point message time between two workers."""
        if src == dst:
            return 0.0
        return self.link.time(num_bytes)

    def group_link(self, workers: tuple[int, ...]) -> LinkSpec:
        """The link class that bounds a collective over ``workers``."""
        return self.link


class HierarchicalTopology:
    """Fast intra-node links, slower inter-node links.

    Workers ``[k * gpus_per_node, (k+1) * gpus_per_node)`` share node ``k``
    (e.g. 8 V100s behind NVLink, nodes connected by InfiniBand).
    """

    def __init__(self, intra: LinkSpec, inter: LinkSpec, gpus_per_node: int):
        if gpus_per_node < 1:
            raise ConfigurationError("gpus_per_node must be >= 1")
        self.intra = intra
        self.inter = inter
        self.gpus_per_node = gpus_per_node

    def node_of(self, worker: int) -> int:
        return worker // self.gpus_per_node

    def p2p_time(self, src: int, dst: int, num_bytes: float) -> float:
        if src == dst:
            return 0.0
        link = self.intra if self.node_of(src) == self.node_of(dst) else self.inter
        return link.time(num_bytes)

    def group_link(self, workers: tuple[int, ...]) -> LinkSpec:
        """Bounding link for a collective: inter-node if the group spans nodes."""
        nodes = {self.node_of(w) for w in workers}
        return self.intra if len(nodes) <= 1 else self.inter
