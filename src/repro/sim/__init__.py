"""Discrete-event simulation of pipeline schedules on modelled clusters.

The simulator executes a :class:`~repro.schedules.ir.Schedule` against a
:class:`~repro.sim.cost.CostModel` — per-op compute durations, alpha-beta
point-to-point links, and collective (allreduce) cost models — producing a
:class:`~repro.sim.engine.SimulationResult` with per-operation start/end
times, per-worker busy/bubble accounting, and gradient-synchronization
overlap. This substitutes for the paper's 2,048-node Piz Daint runs: every
quantity the paper reports (bubble ratio, throughput, peak memory, the
performance-model error) is a deterministic function of the schedule
structure and these cost models.

The engine is a heap-based event queue (:func:`~repro.sim.engine.simulate`;
the seed's polling loop survives as
:func:`~repro.sim.engine.simulate_polling` for differential testing). For
*lowered* schedules (:mod:`repro.schedules.lowering`) it additionally
models per-link channel contention: explicit SEND/RECV transfers occupy
link bandwidth, queue FIFO per channel, contend with collectives, and
overlap with compute (:class:`~repro.sim.engine.TransferRecord`).

The contention-free regimes — implicit schedules under any cost model,
lowered schedules on zero-occupancy links — additionally run on the
array-backed kernel (:mod:`repro.sim.kernel`):
:func:`~repro.sim.kernel.simulate_fast` is an engine-exact drop-in, and
:func:`~repro.sim.kernel.simulate_batch` evaluates many cost models
against one cached dense schedule for planner-scale sweeps.
"""

from repro.sim.cost import CostModel
from repro.sim.network import LinkSpec, FlatTopology, HierarchicalTopology
from repro.sim.collectives import (
    allreduce_cost,
    rabenseifner_cost,
    ring_cost,
    recursive_doubling_cost,
)
from repro.sim.engine import (
    CollectiveRecord,
    SimulationResult,
    TimedOp,
    TransferRecord,
    simulate,
    simulate_polling,
)
from repro.sim.kernel import (
    BatchResult,
    ScheduleKernel,
    fast_path_supported,
    kernel_of,
    simulate_batch,
    simulate_fast,
)
from repro.sim.memory import MemoryModel, MemoryReport, WorkerMemory, analyze_memory
from repro.sim.metrics import bubble_ratio, throughput_samples_per_sec, worker_busy_times
from repro.sim.gantt import render_gantt
from repro.sim.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "CostModel",
    "LinkSpec",
    "FlatTopology",
    "HierarchicalTopology",
    "allreduce_cost",
    "rabenseifner_cost",
    "ring_cost",
    "recursive_doubling_cost",
    "SimulationResult",
    "TimedOp",
    "CollectiveRecord",
    "TransferRecord",
    "simulate",
    "simulate_polling",
    "BatchResult",
    "ScheduleKernel",
    "fast_path_supported",
    "kernel_of",
    "simulate_batch",
    "simulate_fast",
    "MemoryModel",
    "MemoryReport",
    "WorkerMemory",
    "analyze_memory",
    "bubble_ratio",
    "throughput_samples_per_sec",
    "worker_busy_times",
    "render_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
]
