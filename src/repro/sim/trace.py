"""Chrome-tracing export of simulated schedules.

``to_chrome_trace`` converts a :class:`~repro.sim.engine.SimulationResult`
into the Trace Event JSON format that ``chrome://tracing`` / Perfetto
render: one row per worker, forward/backward/collective events with
micro-batch and replica metadata. Handy for inspecting big schedules the
ASCII Gantt cannot fit.

Process rows: pid 0 holds the per-worker compute lanes, pid 1 the
collectives, and pid 2 the explicit p2p transfers of a lowered schedule
(one lane per source worker). A transfer event spans its time on the
wire; channel queueing shows up as the event starting *after* its
producer op ends in the pid-0 lane above (the message waited for the
link), and each event's ``args.occupancy`` carries the serialized
portion.
"""

from __future__ import annotations

import json

from repro.schedules.ir import OpKind
from repro.sim.engine import SimulationResult

#: Microseconds per simulated second in the exported trace (Chrome traces
#: are integer-friendly at the microsecond scale).
_SCALE = 1e6


def to_chrome_trace(result: SimulationResult) -> list[dict]:
    """Trace events for every compute op, collective, and p2p transfer."""
    events: list[dict] = []
    for timed in result.timed.values():
        op = timed.op
        if op.kind is OpKind.ALLREDUCE or op.is_comm:
            continue
        name = op.kind.value + ",".join(str(m) for m in op.micro_batches)
        if op.is_forward:
            cat = "forward"
        elif op.is_recompute:
            cat = "recompute"
        elif op.is_backward_weight:
            cat = "weight_grad"
        else:
            cat = "backward"
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": timed.start * _SCALE,
                "dur": max(1.0, timed.duration * _SCALE),
                "pid": 0,
                "tid": timed.worker,
                "args": {
                    "replica": op.replica,
                    "stage": op.stage,
                    "micro_batches": list(op.micro_batches),
                    "part": list(op.part),
                    "recompute": op.recompute,
                },
            }
        )
    for record in result.collectives:
        for worker in record.workers:
            events.append(
                {
                    "name": f"allreduce(stage {record.stage})",
                    "cat": "allreduce",
                    "ph": "X",
                    "ts": record.start * _SCALE,
                    "dur": max(1.0, record.cost * _SCALE),
                    "pid": 1,
                    "tid": worker,
                    "args": {"workers": list(record.workers)},
                }
            )
    for transfer in result.transfers:
        if transfer.duration <= 0:
            # Free links: no wire time to draw (matches the gantt, which
            # suppresses its comm lanes for zero-duration transfers).
            continue
        mbs = ",".join(str(m) for m in transfer.micro_batches)
        events.append(
            {
                "name": f"{transfer.payload}{mbs}"
                f" P{transfer.src_worker}->P{transfer.dst_worker}",
                "cat": "p2p",
                "ph": "X",
                "ts": transfer.start * _SCALE,
                "dur": max(1.0, transfer.duration * _SCALE),
                "pid": 2,
                "tid": transfer.src_worker,
                "args": {
                    "payload": transfer.payload,
                    "micro_batches": list(transfer.micro_batches),
                    "dst_worker": transfer.dst_worker,
                    "occupancy": transfer.occupancy,
                    "channel": list(transfer.channel)
                    if transfer.channel is not None
                    else None,
                },
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return events


def write_chrome_trace(result: SimulationResult, path: str) -> None:
    """Write the trace to ``path`` as Chrome-tracing JSON."""
    payload = {
        "traceEvents": to_chrome_trace(result),
        "displayTimeUnit": "ms",
        "otherData": {"schedule": result.schedule.describe()},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
