"""Per-worker memory accounting for pipeline schedules (paper §2, Table 2;
§4.1, Figure 9).

Two components:

* **Activations** — a micro-batch's stash lives from its forward to (the
  last part of) its backward on each stage. Peak liveness is counted by
  walking each worker's operation order. With recomputation only the stage
  *input* is stashed, plus a transient full-activation buffer while a
  backward rematerializes. Under backward splitting the input-gradient op
  (``Bi``) keeps the stash alive — the weight-gradient half still needs the
  layer inputs — and only the matching ``W`` releases it; this is why the
  zero-bubble schedules trade activation lifetime for bubble time. A ``Bi``
  that rematerializes keeps the full activations live until its ``W``.
  Recomputation comes in two equivalent forms: the legacy ``recompute``
  flag on backward ops, and the recompute pass's explicit ``RECOMPUTE``
  ops — at an explicit op the full activations become live (the stash is
  promoted from the stage input) and the releasing backward(s) free them,
  which yields the same peak as the flag accounting.
* **Weights** — each hosted stage replica stores parameters (+ gradients +
  optimizer state); PipeDream additionally stashes up to ``D - s`` weight
  versions at stage ``s`` for version consistency, PipeDream-2BW exactly 2.

The accounting is **two-tier**: an ``OFFLOAD`` op (offload pass) moves its
stash's bytes out of the device's live set and into the worker's host
tier until the matching ``RELOAD`` brings them back, so the device peak
excludes host-resident stashes and each worker additionally reports its
host-tier peak (:attr:`WorkerMemory.host_peak_bytes`), budgeted
separately by :meth:`MemoryReport.fits`.

The schemes' qualitative signatures (GPipe ~ N x Ma; DAPPLE/2BW first-worker
peak; Chimera balanced in [(D/2+1) Ma, D Ma]; GEMS minimal) all emerge from
this accounting — Figure 9 is regenerated from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import MemoryModelError
from repro.schedules.ir import OpKind, Schedule


def _per_stage(value: Sequence[float] | float, stage: int, what: str) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(value[stage])
    except IndexError:
        raise MemoryModelError(
            f"{what} has {len(value)} entries but stage {stage} was requested"
        ) from None


@dataclass(frozen=True)
class MemoryModel:
    """Byte sizes per stage.

    Attributes
    ----------
    activation_bytes:
        Full activation stash of one micro-batch on one stage (``Ma``).
    stash_input_bytes:
        Bytes stashed per micro-batch when the backward recomputes (just the
        stage input).
    weight_bytes:
        One copy of a stage's weights including gradients and optimizer
        state (``M_theta``). Scalar = balanced stages; a sequence models the
        embedding-heavy first stage the paper highlights in §4.1.
    weight_stash_bytes:
        Bytes of one *extra* stashed weight version (raw parameters only —
        PipeDream/2BW stash old parameter values for version consistency,
        not gradients or optimizer state).
    """

    activation_bytes: tuple[float, ...] | float = 1.0
    stash_input_bytes: tuple[float, ...] | float = 0.25
    weight_bytes: tuple[float, ...] | float = 0.0
    weight_stash_bytes: tuple[float, ...] | float = 0.0

    def act(self, stage: int) -> float:
        return _per_stage(self.activation_bytes, stage, "activation_bytes")

    def stash(self, stage: int) -> float:
        return _per_stage(self.stash_input_bytes, stage, "stash_input_bytes")

    def weights(self, stage: int) -> float:
        return _per_stage(self.weight_bytes, stage, "weight_bytes")

    def weight_stash(self, stage: int) -> float:
        return _per_stage(self.weight_stash_bytes, stage, "weight_stash_bytes")


@dataclass(frozen=True)
class WorkerMemory:
    """Memory accounting for one worker."""

    worker: int
    weight_bytes: float
    activation_peak_bytes: float
    #: Peak number of live micro-batch stashes (in micro-batch units),
    #: comparable to Table 2's activation intervals.
    activation_peak_units: float
    #: Peak bytes of this worker's stashes parked in *host* memory
    #: (offload pass). Host-resident stashes are excluded from the device
    #: peak above — that exclusion is the entire point of offloading —
    #: and budgeted separately against the host tier.
    host_peak_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Device-tier peak (host-resident stashes excluded)."""
        return self.weight_bytes + self.activation_peak_bytes


@dataclass(frozen=True)
class MemoryReport:
    """Per-worker memory plus distribution summaries (Figure 9)."""

    workers: tuple[WorkerMemory, ...]

    @property
    def peak_bytes(self) -> float:
        return max(w.total_bytes for w in self.workers)

    @property
    def min_bytes(self) -> float:
        return min(w.total_bytes for w in self.workers)

    @property
    def imbalance(self) -> float:
        """max / min total memory across workers (1.0 = perfectly balanced)."""
        lo = self.min_bytes
        return self.peak_bytes / lo if lo > 0 else float("inf")

    @property
    def host_peak_bytes(self) -> float:
        """Largest host-tier peak across workers (0 without offload)."""
        return max(w.host_peak_bytes for w in self.workers)

    def fits(
        self, capacity_bytes: float, host_capacity_bytes: float | None = None
    ) -> bool:
        """Would this configuration run without OOM on the given device?

        A configuration whose modeled peak **equals** the budget fits. The
        comparison carries a relative epsilon because :func:`analyze_memory`
        accumulates ``live_bytes`` with float additions — a peak assembled
        as ``0.1 + 0.2`` must not be rejected against a ``0.3`` budget over
        2^-54 of drift. ``host_capacity_bytes`` budgets the host tier the
        same way (``None`` = unlimited host memory, the common case —
        hosts hold orders of magnitude more than devices).
        """
        slack = 1e-9 * max(abs(capacity_bytes), abs(self.peak_bytes), 1.0)
        if self.peak_bytes > capacity_bytes + slack:
            return False
        if host_capacity_bytes is not None:
            host_peak = self.host_peak_bytes
            host_slack = 1e-9 * max(
                abs(host_capacity_bytes), abs(host_peak), 1.0
            )
            if host_peak > host_capacity_bytes + host_slack:
                return False
        return True


def weight_versions(schedule: Schedule, stage: int) -> int:
    """Stashed weight-version count for ``stage`` under the schedule's scheme.

    PipeDream keeps one version per in-flight micro-batch — ``D - s`` at
    stage ``s`` (up to ``D``, Table 2); PipeDream-2BW double-buffers (2);
    synchronous schemes keep a single version.
    """
    if schedule.scheme == "pipedream":
        return schedule.num_stages - stage
    if schedule.scheme == "pipedream_2bw":
        return 2
    return 1


def analyze_memory(schedule: Schedule, model: MemoryModel) -> MemoryReport:
    """Compute the per-worker memory report for ``schedule``.

    Walks each worker's operation order tracking live activation stashes;
    the walk order is exactly the execution order, so the peak is the true
    runtime peak for any cost model (liveness only changes at this worker's
    own operations).
    """
    # Which (replica, stage, mb) triples recompute. Two sources: the
    # legacy flag on backward ops (rematerialization transient charged at
    # the backward) and the recompute pass's explicit RECOMPUTE ops
    # (promotion charged at the op). Either way the forward must know to
    # stash only the stage input.
    recompute: set[tuple[int, int, int]] = set()
    explicit: set[tuple[int, int, int]] = set()
    for _, op in schedule.all_ops():
        if op.is_backward and op.recompute:
            for mb in op.micro_batches:
                recompute.add((op.replica, op.stage, mb))
        elif op.is_recompute:
            for mb in op.micro_batches:
                explicit.add((op.replica, op.stage, mb))
    stash_only = recompute | explicit

    workers: list[WorkerMemory] = []
    for worker in range(schedule.num_workers):
        live_bytes = 0.0
        live_units = 0.0
        peak_bytes = 0.0
        peak_units = 0.0
        host_live = 0.0
        host_peak = 0.0
        remaining_parts: dict[tuple[int, int, int], float] = {}
        stash_of: dict[tuple[int, int, int], float] = {}
        on_host: set[tuple[int, int, int]] = set()
        for op in schedule.worker_ops[worker]:
            if op.is_host_comm:
                # Two-tier accounting: an OFFLOAD moves the stash's bytes
                # out of the device's live set and into the host tier; the
                # matching RELOAD moves them back. The stash keeps its
                # identity (remaining_parts/stash_of untouched) so the
                # releasing backward frees it exactly as without offload.
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if op.is_offload:
                        if key not in remaining_parts:
                            raise MemoryModelError(
                                f"OFFLOAD of micro-batch {mb} at stage "
                                f"{op.stage} without a live forward stash "
                                f"on worker {worker}"
                            )
                        if key in on_host:
                            raise MemoryModelError(
                                f"micro-batch {mb} at stage {op.stage} "
                                f"offloaded twice on worker {worker}"
                            )
                        moved = stash_of[key] * remaining_parts[key]
                        live_bytes -= moved
                        live_units -= remaining_parts[key]
                        host_live += moved
                        on_host.add(key)
                        host_peak = max(host_peak, host_live)
                    else:
                        if key not in on_host:
                            raise MemoryModelError(
                                f"RELOAD of micro-batch {mb} at stage "
                                f"{op.stage} without an offloaded stash "
                                f"on worker {worker}"
                            )
                        moved = stash_of[key] * remaining_parts[key]
                        host_live -= moved
                        live_bytes += moved
                        live_units += remaining_parts[key]
                        on_host.discard(key)
                        peak_bytes = max(peak_bytes, live_bytes)
                        peak_units = max(peak_units, live_units)
                continue
            # Collectives and explicit SEND/RECV (lowered schedules) neither
            # create nor release activation stashes.
            if not op.is_compute:
                continue
            if op.is_forward:
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    stored = (
                        model.stash(op.stage)
                        if key in stash_only
                        else model.act(op.stage)
                    )
                    stash_of[key] = stored
                    remaining_parts[key] = 1.0
                    live_bytes += stored
                    live_units += 1.0
                peak_bytes = max(peak_bytes, live_bytes)
                peak_units = max(peak_units, live_units)
            elif op.is_recompute:
                # Explicit rematerialization: promote the stashed stage
                # input to the full activations; the releasing backward(s)
                # free the promoted stash.
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if key not in remaining_parts:
                        raise MemoryModelError(
                            f"RECOMPUTE of micro-batch {mb} at stage "
                            f"{op.stage} without a live forward stash on "
                            f"worker {worker}"
                        )
                    full = model.act(op.stage)
                    if stash_of[key] < full:
                        live_bytes += (full - stash_of[key]) * remaining_parts[key]
                        stash_of[key] = full
                peak_bytes = max(peak_bytes, live_bytes)
            elif op.is_backward_input:
                # Split input gradient: consumes the stash but does not
                # release it (the weight-gradient half still needs the layer
                # inputs). Rematerialized activations must survive to W too.
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if key not in remaining_parts:
                        raise MemoryModelError(
                            f"input gradient of micro-batch {mb} at stage "
                            f"{op.stage} without a live forward stash on "
                            f"worker {worker}"
                        )
                    full = model.act(op.stage)
                    if key in recompute and stash_of[key] < full:
                        live_bytes += (full - stash_of[key]) * remaining_parts[key]
                        stash_of[key] = full
                peak_bytes = max(peak_bytes, live_bytes)
            else:
                # Fused backward or split weight gradient: releases this
                # part's share of the stash once it completes.
                fraction = 1.0 / op.part[1]
                transient = 0.0
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if key not in remaining_parts:
                        raise MemoryModelError(
                            f"backward of micro-batch {mb} at stage {op.stage} "
                            f"without a live forward stash on worker {worker}"
                        )
                    if op.kind is OpKind.BACKWARD and key in recompute:
                        # Rematerialized activations live only during this op.
                        transient += model.act(op.stage) - stash_of[key]
                peak_bytes = max(peak_bytes, live_bytes + max(0.0, transient))
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    remaining_parts[key] -= fraction
                    live_bytes -= stash_of[key] * fraction
                    live_units -= fraction
                    if remaining_parts[key] <= 1e-9:
                        del remaining_parts[key]
        weights = 0.0
        for replica, stage in schedule.replicas_hosted_by(worker):
            versions = weight_versions(schedule, stage)
            weights += model.weights(stage)
            weights += (versions - 1) * model.weight_stash(stage)
        workers.append(
            WorkerMemory(
                worker=worker,
                weight_bytes=weights,
                activation_peak_bytes=peak_bytes,
                activation_peak_units=peak_units,
                host_peak_bytes=host_peak,
            )
        )
    return MemoryReport(workers=tuple(workers))
