"""Cost models for gradient-synchronization collectives.

The paper assumes Rabenseifner's allreduce algorithm (reduce-scatter +
allgather), whose cost for ``r`` ranks and ``L`` bytes is

    2 * log2(r) * alpha + 2 * (r - 1) / r * beta * L

which attains the allreduce bandwidth lower bound — "works best for large
models" (§3.4). We also provide ring and recursive-doubling costs for the
ablation benches, and these same formulas are cross-checked against the
*executable* collective implementations in :mod:`repro.runtime.backend`
(the step counts must agree).
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError

ALGORITHMS = ("rabenseifner", "ring", "recursive_doubling")


def _check(group_size: int, num_bytes: float) -> None:
    if group_size < 1:
        raise ConfigurationError(f"allreduce group must be >= 1, got {group_size}")
    if num_bytes < 0:
        raise ConfigurationError(f"negative message size {num_bytes}")


def rabenseifner_cost(
    alpha: float, beta: float, num_bytes: float, group_size: int
) -> float:
    """Rabenseifner (reduce-scatter + allgather) allreduce cost.

    ``2 log2(r) alpha + 2 (r-1)/r beta L`` — the paper's Equation for
    ``Comm_allreduce``. A group of one costs nothing.
    """
    _check(group_size, num_bytes)
    if group_size == 1:
        return 0.0
    r = group_size
    return 2.0 * math.log2(r) * alpha + 2.0 * (r - 1) / r * beta * num_bytes


def ring_cost(alpha: float, beta: float, num_bytes: float, group_size: int) -> float:
    """Ring allreduce: ``2 (r-1) alpha + 2 (r-1)/r beta L``.

    Same bandwidth term as Rabenseifner but a latency term linear in ``r`` —
    competitive only for small groups or very large messages.
    """
    _check(group_size, num_bytes)
    if group_size == 1:
        return 0.0
    r = group_size
    return 2.0 * (r - 1) * alpha + 2.0 * (r - 1) / r * beta * num_bytes


def recursive_doubling_cost(
    alpha: float, beta: float, num_bytes: float, group_size: int
) -> float:
    """Recursive doubling: ``log2(r) (alpha + beta L)``.

    Latency-optimal but moves the full message every round — best for small
    messages (not the regime of billion-parameter gradients).
    """
    _check(group_size, num_bytes)
    if group_size == 1:
        return 0.0
    r = group_size
    rounds = math.ceil(math.log2(r))
    return rounds * (alpha + beta * num_bytes)


def allreduce_cost(
    algorithm: str,
    alpha: float,
    beta: float,
    num_bytes: float,
    group_size: int,
) -> float:
    """Dispatch on algorithm name; see the per-algorithm functions."""
    if algorithm == "rabenseifner":
        return rabenseifner_cost(alpha, beta, num_bytes, group_size)
    if algorithm == "ring":
        return ring_cost(alpha, beta, num_bytes, group_size)
    if algorithm == "recursive_doubling":
        return recursive_doubling_cost(alpha, beta, num_bytes, group_size)
    raise ConfigurationError(
        f"unknown allreduce algorithm {algorithm!r}; expected one of {ALGORITHMS}"
    )
