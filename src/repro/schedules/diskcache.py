"""Persistent on-disk tier of the schedule-artifact cache.

The in-memory :class:`~repro.schedules.cache.ScheduleCache` dies with the
process, so every fresh ``repro plan`` / ``repro serve`` start used to pay
the full schedule -> graph -> lowered -> kernel construction chain again —
seconds per cell at depth 32, against ~20 ms to deserialize the same
artifacts. This module is the layer beneath the LRU: a content-addressed
store of pickled :class:`~repro.schedules.cache.ScheduleArtifacts`
snapshots under ``~/.cache/repro/`` (overridable via ``REPRO_CACHE_DIR``),
keyed on exactly the in-memory cache key — ``(scheme, D, N, options)``
with the ``passes`` option already normalized to its stable pipeline
signature — so two processes that would share an LRU entry share a disk
entry, and a restarted process goes straight to warm-cache speed.

Format and corruption tolerance
-------------------------------
Each entry is one file named by the SHA-256 of its key (two-level fan-out
directories keep listings fast). The payload is a pickle of a *versioned
wrapper*: ``{"format": FORMAT_VERSION, "library": repro.__version__,
"key": key, "artifacts": {...}}``. A load only succeeds when the magic
prefix, format version, library version, and stored key all match; any
mismatch — or any exception while unpickling, including truncated or
bit-flipped files — **evicts the entry and returns a miss**. A bad disk
entry can cost a rebuild, never a crash or a wrong plan.

Writes are atomic (temp file + ``os.replace``) and best-effort: an
unwritable or full cache directory degrades to the in-memory behaviour
instead of failing the caller. Set ``REPRO_CACHE_DISABLE=1`` to turn the
tier off entirely (every lookup misses, nothing is written).

Serialized payloads include every *materialized* derived form — the
dependency graphs with their attached dense forms and array kernels — so
a warm process skips not just ``build_schedule`` but graph construction
and kernel levelization too. Frozen schedule metadata
(:class:`types.MappingProxyType`) pickles through a custom dispatch-table
entry and is re-frozen on load.
"""

from __future__ import annotations

import copyreg
import hashlib
import io
import os
import pathlib
import pickle
import threading
from dataclasses import dataclass
from types import MappingProxyType

#: Bumped whenever the serialized layout or the pickled classes change
#: incompatibly. Part of the content address, so old-format entries are
#: simply never found (and are swept by ``clear``), not misread.
#: v2: host-memory tier — kernels carry per-op host-channel direction
#: tables (``send_host_dir``) and schedules may contain OFFLOAD/RELOAD.
FORMAT_VERSION = 2

#: First bytes of every entry file; a cheap pre-pickle sanity check that
#: rejects foreign files dropped into the cache directory.
MAGIC = b"repro-artifact-cache\n"

ENV_DIR = "REPRO_CACHE_DIR"
ENV_DISABLE = "REPRO_CACHE_DISABLE"


def default_cache_dir() -> pathlib.Path:
    """The resolved cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.

    Resolved lazily on every access, so tests (and services) can redirect
    the tier by setting the environment variable at any point — there is
    no import-time snapshot to invalidate.
    """
    env = os.environ.get(ENV_DIR, "").strip()
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


def disk_cache_enabled() -> bool:
    """False when ``REPRO_CACHE_DISABLE`` is set to a truthy value."""
    return os.environ.get(ENV_DISABLE, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def _library_version() -> str:
    from repro import __version__

    return __version__


def _rebuild_proxy(mapping: dict) -> MappingProxyType:
    """Reconstructor for pickled read-only schedule metadata."""
    return MappingProxyType(mapping)


class _ArtifactPickler(pickle.Pickler):
    """Pickler that knows how to serialize frozen schedule metadata."""

    dispatch_table = copyreg.dispatch_table.copy()
    dispatch_table[MappingProxyType] = lambda mp: (_rebuild_proxy, (dict(mp),))


@dataclass(frozen=True)
class DiskCacheStats:
    """Counters and on-disk footprint of one :class:`DiskScheduleCache`.

    ``hits``/``misses``/``stores``/``evictions`` are per-process counters
    (reset on restart); ``entries``/``total_bytes`` are measured from the
    directory, so they reflect every process sharing the cache root.
    """

    hits: int
    misses: int
    stores: int
    evictions: int
    entries: int
    total_bytes: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DiskScheduleCache:
    """Content-addressed pickle store for schedule artifacts.

    ``root=None`` (the default, used by the process-wide cache) re-resolves
    :func:`default_cache_dir` on every operation; an explicit root pins the
    directory regardless of the environment.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self._root = pathlib.Path(root) if root is not None else None
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0

    @property
    def root(self) -> pathlib.Path:
        return self._root if self._root is not None else default_cache_dir()

    @property
    def enabled(self) -> bool:
        return disk_cache_enabled()

    def _entries_dir(self) -> pathlib.Path:
        return self.root / "schedules"

    def entry_path(self, key: tuple) -> pathlib.Path:
        """Content address of one cache key (stable across processes)."""
        digest = hashlib.sha256(
            repr((FORMAT_VERSION, _library_version(), key)).encode()
        ).hexdigest()
        return self._entries_dir() / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------ io
    def load(self, key: tuple) -> dict | None:
        """The stored artifact payload for ``key``, or None on a miss.

        Corrupt, truncated, foreign, stale-format, or colliding entries
        are deleted (counted as evictions) and reported as misses.
        """
        if not self.enabled:
            return None
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self._misses += 1
            return None
        try:
            if not blob.startswith(MAGIC):
                raise ValueError("bad magic")
            wrapper = pickle.loads(blob[len(MAGIC) :])
            if (
                wrapper["format"] != FORMAT_VERSION
                or wrapper["library"] != _library_version()
                or wrapper["key"] != key
            ):
                raise ValueError("stale or mismatched entry")
            payload = wrapper["artifacts"]
            if not isinstance(payload, dict) or "schedule" not in payload:
                raise ValueError("payload missing the schedule")
        except Exception:
            # Never let a bad disk entry crash a plan: evict and rebuild.
            self._evict(path)
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            self._hits += 1
        return payload

    def store(self, key: tuple, artifacts: dict) -> bool:
        """Atomically persist ``artifacts`` under ``key`` (best-effort).

        Returns False without raising when the tier is disabled or the
        directory is unwritable — disk caching is an accelerator, not a
        dependency.
        """
        if not self.enabled:
            return False
        path = self.entry_path(key)
        wrapper = {
            "format": FORMAT_VERSION,
            "library": _library_version(),
            "key": key,
            "artifacts": artifacts,
        }
        buf = io.BytesIO()
        buf.write(MAGIC)
        _ArtifactPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(wrapper)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(buf.getvalue())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        with self._lock:
            self._stores += 1
        return True

    def _evict(self, path: pathlib.Path) -> None:
        # Several processes share one cache directory and may race to
        # evict the same corrupt entry; only the unlink that actually
        # removed the file counts the eviction (missing_ok=True here
        # double-counted — N hammering processes each claimed the single
        # removal).
        try:
            path.unlink()
        except FileNotFoundError:
            return
        except OSError:
            return
        with self._lock:
            self._evictions += 1

    # --------------------------------------------------------------- admin
    def _entry_files(self) -> list[pathlib.Path]:
        root = self._entries_dir()
        if not root.is_dir():
            return []
        return [p for p in root.glob("*/*.pkl") if p.is_file()]

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        with self._lock:
            self._hits = self._misses = self._stores = self._evictions = 0
        return removed

    def stats(self) -> DiskCacheStats:
        files = self._entry_files()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        with self._lock:
            return DiskCacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                entries=len(files),
                total_bytes=total,
            )
