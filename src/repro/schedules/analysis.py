"""Closed-form scheme properties (the formulas of Tables 2 and 3).

These are the paper's analytic expressions, collected in one place so
callers (and the test suite) can compare any simulated schedule against
its theoretical signature without re-deriving the algebra. The zero-bubble
entries (``zb_h1``/``zb_v``) are the signatures of this repository's greedy
builders under the practical split ``b = w = F``: ZB-H1's makespan is
``3N + 2(D-1)`` exactly (the tail ``W`` fill saves one of DAPPLE's three
``(D-1)`` bubble terms at no activation-memory cost), while ZB-V's bubble
is quoted as the ``(D-1)/(6N + D - 1)`` asymptote the greedy schedule
tracks to within a couple of time units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.schedules.ir import OpKind
from repro.schedules.zero_bubble import v_pattern_compute_rows


@dataclass(frozen=True)
class SchemeProperties:
    """Analytic per-scheme signature for a (D, N) configuration."""

    scheme: str
    #: Bubble ratio under the practical workload model (backward = 2x).
    bubble_ratio: float
    #: Weight copies held per worker, in units of one stage's weights.
    weight_copies: float
    #: (min, max) live activation stashes per worker, in micro-batches.
    activation_interval: tuple[float, float]
    synchronous: bool


def bubble_ratio_formula(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> float:
    """Table 2 (practical, backward = 2x forward) / Table 3 bubble ratios.

    For Chimera the Table 2 row before middle-bubble removal is
    ``(D-2)/(3N/2 + D - 2)``; with ``f`` down pipelines (Table 3, equal
    slots) it is ``(D-2f)/(2fN + D - 2f)``.
    """
    d, f = depth, num_down_pipelines
    if scheme in ("gpipe", "dapple"):
        return (d - 1) / (n + d - 1)
    if scheme == "gems":
        return (d - 1) / (d + 0.5)
    if scheme == "chimera":
        if f == 1:
            return (d - 2) / (1.5 * n + d - 2)
        return (d - 2 * f) / (2 * f * n + d - 2 * f)
    if scheme in ("pipedream", "pipedream_2bw"):
        return 0.0
    if scheme == "zb_h1":
        return 2 * (d - 1) / (3 * n + 2 * (d - 1))
    if scheme == "zb_v":
        return (d - 1) / (6 * n + d - 1)
    if scheme in ("zb_vmin", "zb_vhalf"):
        # Stable-pattern makespan = 6N + ramp: every worker does exactly 6N
        # unit ops, so the ramp is the whole bubble. Exact for every N for
        # vmin; vhalf is exact for N >= D (below that its tail W backlog
        # makes the true ramp up to ~D/2 ticks longer than the formula).
        tail = _v_pattern_ramp(scheme, d, n)
        return tail / (6 * n + tail)
    raise ConfigurationError(f"no bubble formula for scheme {scheme!r}")


def _v_pattern_ramp(scheme: str, depth: int, n: int) -> float:
    """Fill+drain ticks of a stable-pattern V-schedule (unit costs).

    Derived from the last pattern op plus the deferred-``W`` flush; see
    :func:`repro.schedules.zero_bubble.stable_pattern` for the offsets.
    vmin's interval correction exists to de-collide *consecutive*
    micro-batches, so it only stretches the ramp once a second micro-batch
    is in flight (``N >= 2``).
    """
    d = depth
    if scheme == "zb_vmin":
        interval = 2 if d % 3 == 0 and n >= 2 else 0
        return float(max(0, 4 * d + interval - 5))
    if d % 2 == 0:
        return (7 * d - 4) / 2
    return 7 * (d - 1) / 2


def activation_interval_formula(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> tuple[float, float]:
    """Table 2 / Table 3 per-worker activation intervals (micro-batches)."""
    d, f = depth, num_down_pipelines
    if scheme == "gpipe":
        return (float(n), float(n))
    if scheme in ("dapple", "pipedream", "pipedream_2bw"):
        return (min(1.0, float(n)), float(min(d, n)))
    if scheme == "gems":
        return (1.0, 1.0)
    if scheme == "chimera":
        if n < d:
            return (1.0, float(min(d, n)))
        return (d - d / (2 * f) + 1.0, float(d))
    if scheme == "zb_h1":
        # Same signature as DAPPLE: the builder caps the full stash
        # lifetime (forward to W) at the 1F1B bound D - s.
        return (min(1.0, float(n)), float(min(d, n)))
    if scheme == "zb_v":
        # 2D chunk stashes per worker (constant in N), each covering half
        # a conventional stage; perfectly balanced across workers.
        return (float(min(2 * d, 2 * n)), float(min(2 * d, 2 * n)))
    if scheme in ("zb_vmin", "zb_vhalf"):
        return _v_pattern_activation_interval(scheme, d, n)
    raise ConfigurationError(f"no activation formula for scheme {scheme!r}")


def _v_pattern_activation_interval(
    scheme: str, depth: int, n: int
) -> tuple[float, float]:
    """Per-worker peak live chunk stashes of a stable-pattern V-schedule.

    Asymptotically ``D + 2`` chunk stashes for vhalf (half the 1F1B
    activation budget plus the deferred-``W`` lag) and ``~2D/3 + 2`` for
    vmin (a third of it); the exact per-worker peak is counted over the
    pattern's own op order — a stash lives from its forward to its
    weight-gradient, matching :func:`repro.sim.memory.analyze_memory`.
    """
    peaks: list[int] = []
    for row in v_pattern_compute_rows(scheme, depth, n):
        live = peak = 0
        for op in row:
            if op.kind is OpKind.FORWARD:
                live += 1
                peak = max(peak, live)
            elif op.kind is OpKind.BACKWARD_WEIGHT:
                live -= 1
        peaks.append(peak)
    return (float(min(peaks)), float(max(peaks)))


def weight_copies_formula(scheme: str, *, num_down_pipelines: int = 1) -> float:
    """Model-replica copies per worker (Table 2's weights column).

    PipeDream's extra stashed *versions* are raw parameters, not full
    state, and are modelled separately (:mod:`repro.sim.memory`).
    """
    if scheme in ("gpipe", "dapple", "pipedream", "pipedream_2bw", "zb_h1"):
        return 1.0
    if scheme == "gems":
        return 2.0
    if scheme == "chimera":
        return 2.0 * num_down_pipelines
    if scheme in ("zb_v", "zb_vhalf", "zb_vmin"):
        # Two chunks per worker, but each is half a conventional stage: one
        # full stage-equivalent of weights, like the linear placements.
        return 1.0
    raise ConfigurationError(f"no weight formula for scheme {scheme!r}")


def scheme_properties(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> SchemeProperties:
    """The full analytic signature for one configuration."""
    return SchemeProperties(
        scheme=scheme,
        bubble_ratio=bubble_ratio_formula(
            scheme, depth, n, num_down_pipelines=num_down_pipelines
        ),
        weight_copies=weight_copies_formula(
            scheme, num_down_pipelines=num_down_pipelines
        ),
        activation_interval=activation_interval_formula(
            scheme, depth, n, num_down_pipelines=num_down_pipelines
        ),
        synchronous=scheme not in ("pipedream", "pipedream_2bw"),
    )
