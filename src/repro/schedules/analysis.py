"""Closed-form scheme properties (the formulas of Tables 2 and 3).

These are the paper's analytic expressions, collected in one place so
callers (and the test suite) can compare any simulated schedule against
its theoretical signature without re-deriving the algebra. The zero-bubble
entries (``zb_h1``/``zb_v``) are the signatures of this repository's greedy
builders under the practical split ``b = w = F``: ZB-H1's makespan is
``3N + 2(D-1)`` exactly (the tail ``W`` fill saves one of DAPPLE's three
``(D-1)`` bubble terms at no activation-memory cost), while ZB-V's bubble
is quoted as the ``(D-1)/(6N + D - 1)`` asymptote the greedy schedule
tracks to within a couple of time units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SchemeProperties:
    """Analytic per-scheme signature for a (D, N) configuration."""

    scheme: str
    #: Bubble ratio under the practical workload model (backward = 2x).
    bubble_ratio: float
    #: Weight copies held per worker, in units of one stage's weights.
    weight_copies: float
    #: (min, max) live activation stashes per worker, in micro-batches.
    activation_interval: tuple[float, float]
    synchronous: bool


def bubble_ratio_formula(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> float:
    """Table 2 (practical, backward = 2x forward) / Table 3 bubble ratios.

    For Chimera the Table 2 row before middle-bubble removal is
    ``(D-2)/(3N/2 + D - 2)``; with ``f`` down pipelines (Table 3, equal
    slots) it is ``(D-2f)/(2fN + D - 2f)``.
    """
    d, f = depth, num_down_pipelines
    if scheme in ("gpipe", "dapple"):
        return (d - 1) / (n + d - 1)
    if scheme == "gems":
        return (d - 1) / (d + 0.5)
    if scheme == "chimera":
        if f == 1:
            return (d - 2) / (1.5 * n + d - 2)
        return (d - 2 * f) / (2 * f * n + d - 2 * f)
    if scheme in ("pipedream", "pipedream_2bw"):
        return 0.0
    if scheme == "zb_h1":
        return 2 * (d - 1) / (3 * n + 2 * (d - 1))
    if scheme == "zb_v":
        return (d - 1) / (6 * n + d - 1)
    raise ConfigurationError(f"no bubble formula for scheme {scheme!r}")


def activation_interval_formula(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> tuple[float, float]:
    """Table 2 / Table 3 per-worker activation intervals (micro-batches)."""
    d, f = depth, num_down_pipelines
    if scheme == "gpipe":
        return (float(n), float(n))
    if scheme in ("dapple", "pipedream", "pipedream_2bw"):
        return (min(1.0, float(n)), float(min(d, n)))
    if scheme == "gems":
        return (1.0, 1.0)
    if scheme == "chimera":
        if n < d:
            return (1.0, float(min(d, n)))
        return (d - d / (2 * f) + 1.0, float(d))
    if scheme == "zb_h1":
        # Same signature as DAPPLE: the builder caps the full stash
        # lifetime (forward to W) at the 1F1B bound D - s.
        return (min(1.0, float(n)), float(min(d, n)))
    if scheme == "zb_v":
        # 2D chunk stashes per worker (constant in N), each covering half
        # a conventional stage; perfectly balanced across workers.
        return (float(min(2 * d, 2 * n)), float(min(2 * d, 2 * n)))
    raise ConfigurationError(f"no activation formula for scheme {scheme!r}")


def weight_copies_formula(scheme: str, *, num_down_pipelines: int = 1) -> float:
    """Model-replica copies per worker (Table 2's weights column).

    PipeDream's extra stashed *versions* are raw parameters, not full
    state, and are modelled separately (:mod:`repro.sim.memory`).
    """
    if scheme in ("gpipe", "dapple", "pipedream", "pipedream_2bw", "zb_h1"):
        return 1.0
    if scheme == "gems":
        return 2.0
    if scheme == "chimera":
        return 2.0 * num_down_pipelines
    if scheme == "zb_v":
        # Two chunks per worker, but each is half a conventional stage: one
        # full stage-equivalent of weights, like the linear placements.
        return 1.0
    raise ConfigurationError(f"no weight formula for scheme {scheme!r}")


def scheme_properties(
    scheme: str, depth: int, n: int, *, num_down_pipelines: int = 1
) -> SchemeProperties:
    """The full analytic signature for one configuration."""
    return SchemeProperties(
        scheme=scheme,
        bubble_ratio=bubble_ratio_formula(
            scheme, depth, n, num_down_pipelines=num_down_pipelines
        ),
        weight_copies=weight_copies_formula(
            scheme, num_down_pipelines=num_down_pipelines
        ),
        activation_interval=activation_interval_formula(
            scheme, depth, n, num_down_pipelines=num_down_pipelines
        ),
        synchronous=scheme not in ("pipedream", "pipedream_2bw"),
    )
