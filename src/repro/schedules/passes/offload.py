"""Host-memory activation offload as a pass.

The memory/throughput frontier the planner explores had two axes:
recompute (trade FLOPs for stash bytes) and the memory-controllable
zero-bubble variants (trade ramp time for stash lifetime). This pass adds
the third axis real runtimes exploit: park each forward's activation
stash in *host* memory while it is not needed, and prefetch it back just
in time for the backward — the stash costs host↔device bandwidth instead
of device bytes or recompute FLOPs.

``offload`` rewrites any schedule:

* one :class:`~repro.schedules.ir.OpKind.OFFLOAD` op per
  ``(replica, stage, micro-batch)`` is inserted immediately after the
  forward that produced the stash — the stash's last pre-backward use —
  launching the device→host copy;
* one matching :class:`~repro.schedules.ir.OpKind.RELOAD` op is inserted
  immediately before the micro-batch's *first* stash consumer (backward
  part, or the RECOMPUTE op when the recompute pass ran first) on that
  worker, launching the host→device copy the consumer waits for.

Both ops block their worker only for the communication launch overhead;
the copies themselves occupy the worker's host↔device channel
(:class:`repro.sim.network.HostChannel`) and run concurrently with
compute. Because the RELOAD's only data dependency is the OFFLOAD's
completed device→host copy, the simulator starts it as soon as the worker
idles — any bubble in front of the consuming backward hides the reload
latency, which is exactly how real prefetched offload behaves
(cf. zero-bubble's host-side activation offload).

Insertion skips backwards over any contiguous run of ``RECV`` ops
directly in front of the consumer (the same idiom as the recompute pass),
so the reload sits before the consumer's just-in-time receives. Stashes
whose forward and first consumer are adjacent (gap below ``min_gap``
intervening ops) are left on the device: a back-to-back offload/reload
pair would save no peak memory and only add launch overhead.

The pass composes with recompute in either order: recompute-then-offload
reloads the stashed stage *input* before the RECOMPUTE op; offload-then-
recompute inserts the RECOMPUTE between the RELOAD and the backward
(recompute's insertion skips only RECVs). Run it before ``lower_p2p`` /
``fuse_comm`` — the canonical pipeline position (see ``docs/passes.md``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.passes.base import OFFLOAD, SchedulePass


def _is_stash_consumer(op: Operation) -> bool:
    """Ops that need the stash resident on the device."""
    return op.is_backward or op.is_backward_weight or op.is_recompute


class OffloadPass(SchedulePass):
    """Insert OFFLOAD/RELOAD pairs around each stash's idle interval."""

    name = "offload"
    provides = frozenset({OFFLOAD})

    def __init__(self, min_gap: str | int = 1):
        self.min_gap = int(min_gap)
        if self.min_gap < 1:
            raise ScheduleError(
                f"offload min_gap must be >= 1, got {self.min_gap}"
            )

    def params(self) -> tuple[tuple[str, object], ...]:
        if self.min_gap == 1:
            return ()
        return (("min_gap", self.min_gap),)

    def _plan(
        self, schedule: Schedule
    ) -> tuple[dict[tuple, list[int]], dict[tuple, list[int]]]:
        """Insertion plan: micro-batches to offload after each forward and
        to reload before each first consumer (keyed by ``op.key()``)."""
        # Stashes already offloaded: idempotence.
        covered: set[tuple[int, int, int]] = set()
        for _, op in schedule.all_ops():
            if op.is_offload:
                for mb in op.micro_batches:
                    covered.add((op.replica, op.stage, mb))

        offload_after: dict[tuple, list[int]] = {}
        reload_before: dict[tuple, list[int]] = {}
        for ops in schedule.worker_ops:
            fwd_at: dict[tuple[int, int, int], tuple[int, Operation]] = {}
            first_use: dict[tuple[int, int, int], tuple[int, Operation]] = {}
            for pos, op in enumerate(ops):
                if op.is_forward:
                    for mb in op.micro_batches:
                        fwd_at[(op.replica, op.stage, mb)] = (pos, op)
                elif _is_stash_consumer(op):
                    for mb in op.micro_batches:
                        key = (op.replica, op.stage, mb)
                        if key not in first_use:
                            first_use[key] = (pos, op)
            for key, (fpos, fwd) in fwd_at.items():
                if key in covered or key not in first_use:
                    continue
                cpos, consumer = first_use[key]
                if cpos - fpos - 1 < self.min_gap:
                    continue  # back-to-back: offloading saves nothing
                offload_after.setdefault(fwd.key(), []).append(key[2])
                reload_before.setdefault(consumer.key(), []).append(key[2])
        return offload_after, reload_before

    def run(self, schedule: Schedule) -> Schedule:
        offload_after, reload_before = self._plan(schedule)
        rows: list[list[Operation]] = []
        for ops in schedule.worker_ops:
            row: list[Operation] = []
            for op in ops:
                for mb in sorted(reload_before.get(op.key(), ())):
                    reload = Operation(
                        OpKind.RELOAD,
                        op.replica,
                        op.stage,
                        micro_batches=(mb,),
                        payload="stash",
                    )
                    # Slot the reload before the consumer's just-in-time
                    # RECVs (if lowering already ran), mirroring the
                    # recompute pass's insertion idiom.
                    at = len(row)
                    while at > 0 and row[at - 1].kind is OpKind.RECV:
                        at -= 1
                    row.insert(at, reload)
                row.append(op)
                for mb in sorted(offload_after.get(op.key(), ())):
                    row.append(
                        Operation(
                            OpKind.OFFLOAD,
                            op.replica,
                            op.stage,
                            micro_batches=(mb,),
                            payload="stash",
                        )
                    )
            rows.append(row)
        return replace(
            schedule,
            worker_ops=freeze_worker_ops(rows),
            metadata={**dict(schedule.metadata), "offload": True},
        )

    def check(self, before: Schedule, after: Schedule) -> None:
        offload_after, reload_before = self._plan(before)
        wanted = sum(len(mbs) for mbs in offload_after.values())
        offloads = after.count(OpKind.OFFLOAD) - before.count(OpKind.OFFLOAD)
        reloads = after.count(OpKind.RELOAD) - before.count(OpKind.RELOAD)
        if offloads != wanted or reloads != wanted:
            raise ScheduleError(
                f"offload pass planned {wanted} stash offload(s) but "
                f"inserted {offloads} OFFLOAD / {reloads} RELOAD op(s)"
            )
        if wanted and sum(len(m) for m in reload_before.values()) != wanted:
            raise ScheduleError(
                "offload pass planned mismatched offload/reload sets"
            )
