"""Bubble filling: hoist deferred weight-gradient ops into idle ticks.

The zero-bubble builders already park their ``W`` ops inside bubbles —
but only because their greedy list-schedulers were written that way. Any
*other* split-backward schedule (a hand-built one, a ported trace, a
future builder that emits ``W`` right after its ``Bi``) leaves the
deferral opportunity on the table.

``fill_bubbles`` generalizes the ZB-H1 tail-fill into a pass: it replays
the schedule under a deterministic reference cost model (unit
``f = b = w`` by default, the assumption of the zero-bubble papers),
keeps every non-``W`` op in its original per-worker order, and re-admits
each worker's ``W`` ops — FIFO, so their relative order is stable —
exactly when running one is strictly earlier than the worker's next
non-``W`` op could start. The result: ``W`` ops sit in genuine idle
ticks (hoisted ahead of stalled ops, or deferred past ready ones into
the drain bubbles), and a schedule that is already greedily packed is
reproduced unchanged — the pass is idempotent, and the postcondition
hook asserts the reference makespan never regresses.

Schedules without split backwards pass through untouched. The pass runs
before lowering: once SEND ops exist, inserting a ``W`` in front of one
would delay a message.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules.dependencies import build_dependency_graph
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.passes.base import LOWERED, SchedulePass
from repro.sim.cost import CostModel


def _reference_cost_model() -> CostModel:
    """The zero-bubble planning model: F = Bi = W = 1, fused B = 2."""
    return CostModel(
        forward_time=1.0,
        backward_ratio=2.0,
        backward_input_ratio=1.0,
        backward_weight_ratio=1.0,
    )


class FillBubblesPass(SchedulePass):
    """Re-seat deferred W ops into idle ticks of any split-backward schedule."""

    name = "fill_bubbles"
    forbids = frozenset({LOWERED})

    def __init__(self, cost_model: CostModel | None = None):
        if cost_model is not None and not isinstance(cost_model, CostModel):
            # Spec strings ("fill_bubbles:...") must fail at parse time
            # with an actionable message, not mid-replay.
            raise ScheduleError(
                f"fill_bubbles takes no spec arguments (a CostModel can "
                f"only be passed programmatically), got {cost_model!r}"
            )
        self.cost_model = cost_model or _reference_cost_model()

    def run(self, schedule: Schedule) -> Schedule:
        if not any(op.is_backward_weight for _, op in schedule.all_ops()):
            return schedule
        graph = build_dependency_graph(schedule)
        cm = self.cost_model
        num_workers = schedule.num_workers

        nonw: list[list[Operation]] = []
        pending_w: list[deque[Operation]] = []
        for ops in schedule.worker_ops:
            nonw.append([op for op in ops if not op.is_backward_weight])
            pending_w.append(
                deque(op for op in ops if op.is_backward_weight)
            )
        ptr = [0] * num_workers
        free = [0.0] * num_workers
        end: dict[tuple, float] = {}
        rows: list[list[Operation]] = [[] for _ in range(num_workers)]

        def ready_time(worker: int, op: Operation) -> float | None:
            """Earliest dependency-permitted start, None if a dep is untimed."""
            at = free[worker]
            for edge in graph.deps[op.key()]:
                src_end = end.get(edge.src)
                if src_end is None:
                    return None
                if edge.is_p2p_candidate:
                    src_worker = graph.location[edge.src][0]
                    src_end += cm.p2p_time(
                        src_worker, worker, edge.payload_units
                    )
                if src_end > at:
                    at = src_end
            return at

        total = sum(len(ops) for ops in schedule.worker_ops)
        done = 0
        while done < total:
            # Globally earliest startable action; W ranks after non-W on
            # ties so an already-packed schedule reproduces itself.
            best: tuple[float, int, int] | None = None
            best_op: Operation | None = None
            for w in range(num_workers):
                if ptr[w] < len(nonw[w]):
                    op = nonw[w][ptr[w]]
                    at = ready_time(w, op)
                    if at is not None:
                        key = (at, 0, w)
                        if best is None or key < best:
                            best, best_op = key, op
                if pending_w[w]:
                    op = pending_w[w][0]
                    at = ready_time(w, op)
                    if at is not None:
                        key = (at, 1, w)
                        if best is None or key < best:
                            best, best_op = key, op
            if best is None or best_op is None:
                stuck = [
                    (w, nonw[w][ptr[w]].short())
                    for w in range(num_workers)
                    if ptr[w] < len(nonw[w])
                ]
                stuck += [
                    (w, pending_w[w][0].short())
                    for w in range(num_workers)
                    if pending_w[w]
                ]
                raise ScheduleError(
                    f"fill_bubbles stalled with {total - done} ops pending; "
                    f"heads: {stuck[:8]}"
                )
            at, rank, w = best
            if rank == 0:
                ptr[w] += 1
            else:
                pending_w[w].popleft()
            finish = at + cm.compute_time(best_op)
            end[best_op.key()] = finish
            free[w] = finish
            rows[w].append(best_op)
            done += 1

        return replace(schedule, worker_ops=freeze_worker_ops(rows))

    def check(self, before: Schedule, after: Schedule) -> None:
        for b_row, a_row in zip(before.worker_ops, after.worker_ops):
            if [op for op in b_row if not op.is_backward_weight] != [
                op for op in a_row if not op.is_backward_weight
            ]:
                raise ScheduleError(
                    "fill_bubbles reordered non-weight-gradient ops"
                )
            if [op for op in b_row if op.is_backward_weight] != [
                op for op in a_row if op.is_backward_weight
            ]:
                raise ScheduleError(
                    "fill_bubbles changed the per-worker W op sequence"
                )
        from repro.sim.kernel import simulate_fast

        ref = self.cost_model
        was = simulate_fast(before, ref).compute_makespan
        now = simulate_fast(after, ref).compute_makespan
        if now > was + 1e-9:
            raise ScheduleError(
                f"fill_bubbles regressed the reference makespan "
                f"{was:g} -> {now:g} on {before.describe()}"
            )
