"""Gradient-synchronization placement as a pass.

``insert_sync`` strips any existing stage-granularity ``ALLREDUCE`` ops and
re-places one per hosted stage replica according to its mode — the §3.2
strategies that used to be reachable only through each builder:

* ``lazy`` (default) — append after all local computation (Figure 4a);
* ``eager`` — insert right after each stage's last local weight-gradient
  producer, overlapping the collective with the remaining compute
  (Figure 4b).

Because it is a pass, *any* scheme can now be re-synchronized — e.g.
``gpipe`` with eager sync — instead of only the modes its builder
hard-codes. Chimera's ``eager_opt`` needs the merged timeline's bubble
structure and therefore stays a builder concern; schemes with
per-micro-batch collectives (PipeDream) are rejected rather than silently
rewritten into per-stage synchronization.

The pass must run before lowering: eager insertion positions an allreduce
directly after a producer, and on a lowered schedule that would push the
producer's ``SEND`` back by the launch overhead.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules._sync import SYNC_MODES, append_lazy_sync, insert_eager_sync
from repro.schedules.ir import OpKind, Schedule, freeze_worker_ops
from repro.schedules.passes.base import LOWERED, SYNC, SchedulePass


class InsertSyncPass(SchedulePass):
    """Place one gradient allreduce per hosted stage replica."""

    name = "insert_sync"
    forbids = frozenset({LOWERED})
    provides = frozenset({SYNC})

    def __init__(self, mode: str = "lazy"):
        if mode not in ("lazy", "eager"):
            raise ScheduleError(
                f"insert_sync mode must be 'lazy' or 'eager', got {mode!r} "
                f"(builder-level modes: {SYNC_MODES})"
            )
        self.mode = mode

    def params(self) -> tuple[tuple[str, object], ...]:
        return (("mode", self.mode),)

    def run(self, schedule: Schedule) -> Schedule:
        for _, op in schedule.all_ops():
            if op.kind is OpKind.ALLREDUCE and op.micro_batches:
                raise ScheduleError(
                    f"insert_sync cannot re-place per-micro-batch "
                    f"collectives ({schedule.scheme} synchronizes after "
                    f"every backward); its sync placement is scheme-managed"
                )
        rows = [
            [op for op in ops if op.kind is not OpKind.ALLREDUCE]
            for ops in schedule.worker_ops
        ]
        if self.mode == "lazy":
            append_lazy_sync(rows, schedule.placement)
        else:
            insert_eager_sync(rows, schedule.placement, eager_pairs=None)
        return replace(schedule, worker_ops=freeze_worker_ops(rows))

    def check(self, before: Schedule, after: Schedule) -> None:
        hosted = sum(
            len(after.replicas_hosted_by(w)) for w in range(after.num_workers)
        )
        placed = after.count(OpKind.ALLREDUCE)
        if placed != hosted:
            raise ScheduleError(
                f"insert_sync placed {placed} allreduce ops for {hosted} "
                f"hosted stage replicas on {after.describe()}"
            )
