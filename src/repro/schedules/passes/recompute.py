"""Scheme-agnostic activation recomputation as a pass.

Until this pass existed, recomputation was a per-builder option: each
builder threaded a ``recompute`` flag into its stage-order helper, which
stamped it on the backward ops, and the cost model inflated those
backwards (B = 3F instead of 2F). Only some builders bothered.

``recompute`` instead rewrites *any* schedule:

* every forward's stash is demoted to the stage input (the memory model
  keys off the inserted ops — see :func:`repro.sim.memory.analyze_memory`);
* one explicit :class:`~repro.schedules.ir.OpKind.RECOMPUTE` op per
  ``(replica, stage, micro-batch)`` is inserted immediately before the
  micro-batch's *first* backward (part) on that worker, carrying the
  rematerialization cost (``recompute_backward_ratio - backward_ratio``
  forward-equivalents) that the flag-based path buried inside the
  backward.

Making rematerialization a schedulable op is not just bookkeeping: its
only data dependency is the stashed stage input, so the simulator starts
it as soon as the worker idles — a bubble in front of the backward now
*hides* the recompute cost instead of stretching the critical path, which
is how real runtimes prefetch rematerialization.

Backwards that already carry the ``recompute`` flag (Chimera's forward
doubling bakes recomputation into its schedule shape) are left alone —
their cost is already charged in-op — so the pass composes with every
builder. Insertion skips backwards any contiguous run of ``RECV`` ops
directly in front of the backward, which makes the pass commute *exactly*
(op-for-op) with ``lower_p2p`` and ``fuse_comm``; the property tests
assert it.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.passes.base import RECOMPUTE, SchedulePass


class RecomputePass(SchedulePass):
    """Insert explicit RECOMPUTE ops before each first backward."""

    name = "recompute"
    provides = frozenset({RECOMPUTE})

    def run(self, schedule: Schedule) -> Schedule:
        # Micro-batches already rematerialized (explicit op) or charged
        # in-op (flag): idempotence and composition with flag-based
        # builders both fall out of skipping them.
        covered: set[tuple[int, int, int]] = set()
        for _, op in schedule.all_ops():
            if op.is_recompute or (op.is_backward and op.recompute):
                for mb in op.micro_batches:
                    covered.add((op.replica, op.stage, mb))

        # The first backward part of each (replica, stage, mb) hosts the
        # insertion; group mbs per target op so a multi-micro-batch
        # backward gets one covering RECOMPUTE.
        seen: set[tuple[int, int, int]] = set()
        mbs_for: dict[tuple, list[int]] = {}
        for _, ops in enumerate(schedule.worker_ops):
            for op in ops:
                if not op.is_backward:
                    continue
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if key in seen or key in covered:
                        continue
                    seen.add(key)
                    mbs_for.setdefault(op.key(), []).append(mb)

        rows: list[list[Operation]] = []
        for ops in schedule.worker_ops:
            row: list[Operation] = []
            for op in ops:
                mbs = mbs_for.get(op.key())
                if mbs:
                    remat = Operation(
                        OpKind.RECOMPUTE,
                        op.replica,
                        op.stage,
                        micro_batches=tuple(mbs),
                    )
                    # Slot the rematerialization before the backward's
                    # just-in-time RECVs (if lowering already ran) so
                    # recompute∘lower == lower∘recompute op-for-op.
                    at = len(row)
                    while at > 0 and row[at - 1].kind is OpKind.RECV:
                        at -= 1
                    row.insert(at, remat)
                row.append(op)
            rows.append(row)
        return replace(
            schedule,
            worker_ops=freeze_worker_ops(rows),
            metadata={**dict(schedule.metadata), "recompute": True},
        )

    def check(self, before: Schedule, after: Schedule) -> None:
        needed: set[tuple[int, int, int]] = set()
        have: set[tuple[int, int, int]] = set()
        for _, op in after.all_ops():
            if op.is_backward:
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if op.recompute:
                        have.add(key)
                    else:
                        needed.add(key)
            elif op.is_recompute:
                for mb in op.micro_batches:
                    have.add((op.replica, op.stage, mb))
        uncovered = needed - have
        if uncovered:
            raise ScheduleError(
                f"recompute pass left {len(uncovered)} backward(s) without "
                f"rematerialization, e.g. (replica, stage, mb) = "
                f"{sorted(uncovered)[0]}"
            )
