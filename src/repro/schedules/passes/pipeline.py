"""Canonical pipeline specs: one ordered list of pass names.

Historically the transform configuration was smeared across three
booleans — ``recompute``/``lowered``/``fused`` — on
:class:`~repro.bench.harness.ExperimentConfig`,
:class:`~repro.perf.planner.PlanRequest`, the CLI, and the serve JSON
schema. Adding the offload pass would have meant a fourth. Instead, a
**pipeline spec** is the single way to say which passes run on top of a
scheme's defaults: a comma-separated string (``"recompute,offload,
lower_p2p"``) or a sequence of pass specs, each resolved and validated
against the :data:`~repro.schedules.passes.base.DEFAULT_PASS_MANAGER`
registry (unknown names raise with the registered names enumerated,
mirroring unknown-scheme errors).

:func:`normalize_pipeline` produces the canonical tuple form:

* ``recompute`` is hoisted to the head — it composes with the other
  pre-lowering passes in either order, and the canonical position keys
  the schedule cache once instead of per-permutation;
* ``lower_p2p`` and ``fuse_comm`` sink to the tail in that order (they
  are structural rewrites every other pass runs before), and
  ``fuse_comm`` without ``lower_p2p`` is rejected;
* duplicate pass names are rejected.

:func:`split_pipeline` decomposes a canonical spec into the
:class:`PipelineParts` the artifact cache consumes — the ``recompute``
boolean and ``passes`` option of
:func:`~repro.schedules.cache.schedule_artifacts` plus the
``lowered``/``fused`` flags of
:meth:`~repro.schedules.cache.ScheduleArtifacts.schedule_for` — so a
pipeline-configured run shares cache entries bit-for-bit with the
equivalent legacy-boolean run. :func:`pipeline_from_flags` is the
reverse map, used by the deprecated boolean aliases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.schedules.passes.base import DEFAULT_PASS_MANAGER, PassManager

#: Registered names of the passes the canonical ordering special-cases.
RECOMPUTE_PASS = "recompute"
OFFLOAD_PASS = "offload"
LOWER_PASS = "lower_p2p"
FUSE_PASS = "fuse_comm"

#: Accepted spec forms for a pipeline: ``None``, a comma-separated
#: string, or a sequence of pass specs.
PipelineSpec = "str | Sequence[str] | None"


def _spec_name(spec: str) -> str:
    return spec.strip().partition(":")[0]


def normalize_pipeline(
    spec: str | Sequence[str] | None, *, manager: PassManager | None = None
) -> tuple[str, ...]:
    """Validate a pipeline spec into its canonical tuple form.

    Accepts ``None`` (empty pipeline), a comma-separated string, or a
    sequence of pass specs (each a registered name with optional
    colon-separated arguments, e.g. ``"insert_sync:eager"``). Raises
    :class:`~repro.common.errors.ConfigurationError` for unknown pass
    names (enumerating the registered ones), bad pass arguments,
    duplicates, or ``fuse_comm`` without ``lower_p2p``.
    """
    manager = manager or DEFAULT_PASS_MANAGER
    if spec is None:
        return ()
    if isinstance(spec, str):
        specs = [s.strip() for s in spec.split(",") if s.strip()]
    else:
        specs = [str(s).strip() for s in spec if str(s).strip()]
    seen: set[str] = set()
    head: list[str] = []
    middle: list[str] = []
    tail: list[str] = []
    for item in specs:
        manager.create(item)  # validates the name and its arguments
        name = _spec_name(item)
        if name in seen:
            raise ConfigurationError(
                f"pass {name!r} appears twice in pipeline {specs!r}"
            )
        seen.add(name)
        if name == RECOMPUTE_PASS:
            head.append(item)
        elif name in (LOWER_PASS, FUSE_PASS):
            tail.append(item)
        else:
            middle.append(item)
    if FUSE_PASS in seen and LOWER_PASS not in seen:
        raise ConfigurationError(
            f"pipeline {specs!r} has {FUSE_PASS!r} without {LOWER_PASS!r} "
            f"(fuse_comm batches the SEND/RECV pairs the lowering pass "
            f"creates)"
        )
    tail.sort(key=lambda item: _spec_name(item) == FUSE_PASS)
    return tuple(head + middle + tail)


@dataclass(frozen=True)
class PipelineParts:
    """A canonical pipeline, decomposed for the artifact cache.

    ``base`` holds the pre-lowering passes other than ``recompute``
    (e.g. ``("offload",)``) — the ``passes=`` option of
    :func:`~repro.schedules.cache.schedule_artifacts`; ``recompute``,
    ``lowered`` and ``fused`` are the legacy booleans the cache keys and
    derived-form accessors already understand, so pipeline-configured
    and boolean-configured runs share cache entries.
    """

    base: tuple[str, ...] = ()
    recompute: bool = False
    lowered: bool = False
    fused: bool = False

    @property
    def offload(self) -> bool:
        """Does the pipeline include the offload pass?"""
        return any(_spec_name(s) == OFFLOAD_PASS for s in self.base)

    def pipeline(self) -> tuple[str, ...]:
        """Reassemble the canonical pipeline tuple."""
        out = ([RECOMPUTE_PASS] if self.recompute else []) + list(self.base)
        if self.lowered:
            out.append(LOWER_PASS)
        if self.fused:
            out.append(FUSE_PASS)
        return tuple(out)

    def build_options(self) -> dict[str, object]:
        """Builder/cache options for the pre-lowering part of the spec.

        Empty ``passes`` are omitted (not passed as ``passes=()``) so
        the cache key of a pass-less pipeline is identical to the
        legacy ``recompute=bool`` key.
        """
        options: dict[str, object] = {"recompute": self.recompute}
        if self.base:
            options["passes"] = self.base
        return options


def split_pipeline(spec: str | Sequence[str] | None) -> PipelineParts:
    """Decompose a pipeline spec (normalizing it first)."""
    pipeline = normalize_pipeline(spec)
    recompute = False
    lowered = False
    fused = False
    base: list[str] = []
    for item in pipeline:
        name = _spec_name(item)
        if name == RECOMPUTE_PASS:
            recompute = True
        elif name == LOWER_PASS:
            lowered = True
        elif name == FUSE_PASS:
            fused = True
        else:
            base.append(item)
    return PipelineParts(
        base=tuple(base), recompute=recompute, lowered=lowered, fused=fused
    )


def pipeline_from_flags(
    *,
    recompute: bool = False,
    lowered: bool = False,
    fused: bool = False,
    passes: Sequence[str] = (),
) -> tuple[str, ...]:
    """The canonical pipeline equivalent of the legacy boolean flags."""
    return PipelineParts(
        base=tuple(passes), recompute=recompute, lowered=lowered, fused=fused
    ).pipeline()
