"""The communication-lowering transform as a pass.

``lower_p2p`` is :func:`repro.schedules.lowering.lower_schedule` behind the
pass interface: every cross-worker activation/gradient dependency becomes
an explicit eager ``SEND`` / just-in-time ``RECV`` pair. The heavy lifting
stays in :mod:`repro.schedules.lowering` (the cache's lazily-derived
artifacts call it directly); this wrapper contributes the ordering facts —
it provides ``lowered`` and refuses to run twice — and the postcondition
that lowering only ever *adds* comm ops, never touches compute.
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Schedule
from repro.schedules.lowering import lower_schedule
from repro.schedules.passes.base import LOWERED, SchedulePass


class LowerP2PPass(SchedulePass):
    """Make cross-worker p2p communication explicit (SEND/RECV pairs)."""

    name = "lower_p2p"
    forbids = frozenset({LOWERED})
    provides = frozenset({LOWERED})

    def run(self, schedule: Schedule) -> Schedule:
        return lower_schedule(schedule)

    def check(self, before: Schedule, after: Schedule) -> None:
        kept = [op for _, op in after.all_ops() if not op.is_comm]
        original = [op for _, op in before.all_ops()]
        if kept != original:
            raise ScheduleError(
                f"lower_p2p changed non-comm ops of {before.describe()}"
            )
        if not after.lowered:
            raise ScheduleError("lower_p2p did not mark the schedule lowered")
