"""Pass infrastructure: :class:`SchedulePass`, pipelines, and the manager.

A *schedule pass* is a pure ``Schedule -> Schedule`` transform. Everything
that used to be a one-off mechanism — gradient-sync placement, p2p
lowering, activation recomputation — is expressed as a pass, and new
transforms (communication fusion, bubble filling) slot in beside them.
Passes compose into a :class:`PassPipeline`, which is the unit the
registry's default pipelines, the CLI's ``--passes`` flag, and the
schedule cache all speak.

Ordering is validated with *facts*: each pass declares the facts the input
schedule must already have (``requires``), must not have (``forbids``),
and the facts it establishes (``provides``) or destroys
(``invalidates``). :func:`schedule_facts` derives the initial fact set
from a schedule itself, so a pipeline is checked against the actual input
— ``fuse_comm`` before ``lower_p2p`` fails loudly, as does re-lowering.

Every pass has a *signature* — a stable string including its options —
and a pipeline's signature is the tuple of its pass signatures. The
signature is a pure function of the pipeline's configuration (never of
runtime state), which is what lets :mod:`repro.schedules.cache` key
memoized artifacts on it and guarantees two processes agree on the key.

Per-pass ``check`` hooks run after each pass when the pipeline executes
with validation on: cheap structural postconditions live here (op
conservation, comm-op bookkeeping, makespan non-regression for the
bubble filler); the full structural validator
(:mod:`repro.schedules.validate`) stays the heavyweight backstop.

Extension point: :meth:`PassManager.register` adds a new pass under a
name, after which it is usable in default pipelines, ``--passes`` specs,
and cache keys without touching any other layer.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Sequence

from repro.common.errors import ConfigurationError, ScheduleError
from repro.schedules.ir import OpKind, Schedule

# --------------------------------------------------------------------- facts
#: Gradient-synchronization ops are present.
SYNC = "sync"
#: Cross-worker communication is explicit (SEND/RECV ops).
LOWERED = "lowered"
#: SEND/RECV pairs are fused into batched transfer ops (no RECVs).
FUSED_COMM = "fused_comm"
#: Activation recomputation is in effect (flags or explicit RECOMPUTE ops).
RECOMPUTE = "recompute"
#: Activation stashes are offloaded to the host tier (OFFLOAD/RELOAD ops).
OFFLOAD = "offload"


def schedule_facts(schedule: Schedule) -> set[str]:
    """The fact set a pipeline's ordering check starts from.

    Derived from the schedule itself — metadata flags plus op inspection —
    so hand-built schedules and registry products are treated alike.
    """
    facts: set[str] = set()
    if schedule.lowered:
        facts.add(LOWERED)
    if schedule.metadata.get("fused_comm"):
        facts.add(FUSED_COMM)
    if schedule.metadata.get("recompute"):
        facts.add(RECOMPUTE)
    if schedule.metadata.get("offload"):
        facts.add(OFFLOAD)
    for _, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            facts.add(SYNC)
        elif op.is_recompute or (op.is_backward and op.recompute):
            facts.add(RECOMPUTE)
        elif op.is_host_comm:
            facts.add(OFFLOAD)
    return facts


class SchedulePass(abc.ABC):
    """One ``Schedule -> Schedule`` transform with declared ordering facts.

    Subclasses set the class attributes and implement :meth:`run`;
    :meth:`check` is an optional postcondition hook executed by
    :meth:`PassPipeline.run` when validation is on.
    """

    #: Registry name; also the head of the signature.
    name: str = ""
    #: Facts the input schedule must already have.
    requires: frozenset[str] = frozenset()
    #: Facts the input schedule must *not* have.
    forbids: frozenset[str] = frozenset()
    #: Facts established by this pass.
    provides: frozenset[str] = frozenset()
    #: Facts destroyed by this pass.
    invalidates: frozenset[str] = frozenset()

    def params(self) -> tuple[tuple[str, object], ...]:
        """Option items folded into the signature (default: none)."""
        return ()

    def signature(self) -> str:
        """Stable identity string: ``name`` or ``name:k=v,...``.

        Depends only on the pass's configuration, never on runtime state,
        so it is safe inside cache keys.
        """
        params = self.params()
        if not params:
            return self.name
        opts = ",".join(f"{k}={v}" for k, v in sorted(params))
        return f"{self.name}:{opts}"

    @abc.abstractmethod
    def run(self, schedule: Schedule) -> Schedule:
        """Apply the transform and return the new schedule."""

    def check(self, before: Schedule, after: Schedule) -> None:
        """Postcondition hook; raise :class:`ScheduleError` on violation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.signature()}>"


class PassPipeline:
    """An ordered sequence of passes applied as one transform.

    The pipeline validates its ordering against the input schedule's
    facts before running, executes each pass (with its ``check`` hook when
    ``validate`` is on), and stamps the accumulated pass signatures into
    ``metadata["passes"]`` so any schedule self-describes how it was
    produced.
    """

    def __init__(self, passes: Sequence[SchedulePass]):
        self.passes = tuple(passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def signature(self) -> tuple[str, ...]:
        """The pipeline's stable identity (cache-key component)."""
        return tuple(p.signature() for p in self.passes)

    def validate_order(self, initial_facts: Iterable[str] = ()) -> None:
        """Check requires/forbids of every pass against the running facts.

        Raises
        ------
        ScheduleError
            Naming the first mis-ordered pass and the missing/offending
            fact, e.g. ``fuse_comm requires fact 'lowered'``.
        """
        facts = set(initial_facts)
        for p in self.passes:
            missing = p.requires - facts
            if missing:
                raise ScheduleError(
                    f"pass {p.signature()!r} requires fact "
                    f"{sorted(missing)[0]!r} — run a pass providing it "
                    f"earlier in the pipeline {list(self.signature())}"
                )
            clash = p.forbids & facts
            if clash:
                raise ScheduleError(
                    f"pass {p.signature()!r} cannot run once fact "
                    f"{sorted(clash)[0]!r} holds — reorder the pipeline "
                    f"{list(self.signature())}"
                )
            facts |= p.provides
            facts -= p.invalidates

    def run(self, schedule: Schedule, *, validate: bool = True) -> Schedule:
        """Apply every pass in order; returns the transformed schedule."""
        self.validate_order(schedule_facts(schedule))
        current = schedule
        for p in self.passes:
            after = p.run(current)
            if validate:
                p.check(current, after)
            current = after
        if self.passes:
            applied = tuple(current.metadata.get("passes", ())) + self.signature()
            current = current.with_metadata(passes=applied)
        return current


class PassManager:
    """Name-based registry of pass factories plus spec parsing.

    A *spec* is a pass name with optional colon-separated arguments
    (``"insert_sync:eager"``); pipeline specs are comma-separated strings
    or sequences of specs. The process-wide default instance
    (:data:`DEFAULT_PASS_MANAGER`) is what the schedule registry, the
    cache, and the CLI use; registering a custom pass there makes it
    addressable everywhere at once.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., SchedulePass]] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., SchedulePass],
        *,
        replace: bool = False,
    ) -> None:
        """Register ``factory`` (called with the spec's string args)."""
        if not replace and name in self._factories:
            raise ConfigurationError(f"pass {name!r} is already registered")
        self._factories[name] = factory

    def available(self) -> tuple[str, ...]:
        """Registered pass names, sorted."""
        return tuple(sorted(self._factories))

    def create(self, spec: str) -> SchedulePass:
        """Instantiate one pass from its spec string."""
        name, _, rest = spec.strip().partition(":")
        factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown schedule pass {name!r}; available: "
                f"{list(self.available())}"
            )
        args = [a for a in rest.split(":") if a] if rest else []
        try:
            return factory(*args)
        except TypeError:
            raise ConfigurationError(
                f"bad arguments for pass {name!r} in spec {spec!r}"
            ) from None

    def pipeline(
        self, specs: str | Sequence[str | SchedulePass] | PassPipeline | None
    ) -> PassPipeline:
        """Build a :class:`PassPipeline` from any accepted spec form."""
        if specs is None:
            return PassPipeline(())
        if isinstance(specs, PassPipeline):
            return specs
        if isinstance(specs, SchedulePass):
            specs = [specs]
        elif isinstance(specs, str):
            specs = [s for s in specs.split(",") if s.strip()]
        passes = [
            s if isinstance(s, SchedulePass) else self.create(s) for s in specs
        ]
        return PassPipeline(passes)


#: The process-wide pass registry (see :class:`PassManager`).
DEFAULT_PASS_MANAGER = PassManager()


def register_pass(
    name: str, factory: Callable[..., SchedulePass], *, replace: bool = False
) -> None:
    """Register a pass factory on the default manager (extension hook)."""
    DEFAULT_PASS_MANAGER.register(name, factory, replace=replace)


def resolve_pipeline(
    specs: str | Sequence[str | SchedulePass] | PassPipeline | None,
) -> PassPipeline:
    """Parse a pipeline spec against the default manager."""
    return DEFAULT_PASS_MANAGER.pipeline(specs)


def pipeline_signature(
    specs: str | Sequence[str | SchedulePass] | PassPipeline | None,
) -> tuple[str, ...]:
    """The stable signature of a pipeline spec (cache-key form)."""
    return resolve_pipeline(specs).signature()
