"""Composable schedule-transform passes.

This package turns the transform layer into the system's extension
point: gradient-sync placement, p2p lowering, activation recomputation,
communication fusion, and bubble filling are all
:class:`~repro.schedules.passes.base.SchedulePass` objects
(``Schedule -> Schedule``) composed into
:class:`~repro.schedules.passes.base.PassPipeline` pipelines with
validated ordering and a stable signature the schedule cache keys on.

Built-in passes (registered on the default manager):

=================  ========================================================
``insert_sync``    Place per-stage gradient allreduces (``:lazy``/``:eager``)
``recompute``      Insert explicit RECOMPUTE ops; stash only stage inputs
``offload``        Park activation stashes in host memory (OFFLOAD/RELOAD)
``fill_bubbles``   Hoist deferred W ops into idle ticks (ZB tail-fill, generalized)
``lower_p2p``      Rewrite cross-worker edges into SEND/RECV pairs
``fuse_comm``      Batch each SEND/RECV pair into one sender-side transfer
=================  ========================================================

Canonical ordering: sync and compute-shaping passes (``insert_sync``,
``recompute``, ``offload``, ``fill_bubbles``) run before ``lower_p2p``;
``fuse_comm`` requires a lowered schedule. ``recompute`` composes on
either side of lowering/fusion (and commutes op-for-op); ``offload``
composes with ``recompute`` in either order. See ``docs/passes.md``.
"""

from repro.schedules.passes.base import (
    DEFAULT_PASS_MANAGER,
    FUSED_COMM,
    LOWERED,
    OFFLOAD,
    RECOMPUTE,
    SYNC,
    PassManager,
    PassPipeline,
    SchedulePass,
    pipeline_signature,
    register_pass,
    resolve_pipeline,
    schedule_facts,
)
from repro.schedules.passes.pipeline import (
    PipelineParts,
    normalize_pipeline,
    pipeline_from_flags,
    split_pipeline,
)
from repro.schedules.passes.bubbles import FillBubblesPass
from repro.schedules.passes.fuse import FuseCommPass
from repro.schedules.passes.lower import LowerP2PPass
from repro.schedules.passes.offload import OffloadPass
from repro.schedules.passes.recompute import RecomputePass
from repro.schedules.passes.sync import InsertSyncPass

register_pass("insert_sync", InsertSyncPass)
register_pass("recompute", RecomputePass)
register_pass("offload", OffloadPass)
register_pass("fill_bubbles", FillBubblesPass)
register_pass("lower_p2p", LowerP2PPass)
register_pass("fuse_comm", FuseCommPass)

__all__ = [
    "DEFAULT_PASS_MANAGER",
    "FUSED_COMM",
    "LOWERED",
    "OFFLOAD",
    "RECOMPUTE",
    "SYNC",
    "PassManager",
    "PassPipeline",
    "SchedulePass",
    "FillBubblesPass",
    "FuseCommPass",
    "InsertSyncPass",
    "LowerP2PPass",
    "OffloadPass",
    "PipelineParts",
    "RecomputePass",
    "normalize_pipeline",
    "pipeline_from_flags",
    "pipeline_signature",
    "split_pipeline",
    "register_pass",
    "resolve_pipeline",
    "schedule_facts",
]
