"""Communication fusion: batch each SEND/RECV pair into one transfer op.

Lowering emits two ops per message — an eager ``SEND`` on the producer's
worker and a just-in-time ``RECV`` on the consumer's, back-to-back
endpoints of one wire transfer on a channel. For the event engine that is
two heap events, two launch overheads, and three dependency edges
(ENQUEUE → TRANSFER → DELIVERY) per message; on a D=16, N=64 lowered
schedule the comm ops outnumber the compute ops almost two to one.

``fuse_comm`` coalesces each pair into a single *batched transfer*
carried by the ``SEND``: the ``RECV`` op disappears and the consumer
synchronizes on the transfer's arrival edge directly (the dependency
builder wires ``SEND → consumer`` with the wire timing when no matching
``RECV`` exists). Per message the worker-side launch (and its
``comm_launch_overhead``) is paid once instead of twice, the event engine
processes one event instead of two, and the dependency graph drops one
edge — which is where the measured event-engine speedup of the
``fused`` benchmark cases comes from.

Timing semantics are preserved exactly where they are defined to be: at
zero link occupancy (``beta = 0``) and zero launch overhead the fused
schedule's makespan equals the unfused one to 1e-9 for every scheme — the
``RECV`` was a zero-duration op completing at the transfer's arrival, and
the arrival edge reproduces that instant. With nonzero occupancy the
transfer still claims its channel FIFO slot from the ``SEND`` side, so
link contention is modelled identically; with nonzero launch overhead the
fused schedule is *cheaper* by one launch per message, which is the point
of batching.

The pass is idempotent (a fused schedule has no RECVs left to fuse) and
requires a lowered schedule.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules.ir import OpKind, Schedule, freeze_worker_ops
from repro.schedules.passes.base import FUSED_COMM, LOWERED, SchedulePass


class FuseCommPass(SchedulePass):
    """Coalesce SEND/RECV pairs into batched sender-side transfers."""

    name = "fuse_comm"
    requires = frozenset({LOWERED})
    provides = frozenset({FUSED_COMM})

    def run(self, schedule: Schedule) -> Schedule:
        rows = [
            [op for op in ops if op.kind is not OpKind.RECV]
            for ops in schedule.worker_ops
        ]
        return replace(
            schedule,
            worker_ops=freeze_worker_ops(rows),
            metadata={**dict(schedule.metadata), "fused_comm": True},
        )

    def check(self, before: Schedule, after: Schedule) -> None:
        if after.count(OpKind.RECV) != 0:
            raise ScheduleError("fuse_comm left RECV ops behind")
        sends = before.count(OpKind.SEND)
        if after.count(OpKind.SEND) != sends:
            raise ScheduleError("fuse_comm changed the SEND op set")
        expected = sum(len(r) for r in before.worker_ops) - before.count(
            OpKind.RECV
        )
        if sum(len(r) for r in after.worker_ops) != expected:
            raise ScheduleError("fuse_comm altered non-RECV ops")
