"""Gradient-synchronization op placement shared by the schedule builders.

The *position* of an ``ALLREDUCE`` op inside a worker's list encodes when the
collective is launched (paper §3.2): appended at the end means "synchronize
after all local computation" (Figure 4a); inserted right after the last local
backward of a stage means *eager* non-blocking synchronization that overlaps
the remaining computation (Figure 4b).
"""

from __future__ import annotations

from repro.schedules.ir import Operation, OpKind
from repro.schedules.placement import StagePlacement

#: Supported synchronization strategies.
SYNC_MODES = ("lazy", "eager", "eager_opt")


def append_lazy_sync(
    rows: list[list[Operation]], placement: StagePlacement
) -> None:
    """Append one allreduce per hosted stage replica at the end of each worker.

    Stages are appended in increasing gradient-availability order (later
    pipeline stages finish their backwards first, so their collectives are
    launched first, mirroring Figure 4a).
    """
    for worker, ops in enumerate(rows):
        hosted = sorted(
            placement.stages_on_worker(worker), key=lambda rs: -rs[1]
        )
        for replica, stage in hosted:
            ops.append(Operation(OpKind.ALLREDUCE, replica, stage))


def insert_eager_sync(
    rows: list[list[Operation]],
    placement: StagePlacement,
    *,
    eager_pairs: set[tuple[int, int, int]] | None = None,
) -> None:
    """Insert allreduce ops right after each stage's last local backward.

    Parameters
    ----------
    eager_pairs:
        Optional set of ``(worker, replica, stage)`` triples that should be
        synchronized eagerly; hosted pairs not in the set are appended lazily
        at the end (this implements ``eager-sync-opt``: middle stages, whose
        gradients only complete at the very end of local computation, gain
        nothing from an eager launch and would only add progression overhead,
        paper §3.2). ``None`` means *every* hosted pair is eager.
    """
    for worker, ops in enumerate(rows):
        hosted = placement.stages_on_worker(worker)
        lazy: list[tuple[int, int]] = []
        inserts: list[tuple[int, Operation]] = []
        for replica, stage in hosted:
            eager = eager_pairs is None or (worker, replica, stage) in eager_pairs
            if not eager:
                lazy.append((replica, stage))
                continue
            last_bwd = max(
                (
                    i
                    for i, op in enumerate(ops)
                    if op.produces_weight_grads
                    and op.replica == replica
                    and op.stage == stage
                ),
                default=None,
            )
            if last_bwd is None:
                lazy.append((replica, stage))
                continue
            inserts.append((last_bwd + 1, Operation(OpKind.ALLREDUCE, replica, stage)))
        # Insert from the back so earlier indices stay valid.
        for pos, op in sorted(inserts, key=lambda t: -t[0]):
            ops.insert(pos, op)
        for replica, stage in sorted(lazy, key=lambda rs: -rs[1]):
            ops.append(Operation(OpKind.ALLREDUCE, replica, stage))
