"""PipeDream schedule builder [Narayanan et al. 2019].

PipeDream runs the 1F1B pattern *without* periodic flushes: there is no
pipeline drain between iterations, so the steady state has (almost) no
bubbles — at the cost of weight staleness. The model is updated after each
micro-batch's backward pass, which requires stashing up to ``D - s`` weight
versions at stage ``s`` so that a micro-batch's backward uses the same
weights as its forward (weight-version consistency).

We model a window of ``N`` micro-batches of the infinite steady-state
schedule. Gradient synchronization across the ``W`` replicated pipelines
happens after *every* micro-batch (this is why the paper finds PipeDream's
best configurations use deeper pipelines — frequent allreduce is expensive),
represented by per-micro-batch ``ALLREDUCE`` ops.
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.onefb import onefb_stage_order
from repro.schedules.placement import StagePlacement


def build_pipedream_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build a PipeDream steady-state window of ``N`` micro-batches."""
    if depth < 1:
        raise ScheduleError("PipeDream needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("PipeDream needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    mbs = range(num_micro_batches)
    rows: list[list[Operation]] = []
    for stage in range(depth):
        ops = onefb_stage_order(stage, depth, mbs)
        # The model is updated (and synchronized across data-parallel
        # replicas) immediately after each micro-batch's backward pass.
        with_sync: list[Operation] = []
        for op in ops:
            with_sync.append(op)
            if op.is_backward:
                with_sync.append(
                    Operation(
                        OpKind.ALLREDUCE,
                        op.replica,
                        stage,
                        micro_batches=op.micro_batches,
                    )
                )
        rows.append(with_sync)
    return Schedule(
        scheme="pipedream",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=False,
        metadata={"weight_stashing": True},
    )
