"""Data-dependency extraction for schedules.

Given a :class:`~repro.schedules.ir.Schedule`, build the DAG of *data*
dependencies between operations:

* ``F(r, s, m)`` depends on ``F(r, s-1, m)`` — activation transfer between
  consecutive stages (a p2p message when the stages live on different
  workers);
* ``B(r, s, m)`` depends on ``B(r, s+1, m)`` — gradient transfer — and on
  ``F(r, s, m)`` — the stashed activation (or stashed stage input when
  recomputation is on). The same holds for the split input-gradient op
  ``Bi``; fused and split backwards can feed each other across stages
  (what matters is who produces the input gradient);
* ``W(r, s, m)`` (split weight gradient) depends on its own stage's
  ``Bi(r, s, m)`` — the deferred per-layer gradients of the backward walk —
  a purely local edge that never becomes a message;
* ``R(r, s, m)`` (explicit rematerialization, inserted by the recompute
  pass) depends on its own stage's forward — the stashed stage input it
  replays — another purely local edge; the backward it precedes is held
  behind it by worker program order;
* ``S(r, s)`` (allreduce) depends on every local *weight-gradient producer*
  of that stage replica — the fused backward, or the ``W`` half under
  backward splitting (or, for per-micro-batch synchronization as in
  PipeDream, on the producer of its micro-batch).

Lowered schedules (:mod:`repro.schedules.lowering`) additionally contain
explicit ``SEND``/``RECV`` pairs, and the graph builder wires them in:

* ``SEND`` depends on its local producer (``ENQUEUE`` — the forward whose
  activations it ships, or the input-gradient backward);
* ``RECV`` depends on its matching ``SEND`` (``TRANSFER`` — the one edge
  kind that travels over a link and carries a payload);
* the consumer depends on its ``RECV`` (``DELIVERY``, local) *instead of*
  holding a direct cross-worker ``ACTIVATION``/``GRADIENT`` edge. Edges
  between stages that share a worker are never lowered and keep their
  original kind.

Fused schedules (:mod:`repro.schedules.passes.fuse`) have no ``RECV``
ops: each message is one batched transfer carried by its ``SEND``, and
the consumer holds the ``TRANSFER`` edge *directly* — the engine times it
with the full wire model (latency, occupancy, channel FIFO), so fusion
changes the event count, never the communication semantics.

Worker-order dependencies (op ``i+1`` on a worker starts after op ``i``) are
*not* materialized here; the simulator and the runtime both respect the list
order directly. The validator combines both edge sets for its acyclicity
check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ValidationError
from repro.schedules.ir import Operation, OpKind, Schedule

OpKey = tuple


class EdgeKind(enum.Enum):
    """Why one operation must wait for another."""

    #: Forward output of the previous stage (p2p activation message when the
    #: stages live on different workers; rewritten by lowering).
    ACTIVATION = "activation"
    #: Input-gradient from the next stage (p2p gradient message when the
    #: stages live on different workers; rewritten by lowering).
    GRADIENT = "gradient"
    #: Locally stashed activation produced by the same stage's forward.
    STASH = "stash"
    #: Deferred weight-gradient inputs a split ``W`` op takes from its own
    #: stage's input-gradient half (local, never a message).
    DEFERRAL = "deferral"
    #: Local weight gradients that feed a gradient-synchronization collective.
    SYNC = "sync"
    #: A ``SEND``'s local handoff from the op that produced its payload.
    ENQUEUE = "enqueue"
    #: The wire: ``SEND -> RECV``. The only edge kind that occupies a link.
    TRANSFER = "transfer"
    #: A consumer's local handoff from the ``RECV`` that delivered its input.
    DELIVERY = "delivery"


@dataclass(frozen=True)
class Edge:
    """A directed dependency ``src -> dst`` (dst waits for src).

    ``payload_units`` is the number of micro-batch-equivalents the edge
    moves (shared micro-batches scaled by the consumer's part split),
    precomputed here once so the simulator never re-derives micro-batch
    intersections inside its scheduling loop. Non-message edges carry 0.
    """

    src: OpKey
    dst: OpKey
    kind: EdgeKind
    payload_units: float = 0.0

    @property
    def is_p2p_candidate(self) -> bool:
        """Edges that cross workers become point-to-point messages."""
        return self.kind in (EdgeKind.ACTIVATION, EdgeKind.GRADIENT)

    @property
    def is_transfer(self) -> bool:
        """True for the explicit ``SEND -> RECV`` wire edge."""
        return self.kind is EdgeKind.TRANSFER


@dataclass
class DependencyGraph:
    """The schedule's data-dependency DAG plus fast lookups.

    Attributes
    ----------
    schedule:
        The schedule the graph was built from.
    location:
        ``op.key() -> (worker, position)`` for every operation.
    deps:
        ``op.key() -> tuple of incoming edges`` (possibly empty).
    """

    schedule: Schedule
    location: dict[OpKey, tuple[int, int]]
    deps: dict[OpKey, tuple[Edge, ...]]

    def worker_of_key(self, key: OpKey) -> int:
        return self.location[key][0]

    def edges(self) -> Iterator[Edge]:
        for incoming in self.deps.values():
            yield from incoming

    def p2p_edges(self) -> Iterator[Edge]:
        """Implicit dependency edges that cross a worker boundary.

        These are exactly the edges the lowering pass rewrites; on a fully
        lowered schedule this yields nothing (see :meth:`transfer_edges`).
        """
        for edge in self.edges():
            if not edge.is_p2p_candidate:
                continue
            if self.worker_of_key(edge.src) != self.worker_of_key(edge.dst):
                yield edge

    def transfer_edges(self) -> Iterator[Edge]:
        """The explicit ``SEND -> RECV`` wire edges of a lowered schedule."""
        for edge in self.edges():
            if edge.is_transfer:
                yield edge


def _payload_between(src: Operation, dst: Operation) -> float:
    """Micro-batch units moved along a producer -> consumer edge."""
    shared = len(set(src.micro_batches) & set(dst.micro_batches))
    return shared / dst.part[1]


def build_dependency_graph(schedule: Schedule) -> DependencyGraph:
    """Construct the :class:`DependencyGraph` for ``schedule``.

    Raises
    ------
    ValidationError
        If an operation's producer is missing from the schedule (e.g. a
        backward whose forward was never scheduled, or a ``RECV`` with no
        matching ``SEND``) or an operation appears twice.
    """
    location: dict[OpKey, tuple[int, int]] = {}
    # Per-micro-batch producer indexes. Forward doubling means several
    # micro-batches can share one forward op, hence the per-mb map. Input-
    # gradient producers (fused B or split Bi) and weight-gradient producers
    # (fused B or split W) are indexed separately so split and fused
    # backwards compose through the same lookups.
    fwd_by_mb: dict[tuple[int, int, int], Operation] = {}  # (replica, stage, mb)
    grad_by_mb: dict[tuple[int, int, int, tuple[int, int]], Operation] = {}
    wgrad_by_mb: dict[tuple[int, int, int, tuple[int, int]], Operation] = {}
    # Comm-op indexes (lowered schedules only). Sends are looked up by their
    # full identity when wiring a RECV's TRANSFER edge; recvs are looked up
    # per micro-batch when redirecting a consumer's cross-worker edge, and
    # sends per destination micro-batch for fused schedules (the consumer
    # takes the TRANSFER edge itself when no RECV exists).
    send_index: dict[tuple, Operation] = {}
    send_by_dst_mb: dict[tuple[int, int, int, tuple[int, int], str], Operation] = {}
    recv_by_mb: dict[tuple[int, int, int, tuple[int, int], str], Operation] = {}
    remat_by_mb: dict[tuple[int, int, int], Operation] = {}
    # Host-tier transfer indexes (offloaded schedules only). Offloads and
    # reloads pair 1:1 on (replica, stage, micro_batches): the OFFLOAD's
    # device→host copy feeds exactly one RELOAD's host→device copy, which
    # in turn delivers to exactly one consuming backward/RECOMPUTE — the
    # single-valued wiring the simulator's transfer tables rely on.
    offload_by_mb: dict[tuple[int, int, int], Operation] = {}
    reload_by_mb: dict[tuple[int, int, int], Operation] = {}

    for worker, ops in enumerate(schedule.worker_ops):
        for pos, op in enumerate(ops):
            key = op.key()
            if key in location:
                raise ValidationError(
                    f"operation {op.short()} (replica {op.replica}, stage "
                    f"{op.stage}) scheduled twice"
                )
            location[key] = (worker, pos)
            if op.is_forward:
                for mb in op.micro_batches:
                    fwd_key = (op.replica, op.stage, mb)
                    if fwd_key in fwd_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} has two forwards at stage "
                            f"{op.stage} of replica {op.replica}"
                        )
                    fwd_by_mb[fwd_key] = op
            if op.is_backward:
                for mb in op.micro_batches:
                    bkey = (op.replica, op.stage, mb, op.part)
                    if bkey in grad_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} part {op.part} has two "
                            f"backwards at stage {op.stage} of replica {op.replica}"
                        )
                    grad_by_mb[bkey] = op
            if op.produces_weight_grads:
                for mb in op.micro_batches:
                    bkey = (op.replica, op.stage, mb, op.part)
                    if bkey in wgrad_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} part {op.part} has two "
                            f"weight-gradient producers at stage {op.stage} "
                            f"of replica {op.replica}"
                        )
                    wgrad_by_mb[bkey] = op
            if op.kind is OpKind.RECOMPUTE:
                for mb in op.micro_batches:
                    rkey = (op.replica, op.stage, mb)
                    if rkey in remat_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} has two RECOMPUTE ops at stage "
                            f"{op.stage} of replica {op.replica}"
                        )
                    remat_by_mb[rkey] = op
            if op.kind is OpKind.SEND:
                send_index[
                    (op.replica, op.stage, op.micro_batches, op.part, op.payload)
                ] = op
                for mb in op.micro_batches:
                    send_by_dst_mb[
                        (op.replica, op.peer_stage, mb, op.part, op.payload)
                    ] = op
            if op.kind is OpKind.RECV:
                for mb in op.micro_batches:
                    rkey = (op.replica, op.stage, mb, op.part, op.payload)
                    if rkey in recv_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} has two {op.payload} receives "
                            f"at stage {op.stage} of replica {op.replica}"
                        )
                    recv_by_mb[rkey] = op
            if op.kind is OpKind.OFFLOAD:
                for mb in op.micro_batches:
                    okey = (op.replica, op.stage, mb)
                    if okey in offload_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} has two OFFLOAD ops at stage "
                            f"{op.stage} of replica {op.replica}"
                        )
                    offload_by_mb[okey] = op
            if op.kind is OpKind.RELOAD:
                for mb in op.micro_batches:
                    okey = (op.replica, op.stage, mb)
                    if okey in reload_by_mb:
                        raise ValidationError(
                            f"micro-batch {mb} has two RELOAD ops at stage "
                            f"{op.stage} of replica {op.replica}"
                        )
                    reload_by_mb[okey] = op

    for okey, off in offload_by_mb.items():
        reload = reload_by_mb.get(okey)
        if reload is None:
            raise ValidationError(
                f"OFFLOAD of micro-batch {okey[2]} at stage {okey[1]} "
                f"(replica {okey[0]}) has no matching RELOAD"
            )
        if reload.micro_batches != off.micro_batches:
            raise ValidationError(
                f"OFFLOAD {off.short()} and RELOAD {reload.short()} cover "
                f"different micro-batches (replica {okey[0]}, stage {okey[1]})"
            )
    # Each RELOAD delivers to the *first* stash consumer (backward part or
    # RECOMPUTE) that follows it on its worker; later consumers are held
    # behind that one by program order. The consumer holds the host-wire
    # TRANSFER edge directly, like a fused transfer.
    consumer_reloads: dict[OpKey, list[Operation]] = {}
    for worker, ops in enumerate(schedule.worker_ops):
        for pos, op in enumerate(ops):
            if op.kind is not OpKind.RELOAD:
                continue
            needed = set(op.micro_batches)
            consumer = None
            for later in ops[pos + 1 :]:
                if (
                    (later.is_backward or later.is_recompute)
                    and later.replica == op.replica
                    and later.stage == op.stage
                    and needed & set(later.micro_batches)
                ):
                    consumer = later
                    break
            if consumer is None:
                raise ValidationError(
                    f"RELOAD {op.short()} (replica {op.replica}) has no "
                    f"consuming backward or RECOMPUTE after it on worker "
                    f"{worker}"
                )
            consumer_reloads.setdefault(consumer.key(), []).append(op)

    depth = schedule.num_stages
    deps: dict[OpKey, tuple[Edge, ...]] = {}

    for worker, ops in enumerate(schedule.worker_ops):
        for op in ops:
            incoming: list[Edge] = []
            if op.is_forward and op.stage > 0:
                for mb in op.micro_batches:
                    producer = fwd_by_mb.get((op.replica, op.stage - 1, mb))
                    if producer is None:
                        raise ValidationError(
                            f"forward of micro-batch {mb} at stage {op.stage} "
                            f"(replica {op.replica}) has no stage-{op.stage - 1} producer"
                        )
                    recv = recv_by_mb.get((op.replica, op.stage, mb, op.part, "act"))
                    send = send_by_dst_mb.get(
                        (op.replica, op.stage, mb, op.part, "act")
                    )
                    if recv is not None:
                        incoming.append(
                            Edge(recv.key(), op.key(), EdgeKind.DELIVERY)
                        )
                    elif send is not None:
                        # Fused schedule: the batched transfer delivers
                        # straight to the consumer.
                        incoming.append(
                            Edge(
                                send.key(),
                                op.key(),
                                EdgeKind.TRANSFER,
                                _payload_between(send, op),
                            )
                        )
                    else:
                        incoming.append(
                            Edge(
                                producer.key(),
                                op.key(),
                                EdgeKind.ACTIVATION,
                                _payload_between(producer, op),
                            )
                        )
            elif op.is_backward:
                for mb in op.micro_batches:
                    fwd = fwd_by_mb.get((op.replica, op.stage, mb))
                    if fwd is None:
                        raise ValidationError(
                            f"backward of micro-batch {mb} at stage {op.stage} "
                            f"(replica {op.replica}) has no matching forward"
                        )
                    incoming.append(Edge(fwd.key(), op.key(), EdgeKind.STASH))
                    if op.stage < depth - 1:
                        producer = grad_by_mb.get(
                            (op.replica, op.stage + 1, mb, op.part)
                        )
                        if producer is None:
                            raise ValidationError(
                                f"backward of micro-batch {mb} part {op.part} at "
                                f"stage {op.stage} (replica {op.replica}) has no "
                                f"stage-{op.stage + 1} gradient producer"
                            )
                        recv = recv_by_mb.get(
                            (op.replica, op.stage, mb, op.part, "grad")
                        )
                        send = send_by_dst_mb.get(
                            (op.replica, op.stage, mb, op.part, "grad")
                        )
                        if recv is not None:
                            incoming.append(
                                Edge(recv.key(), op.key(), EdgeKind.DELIVERY)
                            )
                        elif send is not None:
                            incoming.append(
                                Edge(
                                    send.key(),
                                    op.key(),
                                    EdgeKind.TRANSFER,
                                    _payload_between(send, op),
                                )
                            )
                        else:
                            incoming.append(
                                Edge(
                                    producer.key(),
                                    op.key(),
                                    EdgeKind.GRADIENT,
                                    _payload_between(producer, op),
                                )
                            )
            elif op.is_recompute:
                for mb in op.micro_batches:
                    fwd = fwd_by_mb.get((op.replica, op.stage, mb))
                    if fwd is None:
                        raise ValidationError(
                            f"RECOMPUTE of micro-batch {mb} at stage "
                            f"{op.stage} (replica {op.replica}) has no "
                            f"matching forward"
                        )
                    incoming.append(Edge(fwd.key(), op.key(), EdgeKind.STASH))
            elif op.is_backward_weight:
                for mb in op.micro_batches:
                    producer = grad_by_mb.get((op.replica, op.stage, mb, op.part))
                    if producer is None or producer.kind is not OpKind.BACKWARD_INPUT:
                        raise ValidationError(
                            f"weight gradient of micro-batch {mb} part {op.part} "
                            f"at stage {op.stage} (replica {op.replica}) has no "
                            f"matching input-gradient (Bi) producer"
                        )
                    incoming.append(
                        Edge(producer.key(), op.key(), EdgeKind.DEFERRAL)
                    )
            elif op.kind is OpKind.SEND:
                for mb in op.micro_batches:
                    if op.payload == "act":
                        producer = fwd_by_mb.get((op.replica, op.stage, mb))
                    else:
                        producer = grad_by_mb.get(
                            (op.replica, op.stage, mb, op.part)
                        )
                    if producer is None:
                        raise ValidationError(
                            f"{op.short()} (replica {op.replica}) has no local "
                            f"{op.payload} producer for micro-batch {mb}"
                        )
                    incoming.append(
                        Edge(producer.key(), op.key(), EdgeKind.ENQUEUE)
                    )
            elif op.kind is OpKind.RECV:
                src_stage = op.peer_stage
                send = send_index.get(
                    (op.replica, src_stage, op.micro_batches, op.part, op.payload)
                )
                if send is None:
                    raise ValidationError(
                        f"{op.short()} (replica {op.replica}) has no matching "
                        f"SEND at stage {src_stage}"
                    )
                incoming.append(
                    Edge(
                        send.key(),
                        op.key(),
                        EdgeKind.TRANSFER,
                        len(op.micro_batches) / op.part[1],
                    )
                )
            elif op.kind is OpKind.OFFLOAD:
                for mb in op.micro_batches:
                    fwd = fwd_by_mb.get((op.replica, op.stage, mb))
                    if fwd is None:
                        raise ValidationError(
                            f"OFFLOAD of micro-batch {mb} at stage {op.stage} "
                            f"(replica {op.replica}) has no matching forward"
                        )
                    incoming.append(Edge(fwd.key(), op.key(), EdgeKind.ENQUEUE))
            elif op.kind is OpKind.RELOAD:
                for mb in op.micro_batches:
                    off = offload_by_mb.get((op.replica, op.stage, mb))
                    if off is None:
                        raise ValidationError(
                            f"RELOAD of micro-batch {mb} at stage {op.stage} "
                            f"(replica {op.replica}) has no matching OFFLOAD"
                        )
                    incoming.append(
                        Edge(
                            off.key(),
                            op.key(),
                            EdgeKind.TRANSFER,
                            _payload_between(off, op),
                        )
                    )
            elif op.kind is OpKind.ALLREDUCE:
                targets = op.micro_batches or schedule.micro_batches_of_replica(
                    op.replica
                )
                for bkey, producer in wgrad_by_mb.items():
                    replica, stage, mb, _part = bkey
                    if replica != op.replica or stage != op.stage:
                        continue
                    if mb not in targets:
                        continue
                    if location[producer.key()][0] != worker:
                        continue
                    incoming.append(Edge(producer.key(), op.key(), EdgeKind.SYNC))
            # The first stash consumer after each RELOAD waits for the
            # host→device copy to arrive (host-wire TRANSFER edge).
            for reload in consumer_reloads.get(op.key(), ()):
                incoming.append(
                    Edge(
                        reload.key(),
                        op.key(),
                        EdgeKind.TRANSFER,
                        len(reload.micro_batches) / reload.part[1],
                    )
                )
            # Deduplicate (forward doubling can produce the same edge twice
            # when both micro-batches of a chunk share one producer chunk).
            unique: dict[tuple, Edge] = {(e.src, e.kind): e for e in incoming}
            deps[op.key()] = tuple(unique.values())

    return DependencyGraph(schedule=schedule, location=location, deps=deps)
