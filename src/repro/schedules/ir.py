"""Intermediate representation for pipeline-parallel schedules.

A :class:`Schedule` is the contract between the schedule builders
(:mod:`repro.schedules`), the discrete-event simulator (:mod:`repro.sim`), the
memory model, and the real training runtime (:mod:`repro.runtime`): a static,
per-worker *ordered* list of operations, plus the stage placement that says
which worker holds which (replica, stage) pair.

Time is *not* part of the IR — the simulator assigns start/end times given a
cost model, and the runtime executes operations as their data dependencies
are satisfied, preserving each worker's order.

Design notes
------------
* ``micro_batches`` is a tuple so a single operation can cover several
  micro-batches at once (*forward doubling*, paper §3.5 uses chunks of two).
* ``part = (index, num_parts)`` splits one micro-batch across several
  operations (*backward halving* runs every backward at half the micro-batch
  size, so each backward op covers one half).
* ``ALLREDUCE`` operations model gradient synchronization across stage
  replicas; their position inside a worker's list encodes the eager /
  lazy synchronization strategies of paper §3.2.
* The backward pass exists in two granularities: the fused ``BACKWARD``
  (input + weight gradients in one op, used by all the paper's schemes) and
  the split ``BACKWARD_INPUT`` / ``BACKWARD_WEIGHT`` pair that the
  zero-bubble schedule family (:mod:`repro.schedules.zero_bubble`) uses to
  move weight-gradient work into pipeline bubbles [Qi et al. 2023].
* ``SEND`` / ``RECV`` make point-to-point transfers first-class schedule
  operations. Builders never emit them — the lowering pass
  (:mod:`repro.schedules.lowering`) rewrites every cross-worker
  activation/gradient dependency into an explicit pair, which is what lets
  the simulator model link contention and the Gantt/trace renderers draw
  communication lanes. A comm op's ``payload`` says what travels
  (``"act"`` or ``"grad"``); its ``stage`` is the *endpoint it runs on*
  (the producer's stage for ``SEND``, the consumer's for ``RECV``) so the
  placement invariant — every op runs on the worker hosting its
  ``(replica, stage)`` — holds for comm ops too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.common.errors import ScheduleError
from repro.schedules.placement import StagePlacement


class OpKind(enum.Enum):
    """The kinds of work a pipeline worker performs."""

    #: Forward pass of one stage on one (or more) micro-batches.
    FORWARD = "F"
    #: Fused backward pass of one stage on one micro-batch (or a fraction of
    #: one): input gradient *and* weight gradient in a single operation.
    BACKWARD = "B"
    #: Input-gradient half of a split backward (zero-bubble ``B``): computes
    #: and propagates ``d input`` upstream; weight gradients are deferred.
    BACKWARD_INPUT = "Bi"
    #: Weight-gradient half of a split backward (zero-bubble ``W``):
    #: accumulates the parameter gradients the matching ``Bi`` deferred.
    #: Purely local — never sends a message.
    BACKWARD_WEIGHT = "W"
    #: Explicit activation rematerialization, produced by the recompute
    #: pass (:mod:`repro.schedules.passes.recompute`): replays the stage's
    #: forward from the stashed stage input so the following backward finds
    #: its activations. Purely local; sits immediately before the first
    #: backward (part) of its micro-batch, so any bubble in front of that
    #: backward hides the rematerialization cost.
    RECOMPUTE = "R"
    #: Gradient allreduce across the replicas of one stage.
    ALLREDUCE = "S"
    #: Explicit point-to-point send, produced by the lowering pass. Runs on
    #: the producer's worker; launches a transfer that occupies the link.
    SEND = "Tx"
    #: Explicit point-to-point receive, produced by the lowering pass. Runs
    #: on the consumer's worker; completes when the transfer arrives.
    RECV = "Rx"
    #: Host-memory offload of one micro-batch's activation stash, produced
    #: by the offload pass (:mod:`repro.schedules.passes.offload`). Runs on
    #: the worker hosting the stash; launches a device→host copy that
    #: occupies the worker's host channel. The stash leaves device memory
    #: once the copy completes and must be brought back by a ``RELOAD``
    #: before any backward (or recompute) of the micro-batch.
    OFFLOAD = "Ho"
    #: Host-memory reload of a previously offloaded stash. Launches the
    #: host→device copy (it may start only after the offload's copy has
    #: landed on the host); the consuming backward waits for its arrival.
    RELOAD = "Hr"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """One unit of scheduled work.

    Attributes
    ----------
    kind:
        Forward, backward, or gradient synchronization.
    replica:
        Model-replica index. Chimera with ``f`` down pipelines uses replicas
        ``0..2f-1`` (even = down direction, odd = up direction); unidirectional
        schemes use replica 0 only (GEMS uses 0 and 1).
    stage:
        Pipeline-stage index inside the replica, ``0 <= stage < D``.
    micro_batches:
        Micro-batches covered by this op. Length one except under forward
        doubling. Empty for stage-granularity ``ALLREDUCE`` ops.
    part:
        ``(index, num_parts)`` sub-micro-batch split. ``(0, 1)`` means the
        whole micro-batch; backward halving uses ``(0, 2)`` and ``(1, 2)``.
    recompute:
        For ``BACKWARD`` / ``BACKWARD_INPUT``: the forward activations were
        discarded and must be recomputed, increasing the op's cost (paper
        models B = 3F instead of B = 2F when recomputation is on; a split
        backward charges the rematerialization to its input-gradient half).
    payload:
        For ``SEND`` / ``RECV``: what travels — ``"act"`` (forward
        activations, stage ``s`` to ``s + 1``) or ``"grad"`` (input
        gradients, stage ``s`` to ``s - 1``). Empty for every other kind.
    """

    kind: OpKind
    replica: int
    stage: int
    micro_batches: tuple[int, ...] = ()
    part: tuple[int, int] = (0, 1)
    recompute: bool = False
    payload: str = ""

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ScheduleError(f"negative stage in {self!r}")
        if self.replica < 0:
            raise ScheduleError(f"negative replica in {self!r}")
        index, num_parts = self.part
        if num_parts < 1 or not (0 <= index < num_parts):
            raise ScheduleError(f"invalid part split {self.part} in {self!r}")
        if self.kind is not OpKind.ALLREDUCE and not self.micro_batches:
            raise ScheduleError(f"{self.kind} op must cover micro-batches: {self!r}")
        if len(set(self.micro_batches)) != len(self.micro_batches):
            raise ScheduleError(f"duplicate micro-batches in {self!r}")
        if self.is_comm:
            if self.payload not in ("act", "grad"):
                raise ScheduleError(
                    f"comm op needs payload 'act' or 'grad', got "
                    f"{self.payload!r} in {self!r}"
                )
        elif self.is_host_comm:
            if self.payload != "stash":
                raise ScheduleError(
                    f"host-transfer op needs payload 'stash', got "
                    f"{self.payload!r} in {self!r}"
                )
        elif self.payload:
            raise ScheduleError(f"payload on non-comm op {self!r}")

    @property
    def is_forward(self) -> bool:
        return self.kind is OpKind.FORWARD

    @property
    def is_backward(self) -> bool:
        """True for operations that compute the *input* gradient.

        Covers the fused ``BACKWARD`` and the split ``BACKWARD_INPUT``:
        both consume the upstream gradient message and the local activation
        stash, and both send ``d input`` to the previous stage.
        ``BACKWARD_WEIGHT`` is *not* a backward in this sense — see
        :attr:`produces_weight_grads`.
        """
        return self.kind in (OpKind.BACKWARD, OpKind.BACKWARD_INPUT)

    @property
    def is_backward_input(self) -> bool:
        return self.kind is OpKind.BACKWARD_INPUT

    @property
    def is_backward_weight(self) -> bool:
        return self.kind is OpKind.BACKWARD_WEIGHT

    @property
    def is_split_backward(self) -> bool:
        """True for either half of a split (zero-bubble) backward."""
        return self.kind in (OpKind.BACKWARD_INPUT, OpKind.BACKWARD_WEIGHT)

    @property
    def produces_weight_grads(self) -> bool:
        """True once this op completes the stage's parameter gradients.

        The fused ``BACKWARD`` and the split ``BACKWARD_WEIGHT`` both leave
        accumulated weight gradients behind; gradient-synchronization
        placement (and the allreduce data dependencies) key off this.
        """
        return self.kind in (OpKind.BACKWARD, OpKind.BACKWARD_WEIGHT)

    @property
    def is_recompute(self) -> bool:
        """True for the explicit rematerialization op of the recompute pass."""
        return self.kind is OpKind.RECOMPUTE

    @property
    def is_comm(self) -> bool:
        """True for the explicit point-to-point ops (``SEND`` / ``RECV``)."""
        return self.kind in (OpKind.SEND, OpKind.RECV)

    @property
    def is_offload(self) -> bool:
        return self.kind is OpKind.OFFLOAD

    @property
    def is_reload(self) -> bool:
        return self.kind is OpKind.RELOAD

    @property
    def is_host_comm(self) -> bool:
        """True for the host-tier transfer ops (``OFFLOAD`` / ``RELOAD``).

        Both run on the worker that hosts the stash — there is no remote
        endpoint; the transfer occupies the worker's own host↔device
        channel instead of a network link.
        """
        return self.kind in (OpKind.OFFLOAD, OpKind.RELOAD)

    @property
    def peer_stage(self) -> int:
        """The other endpoint's stage of a comm op.

        Single source of the direction convention: activations flow to
        ``stage + 1``, gradients to ``stage - 1``, and a ``RECV`` names the
        consumer's stage so its peer sits on the opposite side. Everything
        that resolves a comm op's peer worker — the engine, the executor,
        the validator, the dependency builder — goes through here.
        """
        if not self.is_comm:
            raise ScheduleError(f"peer_stage on non-comm op {self!r}")
        step = 1 if self.payload == "act" else -1
        if self.kind is OpKind.SEND:
            return self.stage + step
        return self.stage - step

    @property
    def is_compute(self) -> bool:
        return self.kind not in (
            OpKind.ALLREDUCE,
            OpKind.SEND,
            OpKind.RECV,
            OpKind.OFFLOAD,
            OpKind.RELOAD,
        )

    @property
    def work_units(self) -> float:
        """Micro-batch-equivalents of compute covered by this op.

        Forward doubling ops count 2.0; backward-halving halves count 0.5;
        allreduce and send/recv count 0 (communication, not compute). Split
        backward halves each count their full micro-batch coverage — the
        cost model decides how the fused backward's time divides between
        them.
        """
        if not self.is_compute:
            return 0.0
        return len(self.micro_batches) / self.part[1]

    def key(self) -> tuple:
        """Hashable identity used for dependency lookups and uniqueness."""
        return (
            self.kind,
            self.replica,
            self.stage,
            self.micro_batches,
            self.part,
            self.payload,
        )

    def short(self) -> str:
        """Compact human-readable form used by the Gantt renderer."""
        mbs = ",".join(str(m) for m in self.micro_batches)
        suffix = ""
        if self.part != (0, 1):
            suffix = f".{self.part[0]}/{self.part[1]}"
        if self.kind is OpKind.ALLREDUCE:
            return f"S{self.stage}r{self.replica}"
        if self.is_comm:
            return f"{self.kind.value}[{self.payload}]{mbs}s{self.stage}{suffix}"
        if self.is_host_comm:
            return f"{self.kind.value}{mbs}s{self.stage}{suffix}"
        if self.is_recompute:
            return f"R{mbs}s{self.stage}{suffix}"
        return f"{self.kind.value}{mbs}{suffix}"

    def with_recompute(self, recompute: bool = True) -> "Operation":
        """Return a copy with the recompute flag set."""
        return replace(self, recompute=recompute)


@dataclass(frozen=True)
class Schedule:
    """A complete static pipeline schedule for one training iteration.

    Attributes
    ----------
    scheme:
        Human-readable scheme name (``"chimera"``, ``"gpipe"``, ...).
    placement:
        Maps ``(replica, stage)`` to worker ranks; also fixes ``D`` and the
        replica count.
    num_micro_batches:
        ``N`` — micro-batches executed per pipeline group per iteration.
    worker_ops:
        ``worker_ops[w]`` is worker ``w``'s ordered operation list.
    synchronous:
        True for flush-based schemes (GPipe, DAPPLE, GEMS, Chimera); False
        for the asynchronous PipeDream family.
    metadata:
        Builder-specific annotations (e.g. concatenation strategy).
    """

    scheme: str
    placement: StagePlacement
    num_micro_batches: int
    worker_ops: tuple[tuple[Operation, ...], ...]
    synchronous: bool = True
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.worker_ops) != self.placement.num_workers:
            raise ScheduleError(
                f"worker_ops has {len(self.worker_ops)} rows but placement "
                f"declares {self.placement.num_workers} workers"
            )
        if self.num_micro_batches < 1:
            raise ScheduleError("a schedule must cover at least one micro-batch")

    # ------------------------------------------------------------------ views
    @property
    def num_stages(self) -> int:
        """``D`` — pipeline depth."""
        return self.placement.num_stages

    @property
    def num_workers(self) -> int:
        return self.placement.num_workers

    @property
    def num_replicas(self) -> int:
        return self.placement.num_replicas

    def ops_on(self, worker: int) -> tuple[Operation, ...]:
        """Worker ``worker``'s ordered operation list."""
        return self.worker_ops[worker]

    def all_ops(self) -> Iterator[tuple[int, Operation]]:
        """Yield ``(worker, op)`` for every scheduled operation."""
        for worker, ops in enumerate(self.worker_ops):
            for op in ops:
                yield worker, op

    def compute_ops(self) -> Iterator[tuple[int, Operation]]:
        """Yield only FORWARD/BACKWARD operations with their worker."""
        for worker, op in self.all_ops():
            if op.is_compute:
                yield worker, op

    def comm_ops(self) -> Iterator[tuple[int, Operation]]:
        """Yield only SEND/RECV operations with their worker."""
        for worker, op in self.all_ops():
            if op.is_comm:
                yield worker, op

    @property
    def lowered(self) -> bool:
        """True once the lowering pass made p2p communication explicit."""
        return bool(self.metadata.get("lowered", False))

    def worker_of(self, replica: int, stage: int) -> int:
        """The worker hosting ``stage`` of ``replica``."""
        return self.placement.worker_of(replica, stage)

    def count(self, kind: OpKind) -> int:
        """Total number of operations of ``kind`` in the schedule."""
        return sum(1 for _, op in self.all_ops() if op.kind is kind)

    def micro_batches_of_replica(self, replica: int) -> tuple[int, ...]:
        """Sorted micro-batch ids whose forward pass runs on ``replica``."""
        seen: set[int] = set()
        for _, op in self.all_ops():
            if op.is_forward and op.replica == replica:
                seen.update(op.micro_batches)
        return tuple(sorted(seen))

    def work_units_on(self, worker: int) -> float:
        """Total compute work (micro-batch equivalents, F + B) on a worker."""
        return sum(op.work_units for op in self.worker_ops[worker])

    def replicas_hosted_by(self, worker: int) -> tuple[tuple[int, int], ...]:
        """All ``(replica, stage)`` pairs placed on ``worker``."""
        return self.placement.stages_on_worker(worker)

    def with_metadata(self, **extra: object) -> "Schedule":
        """Return a copy with ``extra`` merged into :attr:`metadata`."""
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=merged)

    def describe(self) -> str:
        """One-line summary used in harness tables and error messages.

        Shows the worker count separately when it differs from the stage
        count (ZB-V folds ``2P`` chunk stages over ``P`` workers).
        """
        workers = ""
        if self.num_workers != self.num_stages:
            workers = f"workers={self.num_workers}, "
        return (
            f"{self.scheme}(D={self.num_stages}, N={self.num_micro_batches}, "
            f"{workers}replicas={self.num_replicas}, "
            f"{'sync' if self.synchronous else 'async'})"
        )


def freeze_worker_ops(rows: Sequence[Iterable[Operation]]) -> tuple[tuple[Operation, ...], ...]:
    """Convert mutable per-worker op lists to the immutable IR form."""
    return tuple(tuple(row) for row in rows)
