"""Process-wide memoization of schedule-construction artifacts.

Everything downstream of a schedule builder is a pure function of the
builder's inputs: ``build_schedule(scheme, D, N, **options)`` fully
determines the schedule, its dependency graph, the lowered schedule, and
the lowered schedule's graph. Yet before this module existed every planner
sweep, experiment grid, and benchmark case re-derived the whole chain from
scratch — at D=32 a single ZB-V build costs ~2 s while simulating it costs
~40 ms, so configuration searches over ``(scheme, W, D, B)`` grids were
dominated by rebuilding identical schedules (``W`` and ``B`` only change
the cost model, never the schedule, which depends on ``N = B̂ / (W * B)``).

:func:`schedule_artifacts` is the single entry point: it returns a
:class:`ScheduleArtifacts` handle whose derived forms (graph, lowered
schedule, lowered graph, fused schedule, fused graph) materialize lazily,
each exactly once per process. The cache is a bounded LRU keyed on
``(scheme, depth, num_micro_batches, sorted(options))`` — the options map
covers chunking/variant knobs such as ``recompute``, Chimera's ``concat``
and ``num_down_pipelines``, and the zero-bubble ``max_in_flight``. A
``passes`` option (extra pipeline stages, see
:mod:`repro.schedules.passes`) is normalized to the pipeline's stable
*signature* before entering the key, so equivalent spec spellings — a
comma string, a list, pre-built pass objects — share one entry, and two
processes derive identical keys for identical pipelines.

Safety
------
Cached schedules are shared across callers, so the cache hardens them
against accidental mutation: the one mutable field of the frozen
:class:`~repro.schedules.ir.Schedule` dataclass — its ``metadata`` dict —
is wrapped in a read-only :class:`types.MappingProxyType` before the
schedule enters the cache. In-place poisoning attempts raise
``TypeError``; the sanctioned ``with_metadata`` path returns a fresh copy
and leaves the cached instance untouched. Dependency graphs are shared
read-only structures; engine-side derived forms (the dense schedule and
the array kernel) attach to the graph and are themselves immutable caches.

Builder options that are not hashable bypass the cache entirely (the
artifacts are built fresh and not retained), so exotic callers never
break — they just don't get memoization.

Disk tier
---------
Beneath the LRU sits a persistent, content-addressed store
(:mod:`repro.schedules.diskcache`): a memory miss consults the disk before
building, and every derived form is written through as it materializes —
including the dependency graphs with their dense/kernel attachments — so
a restarted process (a fresh ``repro plan``, a redeployed ``repro serve``)
resumes at warm-cache speed. The disk key is exactly the LRU key, the
format is versioned, and corrupt entries are evicted on load, never
propagated.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Callable

from repro.common.errors import ReproError, ScheduleError
from repro.schedules.dependencies import DependencyGraph, build_dependency_graph
from repro.schedules.diskcache import DiskCacheStats, DiskScheduleCache
from repro.schedules.ir import Schedule
from repro.schedules.lowering import lower_schedule
from repro.schedules.passes import FuseCommPass, pipeline_signature
from repro.schedules.registry import build_schedule, builder_fingerprint

#: Default bound on retained entries (LRU eviction beyond it). A cached
#: entry holds the schedule plus up to three derived structures; bounding
#: the count keeps long planner sessions from accumulating every grid
#: point ever touched.
DEFAULT_MAX_ENTRIES = 128


def _freeze(schedule: Schedule) -> Schedule:
    """Return ``schedule`` with a read-only metadata mapping."""
    if isinstance(schedule.metadata, MappingProxyType):
        return schedule
    return replace(schedule, metadata=MappingProxyType(dict(schedule.metadata)))


class ScheduleArtifacts:
    """One cache entry: a schedule plus its lazily derived forms.

    All four artifacts are built at most once per entry; accessors are
    idempotent and safe under concurrent use (a rare race builds a
    duplicate which is immediately discarded in favour of the first).
    """

    __slots__ = (
        "schedule",
        "_graph",
        "_lowered",
        "_lowered_graph",
        "_fused",
        "_fused_graph",
        "_lock",
        "_persist",
    )

    #: Serialized artifact slots, in materialization order. ``snapshot``
    #: and ``from_snapshot`` iterate this list, so the disk payload layout
    #: has one source of truth.
    _SLOTS = (
        ("graph", "_graph"),
        ("lowered", "_lowered"),
        ("lowered_graph", "_lowered_graph"),
        ("fused", "_fused"),
        ("fused_graph", "_fused_graph"),
    )

    def __init__(
        self,
        schedule: Schedule,
        persist: "Callable[[ScheduleArtifacts], None] | None" = None,
    ):
        self.schedule = _freeze(schedule)
        self._graph: DependencyGraph | None = None
        self._lowered: Schedule | None = None
        self._lowered_graph: DependencyGraph | None = None
        self._fused: Schedule | None = None
        self._fused_graph: DependencyGraph | None = None
        self._lock = threading.Lock()
        self._persist = persist

    def _persist_now(self) -> None:
        """Write-through hook, fired after a derived form materializes."""
        if self._persist is not None:
            self._persist(self)

    def snapshot(self) -> dict:
        """Every materialized form, keyed by slot name (disk payload)."""
        out: dict = {"schedule": self.schedule}
        with self._lock:
            for name, attr in self._SLOTS:
                value = getattr(self, attr)
                if value is not None:
                    out[name] = value
        return out

    @classmethod
    def from_snapshot(
        cls,
        payload: dict,
        persist: "Callable[[ScheduleArtifacts], None] | None" = None,
    ) -> "ScheduleArtifacts":
        """Rehydrate an entry from a disk payload (missing slots stay lazy)."""
        arts = cls(payload["schedule"], persist=persist)
        for name, attr in cls._SLOTS:
            value = payload.get(name)
            if value is not None:
                setattr(arts, attr, value)
        return arts

    def graph(self) -> DependencyGraph:
        """Dependency graph of the (implicit-communication) schedule."""
        if self._graph is None:
            graph = build_dependency_graph(self.schedule)
            with self._lock:
                if self._graph is None:
                    self._graph = graph
            self._persist_now()
        return self._graph

    def lowered(self) -> Schedule:
        """The schedule with explicit SEND/RECV communication ops."""
        if self._lowered is None:
            lowered = _freeze(lower_schedule(self.schedule, graph=self.graph()))
            with self._lock:
                if self._lowered is None:
                    self._lowered = lowered
        return self._lowered

    def lowered_graph(self) -> DependencyGraph:
        """Dependency graph of the lowered schedule."""
        if self._lowered_graph is None:
            graph = build_dependency_graph(self.lowered())
            with self._lock:
                if self._lowered_graph is None:
                    self._lowered_graph = graph
            self._persist_now()
        return self._lowered_graph

    def fused(self) -> Schedule:
        """The lowered schedule with SEND/RECV pairs batched (fuse_comm)."""
        if self._fused is None:
            fused = _freeze(FuseCommPass().run(self.lowered()))
            with self._lock:
                if self._fused is None:
                    self._fused = fused
        return self._fused

    def fused_graph(self) -> DependencyGraph:
        """Dependency graph of the fused schedule."""
        if self._fused_graph is None:
            graph = build_dependency_graph(self.fused())
            with self._lock:
                if self._fused_graph is None:
                    self._fused_graph = graph
            self._persist_now()
        return self._fused_graph

    def schedule_for(self, lowered: bool, fused: bool = False) -> Schedule:
        """The implicit, lowered, or fused schedule, by flags."""
        if fused:
            if not lowered:
                raise ScheduleError(
                    "fused communication requires a lowered schedule"
                )
            return self.fused()
        return self.lowered() if lowered else self.schedule

    def graph_for(self, lowered: bool, fused: bool = False) -> DependencyGraph:
        """The matching dependency graph, by flags."""
        if fused:
            if not lowered:
                raise ScheduleError(
                    "fused communication requires a lowered schedule"
                )
            return self.fused_graph()
        return self.lowered_graph() if lowered else self.graph()

    def kernel_for(self, lowered: bool, fused: bool = False):
        """The matching array kernel (levelization, edge, FIFO tables).

        Kernels attach to their dependency graph
        (:func:`repro.sim.kernel.kernel_of`), so this materializes the
        graph and its kernel exactly once per cache entry — planner
        ranking and the bench suite reuse the same arrays across every
        cost model they evaluate. Imported lazily to keep the schedule
        layer importable without the simulation stack.
        """
        from repro.sim.kernel import kernel_of

        graph = self.graph_for(lowered, fused)
        fresh = getattr(graph, "_kernel", None) is None
        kernel = kernel_of(graph)
        if fresh:
            # The kernel rides on the graph in the pickled payload; persist
            # again so a warm process skips levelization too.
            self._persist_now()
        return kernel


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`ScheduleCache`."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ScheduleCache:
    """Bounded LRU of :class:`ScheduleArtifacts`, keyed on builder inputs.

    ``disk`` layers a persistent tier beneath the LRU: memory misses
    consult it before building, built entries write through to it as
    their derived forms materialize. ``disk=None`` runs memory-only.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        *,
        disk: DiskScheduleCache | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.disk = disk
        self._entries: OrderedDict[tuple, ScheduleArtifacts] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key(
        scheme: str, depth: int, num_micro_batches: int, options: dict
    ) -> tuple | None:
        """Cache key for one builder invocation, or None if unhashable.

        ``recompute=False`` is normalized away: it is every builder's
        default, so an explicit-False caller and a no-options caller must
        share one entry instead of building the same schedule twice. A
        ``passes`` option is replaced by its resolved pipeline
        *signature* (:func:`repro.schedules.passes.pipeline_signature`) —
        the stable identity the pass manager guarantees — so every
        spelling of one pipeline maps to one entry. Unknown pass names
        make the spec unhashable-equivalent (no retention): the build
        itself will raise the real error.

        Cost-parameterized schemes (``synthesize``) extend the key with
        their registered ``builder_fingerprint``: the fingerprint
        canonicalizes every builder option (defaults filled in), so it
        *replaces* the raw builder options in the key — two different
        cost models or budgets can never alias one entry, while an
        explicit-default caller shares the no-options caller's entry.
        The fingerprint is appended as a fifth element, so classic
        schemes keep their existing 4-tuple keys (and therefore their
        existing disk-tier content addresses). A fingerprint hook that
        raises makes the invocation uncacheable; the build itself then
        raises the authoritative error.
        """
        try:
            fingerprint = builder_fingerprint(scheme, options)
            normalized = {}
            for k, v in options.items():
                if k == "recompute":
                    if v is False:
                        continue
                elif k == "passes":
                    sig = pipeline_signature(v)  # stable, hashable
                    if not sig:
                        continue
                    v = sig
                elif fingerprint is not None:
                    continue  # builder option: the fingerprint covers it
                normalized[k] = v
            items = tuple(sorted(normalized.items()))
            hash((items, fingerprint))
        except (TypeError, ReproError):
            return None
        if fingerprint is None:
            return (scheme, depth, num_micro_batches, items)
        return (scheme, depth, num_micro_batches, items, fingerprint)

    def artifacts(
        self, scheme: str, depth: int, num_micro_batches: int, **options: object
    ) -> ScheduleArtifacts:
        """The cached artifacts for one builder invocation (LRU-updated)."""
        key = self.key(scheme, depth, num_micro_batches, options)
        if key is None:  # unhashable options: build fresh, don't retain
            return ScheduleArtifacts(
                build_schedule(scheme, depth, num_micro_batches, **options)
            )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
            self._misses += 1
        # Build (or load from disk) outside the lock: builders can take
        # seconds at depth 32, and a concurrent duplicate is harmless
        # (first insert wins).
        entry = self._load_or_build(key, scheme, depth, num_micro_batches, options)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def _load_or_build(
        self,
        key: tuple,
        scheme: str,
        depth: int,
        num_micro_batches: int,
        options: dict,
    ) -> ScheduleArtifacts:
        """Disk-tier lookup, falling back to a fresh build (write-through)."""
        persist = None
        if self.disk is not None:
            disk = self.disk

            def persist(arts: ScheduleArtifacts, _key=key) -> None:
                disk.store(_key, arts.snapshot())

            payload = disk.load(key)
            if payload is not None:
                try:
                    return ScheduleArtifacts.from_snapshot(payload, persist=persist)
                except (KeyError, TypeError, AttributeError, ReproError):
                    pass  # malformed payload: rebuild below
        entry = ScheduleArtifacts(
            build_schedule(scheme, depth, num_micro_batches, **options),
            persist=persist,
        )
        if persist is not None:
            persist(entry)
        return entry

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        """Current hit/miss/entry counters."""
        with self._lock:
            return CacheStats(self._hits, self._misses, len(self._entries))


#: The process-wide default cache used by the memoized entry points below
#: (and, through them, by the experiment harness, the planner, the serve
#: layer, and the benchmark suite). Its disk tier resolves its directory
#: lazily from ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) and can be
#: disabled with ``REPRO_CACHE_DISABLE=1``.
SCHEDULE_CACHE = ScheduleCache(disk=DiskScheduleCache())


def schedule_artifacts(
    scheme: str, depth: int, num_micro_batches: int, **options: object
) -> ScheduleArtifacts:
    """Memoized schedule + derived forms for one builder invocation."""
    return SCHEDULE_CACHE.artifacts(scheme, depth, num_micro_batches, **options)


def cached_build_schedule(
    scheme: str, depth: int, num_micro_batches: int, **options: object
) -> Schedule:
    """Drop-in memoized :func:`repro.schedules.registry.build_schedule`."""
    return schedule_artifacts(scheme, depth, num_micro_batches, **options).schedule


def clear_schedule_cache(*, disk: bool = False) -> int:
    """Reset the process-wide cache (tests, long-lived services).

    ``disk=True`` also deletes the persistent tier's entries; returns how
    many disk files were removed (0 for a memory-only clear).
    """
    SCHEDULE_CACHE.clear()
    if disk and SCHEDULE_CACHE.disk is not None:
        return SCHEDULE_CACHE.disk.clear()
    return 0


def schedule_cache_stats() -> CacheStats:
    """Counters of the process-wide cache."""
    return SCHEDULE_CACHE.stats()


def disk_cache_stats() -> DiskCacheStats | None:
    """Counters/footprint of the process-wide disk tier (None if absent)."""
    if SCHEDULE_CACHE.disk is None:
        return None
    return SCHEDULE_CACHE.disk.stats()
