"""Stage-to-worker placements.

The placement fixes which worker holds the weights (and executes the
forward/backward passes) of every ``(replica, stage)`` pair inside one
pipeline group of ``D`` workers.

Paper mapping rules (§3.1 and §3.6):

* *linear* — stage ``s`` of the single replica lives on worker ``s``
  (GPipe, DAPPLE, PipeDream, PipeDream-2BW).
* *bidirectional* with ``f`` down + ``f`` up pipelines — down pipeline ``i``
  (replica ``2i``) maps stage ``s`` to worker ``(i * D/f + s) mod D``; up
  pipeline ``i`` (replica ``2i + 1``) uses exactly the reverse worker order
  of its down twin. ``f = 1`` is the Chimera default and also the GEMS
  placement (two model replicas in opposite directions).
* *v-shaped* (zero-bubble ZB-V [Qi et al. 2024]) — one replica whose
  ``2p`` model chunks fold back over ``p`` workers: worker ``i`` hosts
  chunk ``i`` and chunk ``2p - 1 - i``, so the first and last chunks share
  worker 0 and the pipeline turns around on worker ``p - 1``. This is the
  one placement with more stages than workers (``num_workers`` is stored
  explicitly).

Data parallelism (width ``W``) replicates whole pipeline groups and is
handled outside the placement — the allreduce *group size* used by the cost
models is ``replicas_of_stage * W``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.common.errors import ScheduleError


@dataclass(frozen=True)
class StagePlacement:
    """Immutable map from ``(replica, stage)`` to worker rank.

    ``table[r][s]`` is the worker hosting stage ``s`` of replica ``r``.
    ``workers`` is ``None`` for the classic one-stage-per-worker placements
    (worker count equals stage count, every replica's row is a permutation);
    multi-chunk placements like :meth:`vshaped` set it explicitly and may
    host several stages of one replica on the same worker.
    """

    num_stages: int
    table: tuple[tuple[int, ...], ...]
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise ScheduleError("a placement needs at least one stage")
        if not self.table:
            raise ScheduleError("a placement needs at least one replica")
        if self.workers is not None and self.workers < 1:
            raise ScheduleError("a placement needs at least one worker")
        for replica, row in enumerate(self.table):
            if len(row) != self.num_stages:
                raise ScheduleError(
                    f"replica {replica} maps {len(row)} stages, expected {self.num_stages}"
                )
            if self.workers is None:
                if sorted(row) != list(range(self.num_stages)):
                    raise ScheduleError(
                        f"replica {replica} must place its stages on distinct "
                        f"workers 0..{self.num_stages - 1}, got {row}"
                    )
            elif sorted(set(row)) != list(range(self.workers)):
                raise ScheduleError(
                    f"replica {replica} must cover every worker "
                    f"0..{self.workers - 1}, got {row}"
                )

    # ------------------------------------------------------------ constructors
    @staticmethod
    def linear(num_stages: int) -> "StagePlacement":
        """Single replica, stage ``s`` on worker ``s``."""
        return StagePlacement(num_stages, (tuple(range(num_stages)),))

    @staticmethod
    def reversed_linear(num_stages: int) -> "StagePlacement":
        """Single replica, stage ``s`` on worker ``D - 1 - s`` (an up pipeline)."""
        return StagePlacement(num_stages, (tuple(reversed(range(num_stages))),))

    @staticmethod
    def bidirectional(num_stages: int, num_down_pipelines: int = 1) -> "StagePlacement":
        """Paper §3.6 placement with ``f`` down and ``f`` up pipelines.

        Requires an even ``D`` and ``f`` dividing ``D/2`` (``f`` must be a
        divisor of ``Q = D/2`` per the paper).
        """
        depth = num_stages
        f = num_down_pipelines
        if depth % 2 != 0:
            raise ScheduleError(
                f"bidirectional placement needs an even number of stages, got D={depth}"
            )
        if f < 1 or (depth // 2) % f != 0:
            raise ScheduleError(
                f"the number of down pipelines f={f} must divide Q=D/2={depth // 2}"
            )
        rows: list[tuple[int, ...]] = []
        stride = depth // f
        for i in range(f):
            down = tuple((i * stride + s) % depth for s in range(depth))
            up = tuple(reversed(down))
            rows.append(down)
            rows.append(up)
        return StagePlacement(depth, tuple(rows))

    @staticmethod
    def vshaped(num_workers: int) -> "StagePlacement":
        """ZB-V placement: ``2p`` chunks folded over ``p`` workers.

        Chunk ``s < p`` lives on worker ``s`` (the descending arm of the V);
        chunk ``s >= p`` lives on worker ``2p - 1 - s`` (the ascending arm),
        so worker 0 hosts both the first and the last chunk — the property
        that lets ZB-V start the optimizer step without a cross-worker
        round trip.
        """
        p = num_workers
        if p < 1:
            raise ScheduleError("v-shaped placement needs at least one worker")
        row = tuple(s if s < p else 2 * p - 1 - s for s in range(2 * p))
        return StagePlacement(2 * p, (row,), workers=p)

    # ----------------------------------------------------------------- queries
    @property
    def num_replicas(self) -> int:
        return len(self.table)

    @property
    def num_workers(self) -> int:
        return self.num_stages if self.workers is None else self.workers

    def worker_of(self, replica: int, stage: int) -> int:
        """Worker hosting ``stage`` of ``replica``."""
        try:
            return self.table[replica][stage]
        except IndexError:
            raise ScheduleError(
                f"(replica={replica}, stage={stage}) outside placement with "
                f"{self.num_replicas} replicas x {self.num_stages} stages"
            ) from None

    def direction(self, replica: int) -> int:
        """+1 if the replica's stages advance with worker rank, -1 otherwise.

        Only meaningful for D >= 2; a single-stage pipeline reports +1.
        """
        if self.num_stages == 1:
            return 1
        row = self.table[replica]
        step = row[1] - row[0]
        return 1 if step % self.num_stages == 1 else -1

    @lru_cache(maxsize=None)
    def stages_on_worker(self, worker: int) -> tuple[tuple[int, int], ...]:
        """All ``(replica, stage)`` pairs hosted by ``worker``, sorted."""
        pairs = [
            (replica, stage)
            for replica, row in enumerate(self.table)
            for stage, host in enumerate(row)
            if host == worker
        ]
        return tuple(sorted(pairs))

    @lru_cache(maxsize=None)
    def stage_replica_group(self, stage: int) -> tuple[int, ...]:
        """Sorted distinct workers hosting ``stage`` in any replica.

        This is the (intra-pipeline-group part of the) allreduce group for
        the gradients of ``stage``.
        """
        return tuple(sorted({row[stage] for row in self.table}))

    def replicas_of_stage(self, stage: int) -> int:
        """Number of model replicas holding a copy of ``stage``'s weights."""
        return self.num_replicas

    def first_stage_worker(self, replica: int) -> int:
        return self.table[replica][0]

    def last_stage_worker(self, replica: int) -> int:
        return self.table[replica][-1]
