"""Lowering pass: make point-to-point communication explicit.

Every schedule builder emits *implicit* communication — a cross-worker
``ACTIVATION``/``GRADIENT`` dependency edge whose alpha-beta cost the
simulator used to tack onto the consumer. That model cannot express link
contention (two transfers sharing a link never queue), cannot overlap a
transfer with the sender's next compute op explicitly, and gives the Gantt
and Chrome-trace renderers nothing to draw.

``lower_schedule`` rewrites a schedule so that every cross-worker
activation/gradient flow becomes an explicit
:class:`~repro.schedules.ir.OpKind.SEND` / ``RECV`` pair placed on the two
workers' timelines (the same move the zero-bubble runtime makes with its
``SEND_FORWARD``/``RECV_FORWARD`` ``ScheduledNode`` types):

* **eager send** — the ``SEND`` sits immediately after its producer in the
  source worker's order, so the transfer launches as soon as the payload
  exists and overlaps with whatever the worker computes next;
* **just-in-time receive** — the ``RECV`` sits immediately before its
  consumer in the destination worker's order, preserving the consumer's
  position and making lowering timing-neutral under contention-free links;
* **in-order per link** — sends on one worker launch in program order, and
  the simulator services each link's transfers FIFO, so messages between a
  worker pair can never overtake each other (the ordering guarantee real
  p2p transports provide).

Edges between stages that share a worker (e.g. the fold of the ZB-V
placement, or Chimera replicas crossing on one worker) are *not* lowered —
there is no link to occupy.

The pass consumes only the :class:`~repro.schedules.dependencies.
DependencyGraph`, never builder internals, so every registered scheme —
and any future builder — lowers without per-scheme code.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ScheduleError
from repro.schedules.dependencies import (
    DependencyGraph,
    EdgeKind,
    build_dependency_graph,
)
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops


def is_lowered(schedule: Schedule) -> bool:
    """True if ``schedule`` already carries explicit SEND/RECV ops."""
    return schedule.lowered


def lower_schedule(
    schedule: Schedule, *, graph: DependencyGraph | None = None
) -> Schedule:
    """Rewrite implicit cross-worker edges into explicit SEND/RECV pairs.

    Parameters
    ----------
    schedule:
        Any validated schedule from any builder.
    graph:
        Optionally a pre-built dependency graph of ``schedule`` (skips
        rebuilding it).

    Returns
    -------
    Schedule
        A new schedule with the same compute ops in the same order, comm
        ops inserted, and ``metadata["lowered"] = True``.

    Raises
    ------
    ScheduleError
        If ``schedule`` is already lowered (lowering is not idempotent by
        design: a second pass would try to re-lower the comm ops' edges).
    """
    if schedule.lowered:
        raise ScheduleError(
            f"schedule {schedule.describe()} is already lowered"
        )
    if graph is None:
        graph = build_dependency_graph(schedule)

    producers: dict[tuple, Operation] = {
        op.key(): op for _, op in schedule.all_ops()
    }

    # One (SEND, RECV) pair per cross-worker message edge. Sort edges by
    # (src worker, src position, dst worker, dst position) so multiple
    # sends hanging off one producer launch in the order their consumers
    # run — eager FIFO matches consumption order.
    edges = sorted(
        graph.p2p_edges(),
        key=lambda e: graph.location[e.src] + graph.location[e.dst],
    )
    sends_after: dict[tuple, list[Operation]] = {}
    recvs_before: dict[tuple, list[Operation]] = {}
    for edge in edges:
        src_op = producers[edge.src]
        dst_op = producers[edge.dst]
        payload = "act" if edge.kind is EdgeKind.ACTIVATION else "grad"
        shared = tuple(
            sorted(set(src_op.micro_batches) & set(dst_op.micro_batches))
        )
        send = Operation(
            OpKind.SEND,
            dst_op.replica,
            src_op.stage,
            micro_batches=shared,
            part=dst_op.part,
            payload=payload,
        )
        recv = Operation(
            OpKind.RECV,
            dst_op.replica,
            dst_op.stage,
            micro_batches=shared,
            part=dst_op.part,
            payload=payload,
        )
        sends_after.setdefault(edge.src, []).append(send)
        recvs_before.setdefault(edge.dst, []).append(recv)

    rows: list[list[Operation]] = []
    for ops in schedule.worker_ops:
        row: list[Operation] = []
        for op in ops:
            row.extend(recvs_before.get(op.key(), ()))
            row.append(op)
            row.extend(sends_after.get(op.key(), ()))
        rows.append(row)

    return replace(
        schedule,
        worker_ops=freeze_worker_ops(rows),
        metadata={**dict(schedule.metadata), "lowered": True},
    )
