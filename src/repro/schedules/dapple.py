"""DAPPLE schedule builder [Fan et al. 2021].

DAPPLE is the synchronous 1F1B schedule: warmup forwards per stage, a steady
one-forward-one-backward phase, a backward drain, and a pipeline flush with
gradient synchronization. Same bubble ratio as GPipe, ``(D-1)/(N+D-1)`` per
pass, but the in-flight micro-batch count — and with it the activation
memory — is capped at ``D - s`` per stage instead of ``N`` (Table 2).

The builder emits compute rows only; gradient synchronization (and, when
requested, activation recomputation) comes from the registry's pass
pipeline (:mod:`repro.schedules.passes`).
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.onefb import onefb_stage_order
from repro.schedules.placement import StagePlacement


def build_dapple_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build the DAPPLE (synchronous 1F1B) schedule."""
    if depth < 1:
        raise ScheduleError("DAPPLE needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("DAPPLE needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    mbs = range(num_micro_batches)
    rows: list[list[Operation]] = [
        onefb_stage_order(stage, depth, mbs) for stage in range(depth)
    ]
    return Schedule(
        scheme="dapple",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
    )
