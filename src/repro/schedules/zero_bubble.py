"""Zero-bubble schedule family: ZB-H1 and ZB-V [Qi et al. 2023/2024].

Both schedules exploit the split backward of the IR
(:class:`~repro.schedules.ir.OpKind.BACKWARD_INPUT` /
:class:`~repro.schedules.ir.OpKind.BACKWARD_WEIGHT`): only the
input-gradient half ``B`` sits on the inter-stage critical path, while the
weight-gradient half ``W`` is free to move into the bubbles a 1F1B-style
schedule would otherwise idle through. With the practical cost split
``b = w = F`` this removes roughly two thirds of DAPPLE's ``2(D-1)``
bubbles (ZB-H1) or nearly all of them (ZB-V).

* **ZB-H1** keeps DAPPLE's linear placement and 1F1B shape. Warmup and
  steady state are unchanged — the gain comes from deferring each ``W``
  until the worker would otherwise idle, which fills the backward-drain
  bubbles at the tail. The in-flight cap of ``D - s`` micro-batches per
  stage is enforced on the *full* stash lifetime (forward to ``W``), so the
  activation signature is exactly DAPPLE's ``(1, min(D, N))`` while the
  bubble drops from ``3(D-1)`` to ``2(D-1)`` worker-time units under the
  practical model (makespan ``3N + 2(D-1)`` instead of ``3(N + D - 1)``).
* **ZB-V** splits the model into ``2D`` chunks folded over ``D`` workers in
  a "V": worker ``i`` hosts chunk ``i`` and chunk ``2D - 1 - i``
  (:meth:`~repro.schedules.placement.StagePlacement.vshaped`). Each worker
  owns both an early and a late chunk, so forwards, input-gradients and
  weight-gradients of different micro-batches interleave on every worker
  and the steady state approaches zero bubbles, with per-worker activation
  memory capped at a constant ``2D`` chunk stashes (about ``D`` full-stage
  stashes) independent of ``N``.

Rather than hard-coding the papers' handcrafted tick tables, both builders
run a deterministic greedy list-scheduler (the approach of the zero-bubble
repository's ``zbv_greedy`` module): simulate the pipeline under unit
costs, always run a ready input-gradient first, then a forward permitted by
the memory cap, and only fill genuinely idle time with deferred
weight-gradients. The op *order* this produces per worker is the schedule;
the discrete-event simulator then retimes it under any cost model.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ScheduleError
from repro.schedules._sync import append_lazy_sync
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement


def build_zb_h1_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    recompute: bool = False,
    max_in_flight: int | None = None,
    f_time: float = 1.0,
    b_time: float = 1.0,
    w_time: float = 1.0,
) -> Schedule:
    """Build the ZB-H1 schedule (1F1B shape, W ops fill the tail bubbles).

    Parameters
    ----------
    depth, num_micro_batches:
        Pipeline depth ``D`` (= workers = stages) and micro-batch count.
    recompute:
        Stamp activation recomputation on the input-gradient ops (the
        rematerialization cost is charged to ``Bi`` by the cost model).
    max_in_flight:
        Optional tighter cap on live stashes (forward to ``W``) per stage;
        the default is the 1F1B bound ``D - s`` at stage ``s``.
    f_time, b_time, w_time:
        Unit durations the greedy scheduler plans with. The defaults model
        the zero-bubble paper's ``F = B = W`` assumption (a fused backward
        costs ``b + w = 2F``, matching the practical cost model).
    """
    if depth < 1:
        raise ScheduleError("ZB-H1 needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("ZB-H1 needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    caps = [depth - s for s in range(depth)]
    if max_in_flight is not None:
        caps = [max(1, min(cap, max_in_flight)) for cap in caps]
    rows = _greedy_split_backward_rows(
        placement,
        num_micro_batches,
        caps=caps,
        f_time=f_time,
        b_time=b_time,
        w_time=w_time,
        recompute=recompute,
    )
    append_lazy_sync(rows, placement)
    return Schedule(
        scheme="zb_h1",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={
            "recompute": recompute,
            "caps": tuple(caps),
            "unit_times": (f_time, b_time, w_time),
        },
    )


def build_zb_v_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    recompute: bool = False,
    max_in_flight: int | None = None,
    f_time: float = 1.0,
    b_time: float = 1.0,
    w_time: float = 1.0,
) -> Schedule:
    """Build the ZB-V schedule (V-shaped two-chunks-per-worker placement).

    ``depth`` is the number of *workers*; the model is split into
    ``2 * depth`` chunks placed per
    :meth:`~repro.schedules.placement.StagePlacement.vshaped`, so each
    chunk carries half a conventional stage's compute. The per-worker cap
    on live chunk stashes (forward to ``W``) defaults to ``2 * depth`` —
    roughly ``D`` full-stage activations, the controllable-memory paper's
    ``V`` budget — and is constant in ``N``. A tighter ``max_in_flight`` is
    best-effort: worker 0 hosts both ends of the V, and a cap below its
    chunk-0 round trip is relaxed just enough to avoid deadlocking the
    pipeline (never beyond the default budget).
    """
    if depth < 1:
        raise ScheduleError("ZB-V needs at least one worker")
    if num_micro_batches < 1:
        raise ScheduleError("ZB-V needs at least one micro-batch")
    placement = StagePlacement.vshaped(depth)
    cap = 2 * depth if max_in_flight is None else max(1, max_in_flight)
    caps = [cap] * depth
    rows = _greedy_split_backward_rows(
        placement,
        num_micro_batches,
        caps=caps,
        f_time=f_time,
        b_time=b_time,
        w_time=w_time,
        recompute=recompute,
    )
    append_lazy_sync(rows, placement)
    return Schedule(
        scheme="zb_v",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={
            "recompute": recompute,
            "caps": tuple(caps),
            "unit_times": (f_time, b_time, w_time),
        },
    )


def _greedy_split_backward_rows(
    placement: StagePlacement,
    n: int,
    *,
    caps: list[int],
    f_time: float,
    b_time: float,
    w_time: float,
    recompute: bool,
) -> list[list[Operation]]:
    """Greedy list-scheduling of F / Bi / W over a single-replica chain.

    Simulates the pipeline forward in time. Whenever a worker could start
    an operation, priority is: ready input-gradient first (it unblocks the
    upstream stage), then a forward allowed by the worker's in-flight cap,
    and a deferred weight-gradient only when nothing else can start as
    early — which is exactly what parks the ``W`` ops inside bubbles.
    Deterministic: ties break toward later stages (draining the pipeline)
    and lower worker ranks.

    The in-flight cap counts stashes per worker over their full lifetime —
    from the forward until the *weight-gradient* releases them — matching
    :func:`repro.sim.memory.analyze_memory`'s liveness accounting, so the
    cap is a genuine bound on the schedule's activation peak.
    """
    num_stages = placement.num_stages
    num_workers = placement.num_workers
    worker_of = [placement.worker_of(0, s) for s in range(num_stages)]
    hosted: list[list[int]] = [[] for _ in range(num_workers)]
    for s in range(num_stages):
        hosted[worker_of[s]].append(s)

    f_end: list[list[float | None]] = [[None] * n for _ in range(num_stages)]
    b_end: list[list[float | None]] = [[None] * n for _ in range(num_stages)]
    next_f = [0] * num_stages  # next micro-batch to forward, per stage
    next_b = [0] * num_stages  # next micro-batch to input-grad, per stage
    in_flight = [0] * num_workers
    free = [0.0] * num_workers
    pending_w: list[deque[tuple[int, int]]] = [deque() for _ in range(num_workers)]
    rows: list[list[Operation]] = [[] for _ in range(num_workers)]

    def b_candidate(s: int) -> tuple[float, int] | None:
        """(availability, micro-batch) of stage ``s``'s next input-grad."""
        mb = next_b[s]
        if mb >= n:
            return None
        local = f_end[s][mb]
        if local is None:
            return None
        if s == num_stages - 1:
            return (local, mb)
        upstream = b_end[s + 1][mb]
        if upstream is None:
            return None
        return (max(local, upstream), mb)

    def f_candidate(s: int) -> tuple[float, int] | None:
        """(availability, micro-batch) of stage ``s``'s next forward."""
        mb = next_f[s]
        if mb >= n:
            return None
        if s == 0:
            return (0.0, mb)
        producer = f_end[s - 1][mb]
        if producer is None:
            return None
        return (producer, mb)

    total = 3 * num_stages * n
    done = 0
    while done < total:
        # (start, type_rank, -stage, worker, stage, mb)
        best: tuple | None = None
        for w in range(num_workers):
            for s in hosted[w]:
                cand = b_candidate(s)
                if cand is not None:
                    start = max(free[w], cand[0])
                    key = (start, 0, -s, w, s, cand[1])
                    if best is None or key < best:
                        best = key
                if in_flight[w] < caps[w]:
                    cand = f_candidate(s)
                    if cand is not None:
                        start = max(free[w], cand[0])
                        key = (start, 1, -s, w, s, cand[1])
                        if best is None or key < best:
                            best = key
            if pending_w[w]:
                s, mb = pending_w[w][0]
                key = (free[w], 2, -s, w, s, mb)
                if best is None or key < best:
                    best = key
        if best is None:
            # Caps alone block every forward (possible when one worker
            # hosts both early and late chunks): relax the cap for the
            # earliest-startable forward instead of deadlocking.
            for w in range(num_workers):
                for s in hosted[w]:
                    cand = f_candidate(s)
                    if cand is not None:
                        start = max(free[w], cand[0])
                        key = (start, 1, -s, w, s, cand[1])
                        if best is None or key < best:
                            best = key
        if best is None:  # pragma: no cover - library bug guard
            raise ScheduleError(
                "greedy zero-bubble scheduler stalled with work remaining"
            )

        start, rank, _neg, w, s, mb = best
        if rank == 0:
            end = start + b_time
            b_end[s][mb] = end
            next_b[s] += 1
            pending_w[w].append((s, mb))
            rows[w].append(
                Operation(
                    OpKind.BACKWARD_INPUT,
                    0,
                    s,
                    micro_batches=(mb,),
                    recompute=recompute,
                )
            )
        elif rank == 1:
            end = start + f_time
            f_end[s][mb] = end
            next_f[s] += 1
            in_flight[w] += 1
            rows[w].append(Operation(OpKind.FORWARD, 0, s, micro_batches=(mb,)))
        else:
            end = start + w_time
            pending_w[w].popleft()
            in_flight[w] -= 1
            rows[w].append(
                Operation(OpKind.BACKWARD_WEIGHT, 0, s, micro_batches=(mb,))
            )
        free[w] = end
        done += 1
    return rows
