"""Zero-bubble schedule family: ZB-H1 and ZB-V [Qi et al. 2023/2024].

Both schedules exploit the split backward of the IR
(:class:`~repro.schedules.ir.OpKind.BACKWARD_INPUT` /
:class:`~repro.schedules.ir.OpKind.BACKWARD_WEIGHT`): only the
input-gradient half ``B`` sits on the inter-stage critical path, while the
weight-gradient half ``W`` is free to move into the bubbles a 1F1B-style
schedule would otherwise idle through. With the practical cost split
``b = w = F`` this removes roughly two thirds of DAPPLE's ``2(D-1)``
bubbles (ZB-H1) or nearly all of them (ZB-V).

* **ZB-H1** keeps DAPPLE's linear placement and 1F1B shape. Warmup and
  steady state are unchanged — the gain comes from deferring each ``W``
  until the worker would otherwise idle, which fills the backward-drain
  bubbles at the tail. The in-flight cap of ``D - s`` micro-batches per
  stage is enforced on the *full* stash lifetime (forward to ``W``), so the
  activation signature is exactly DAPPLE's ``(1, min(D, N))`` while the
  bubble drops from ``3(D-1)`` to ``2(D-1)`` worker-time units under the
  practical model (makespan ``3N + 2(D-1)`` instead of ``3(N + D - 1)``).
* **ZB-V** splits the model into ``2D`` chunks folded over ``D`` workers in
  a "V": worker ``i`` hosts chunk ``i`` and chunk ``2D - 1 - i``
  (:meth:`~repro.schedules.placement.StagePlacement.vshaped`). Each worker
  owns both an early and a late chunk, so forwards, input-gradients and
  weight-gradients of different micro-batches interleave on every worker
  and the steady state approaches zero bubbles, with per-worker activation
  memory capped at a constant ``2D`` chunk stashes (about ``D`` full-stage
  stashes) independent of ``N``.

Rather than hard-coding the papers' handcrafted tick tables, both builders
run a deterministic greedy list-scheduler (the approach of the zero-bubble
repository's ``zbv_greedy`` module): simulate the pipeline under unit
costs, always run a ready input-gradient first, then a forward permitted by
the memory cap, and only fill genuinely idle time with deferred
weight-gradients. The op *order* this produces per worker is the schedule;
the discrete-event simulator then retimes it under any cost model.

On top of ZB-V sit the **memory-controllable** variants of *Pipeline
Parallelism with Controllable Memory* [Qi et al. 2024, arXiv:2405.15362]:

* **ZB-vhalf** (``zb_vhalf``) — peak activation memory of roughly *half*
  the 1F1B/ZB-V budget (``D + 2`` live chunk stashes per worker, i.e. about
  ``D/2 + 1`` full-stage stashes) at the cost of a longer fill/drain ramp
  (steady state stays bubble-free).
* **ZB-vmin** (``zb_vmin``) — close to the *minimum* feasible budget
  (about ``2D/3 + 2`` chunk stashes, i.e. about ``D/3 + 1`` full-stage
  stashes), trading a little more ramp for the smallest peak.

These two are built differently from the greedy pair: each repeats a
*stable pattern* — per-worker steady-state tick offsets for the four
F/``Bi`` streams (:func:`stable_pattern`), phase-shifted by six ticks per
micro-batch so consecutive micro-batches interleave without collisions.
Sorting the pattern ticks yields the warmup/steady/cooldown op order in one
stroke, and deferred ``W`` ops drop into the idle ticks FIFO (the
controllable-memory repository's ``put_w``). The pattern *is* the unit-cost
timing, so the simulated makespans have exact closed forms
(:mod:`repro.schedules.analysis`).
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement


def build_zb_h1_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    max_in_flight: int | None = None,
    f_time: float = 1.0,
    b_time: float = 1.0,
    w_time: float = 1.0,
) -> Schedule:
    """Build the ZB-H1 schedule (1F1B shape, W ops fill the tail bubbles).

    Parameters
    ----------
    depth, num_micro_batches:
        Pipeline depth ``D`` (= workers = stages) and micro-batch count.
    max_in_flight:
        Optional tighter cap on live stashes (forward to ``W``) per stage;
        the default is the 1F1B bound ``D - s`` at stage ``s``.
    f_time, b_time, w_time:
        Unit durations the greedy scheduler plans with. The defaults model
        the zero-bubble paper's ``F = B = W`` assumption (a fused backward
        costs ``b + w = 2F``, matching the practical cost model).
    """
    if depth < 1:
        raise ScheduleError("ZB-H1 needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("ZB-H1 needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    caps = [depth - s for s in range(depth)]
    if max_in_flight is not None:
        caps = [max(1, min(cap, max_in_flight)) for cap in caps]
    rows = _greedy_split_backward_rows(
        placement,
        num_micro_batches,
        caps=caps,
        f_time=f_time,
        b_time=b_time,
        w_time=w_time,
    )
    return Schedule(
        scheme="zb_h1",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={
            "caps": tuple(caps),
            "unit_times": (f_time, b_time, w_time),
        },
    )


def build_zb_v_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    max_in_flight: int | None = None,
    f_time: float = 1.0,
    b_time: float = 1.0,
    w_time: float = 1.0,
) -> Schedule:
    """Build the ZB-V schedule (V-shaped two-chunks-per-worker placement).

    ``depth`` is the number of *workers*; the model is split into
    ``2 * depth`` chunks placed per
    :meth:`~repro.schedules.placement.StagePlacement.vshaped`, so each
    chunk carries half a conventional stage's compute. The per-worker cap
    on live chunk stashes (forward to ``W``) defaults to ``2 * depth`` —
    roughly ``D`` full-stage activations, the controllable-memory paper's
    ``V`` budget — and is constant in ``N``. A tighter ``max_in_flight`` is
    best-effort: worker 0 hosts both ends of the V, and a cap below its
    chunk-0 round trip is relaxed just enough to avoid deadlocking the
    pipeline (never beyond the default budget).
    """
    if depth < 1:
        raise ScheduleError("ZB-V needs at least one worker")
    if num_micro_batches < 1:
        raise ScheduleError("ZB-V needs at least one micro-batch")
    placement = StagePlacement.vshaped(depth)
    cap = 2 * depth if max_in_flight is None else max(1, max_in_flight)
    caps = [cap] * depth
    rows = _greedy_split_backward_rows(
        placement,
        num_micro_batches,
        caps=caps,
        f_time=f_time,
        b_time=b_time,
        w_time=w_time,
    )
    return Schedule(
        scheme="zb_v",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={
            "caps": tuple(caps),
            "unit_times": (f_time, b_time, w_time),
        },
    )


def build_zb_vhalf_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build ZB-vhalf: the half-memory controllable V-schedule.

    Same V-shaped placement as ZB-V, but forwards enter on a stretched
    cadence (two ticks apart on the descending arm) so each worker holds at
    most ``D + 2`` live chunk stashes — about half of ZB-V's ``2D`` — while
    the steady state stays bubble-free. The makespan under unit costs is
    ``6N + (7D - 4)/2`` for even ``D`` and ``6N + 7(D - 1)/2`` for odd
    ``D``, exact for ``N >= D``.
    """
    return _build_v_pattern_schedule("zb_vhalf", depth, num_micro_batches)


def build_zb_vmin_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build ZB-vmin: the minimum-memory controllable V-schedule.

    The tightest stable pattern of the controllable-memory paper: the V is
    traversed on the 1F1B cadence but the backward wave returns as early as
    dependencies allow, capping each worker at about ``2D/3 + 2`` live
    chunk stashes — one third of the 1F1B activation budget, plus the
    deferred-``W`` lag. The makespan under unit costs is exactly
    ``6N + max(0, 4D + i - 5)`` with ``i = 2`` when ``3 | D`` and
    ``N >= 2`` (the interval correction de-collides consecutive
    micro-batches, so it does not stretch a single-micro-batch ramp),
    else ``i = 0``.
    """
    return _build_v_pattern_schedule("zb_vmin", depth, num_micro_batches)


#: Stable-pattern variants and their steady-state tick-offset generators.
_V_PATTERNS = ("zb_vmin", "zb_vhalf")


def stable_pattern(scheme: str, depth: int) -> tuple[tuple[int, int, int, int], ...]:
    """Steady-state tick offsets of a memory-controllable V-schedule.

    Returns one row per worker ``i``: the start ticks of micro-batch 0's
    four compute streams on that worker — forward of the descending-arm
    chunk ``i``, forward of the ascending-arm chunk ``2D - 1 - i``, input
    gradient of the ascending chunk, input gradient of the descending
    chunk. Micro-batch ``m`` runs the same pattern shifted by ``6 m`` ticks
    (six unit ops per worker per micro-batch: 2 F + 2 Bi + 2 W), and the
    offsets are constructed so that no two streams of one worker share a
    tick residue mod 6 — the interleave is collision-free for every ``N``.

    The ``interval`` corrections (+2 when ``3 | D`` for vmin, +3 for even
    ``D`` for vhalf) restore that residue-distinctness where the plain
    arithmetic pattern would collide.
    """
    p = depth
    if p < 1:
        raise ScheduleError(f"{scheme} needs at least one worker, got {p}")
    if scheme == "zb_vmin":
        interval = 2 if p % 3 == 0 else 0
        return tuple(
            (i, 2 * p - i - 1, 2 * p + interval + i, 4 * p + interval - i - 1)
            for i in range(p)
        )
    if scheme == "zb_vhalf":
        interval = 3 if p % 2 == 0 else 0
        return tuple(
            (
                2 * i,
                3 * p - i - 2,
                3 * p + interval + 2 * i - 1,
                6 * p + interval - i - 2,
            )
            for i in range(p)
        )
    raise ScheduleError(
        f"no stable pattern for scheme {scheme!r}; known: {list(_V_PATTERNS)}"
    )


def v_pattern_compute_rows(
    scheme: str, depth: int, num_micro_batches: int
) -> list[list[Operation]]:
    """Per-worker compute-op order of a stable-pattern V-schedule.

    Expands :func:`stable_pattern` over all micro-batches, sorts each
    worker's F/``Bi`` ops by their pattern tick (which interleaves warmup,
    steady state and cooldown in one pass), and drops each deferred ``W``
    into the earliest idle tick after its ``Bi`` (FIFO), with the backlog
    flushed after the last pattern op. Shared by the builders and by
    :mod:`repro.schedules.analysis`, whose activation-interval numbers for
    this family count stash liveness over exactly these rows.
    """
    p, n = depth, num_micro_batches
    pattern = stable_pattern(scheme, p)
    rows: list[list[Operation]] = []
    for worker in range(p):
        down, up = worker, 2 * p - 1 - worker
        offsets = pattern[worker]
        events: list[tuple[int, int, int]] = []  # (tick, stream, micro-batch)
        for mb in range(n):
            base = 6 * mb
            for stream in range(4):
                events.append((offsets[stream] + base, stream, mb))
        events.sort()
        ops: list[Operation] = []
        pending_w: deque[tuple[int, int]] = deque()
        tick = 0
        for t, stream, mb in events:
            while tick < t and pending_w:
                stage, mb_w = pending_w.popleft()
                ops.append(
                    Operation(OpKind.BACKWARD_WEIGHT, 0, stage, micro_batches=(mb_w,))
                )
                tick += 1
            tick = max(tick, t) + 1
            stage = (down, up, up, down)[stream]
            if stream < 2:
                ops.append(Operation(OpKind.FORWARD, 0, stage, micro_batches=(mb,)))
            else:
                ops.append(
                    Operation(
                        OpKind.BACKWARD_INPUT, 0, stage, micro_batches=(mb,)
                    )
                )
                pending_w.append((stage, mb))
        for stage, mb_w in pending_w:
            ops.append(
                Operation(OpKind.BACKWARD_WEIGHT, 0, stage, micro_batches=(mb_w,))
            )
        rows.append(ops)
    return rows


def _build_v_pattern_schedule(
    scheme: str, depth: int, num_micro_batches: int
) -> Schedule:
    """Wrap the pattern rows into a validated :class:`Schedule`."""
    if depth < 1:
        raise ScheduleError(f"{scheme} needs at least one worker")
    if num_micro_batches < 1:
        raise ScheduleError(f"{scheme} needs at least one micro-batch")
    placement = StagePlacement.vshaped(depth)
    rows = v_pattern_compute_rows(scheme, depth, num_micro_batches)
    return Schedule(
        scheme=scheme,
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={"pattern": scheme.removeprefix("zb_")},
    )


def _greedy_split_backward_rows(
    placement: StagePlacement,
    n: int,
    *,
    caps: list[int],
    f_time: float,
    b_time: float,
    w_time: float,
) -> list[list[Operation]]:
    """Greedy list-scheduling of F / Bi / W over a single-replica chain.

    Simulates the pipeline forward in time. Whenever a worker could start
    an operation, priority is: ready input-gradient first (it unblocks the
    upstream stage), then a forward allowed by the worker's in-flight cap,
    and a deferred weight-gradient only when nothing else can start as
    early — which is exactly what parks the ``W`` ops inside bubbles.
    Deterministic: ties break toward later stages (draining the pipeline)
    and lower worker ranks.

    The in-flight cap counts stashes per worker over their full lifetime —
    from the forward until the *weight-gradient* releases them — matching
    :func:`repro.sim.memory.analyze_memory`'s liveness accounting, so the
    cap is a genuine bound on the schedule's activation peak.
    """
    num_stages = placement.num_stages
    num_workers = placement.num_workers
    worker_of = [placement.worker_of(0, s) for s in range(num_stages)]
    hosted: list[list[int]] = [[] for _ in range(num_workers)]
    for s in range(num_stages):
        hosted[worker_of[s]].append(s)

    f_end: list[list[float | None]] = [[None] * n for _ in range(num_stages)]
    b_end: list[list[float | None]] = [[None] * n for _ in range(num_stages)]
    next_f = [0] * num_stages  # next micro-batch to forward, per stage
    next_b = [0] * num_stages  # next micro-batch to input-grad, per stage
    in_flight = [0] * num_workers
    free = [0.0] * num_workers
    pending_w: list[deque[tuple[int, int]]] = [deque() for _ in range(num_workers)]
    rows: list[list[Operation]] = [[] for _ in range(num_workers)]

    def b_candidate(s: int) -> tuple[float, int] | None:
        """(availability, micro-batch) of stage ``s``'s next input-grad."""
        mb = next_b[s]
        if mb >= n:
            return None
        local = f_end[s][mb]
        if local is None:
            return None
        if s == num_stages - 1:
            return (local, mb)
        upstream = b_end[s + 1][mb]
        if upstream is None:
            return None
        return (max(local, upstream), mb)

    def f_candidate(s: int) -> tuple[float, int] | None:
        """(availability, micro-batch) of stage ``s``'s next forward."""
        mb = next_f[s]
        if mb >= n:
            return None
        if s == 0:
            return (0.0, mb)
        producer = f_end[s - 1][mb]
        if producer is None:
            return None
        return (producer, mb)

    total = 3 * num_stages * n
    done = 0
    while done < total:
        # (start, type_rank, -stage, worker, stage, mb)
        best: tuple | None = None
        for w in range(num_workers):
            for s in hosted[w]:
                cand = b_candidate(s)
                if cand is not None:
                    start = max(free[w], cand[0])
                    key = (start, 0, -s, w, s, cand[1])
                    if best is None or key < best:
                        best = key
                if in_flight[w] < caps[w]:
                    cand = f_candidate(s)
                    if cand is not None:
                        start = max(free[w], cand[0])
                        key = (start, 1, -s, w, s, cand[1])
                        if best is None or key < best:
                            best = key
            if pending_w[w]:
                s, mb = pending_w[w][0]
                key = (free[w], 2, -s, w, s, mb)
                if best is None or key < best:
                    best = key
        if best is None:
            # Caps alone block every forward (possible when one worker
            # hosts both early and late chunks): relax the cap for the
            # earliest-startable forward instead of deadlocking.
            for w in range(num_workers):
                for s in hosted[w]:
                    cand = f_candidate(s)
                    if cand is not None:
                        start = max(free[w], cand[0])
                        key = (start, 1, -s, w, s, cand[1])
                        if best is None or key < best:
                            best = key
        if best is None:  # pragma: no cover - library bug guard
            raise ScheduleError(
                "greedy zero-bubble scheduler stalled with work remaining"
            )

        start, rank, _neg, w, s, mb = best
        if rank == 0:
            end = start + b_time
            b_end[s][mb] = end
            next_b[s] += 1
            pending_w[w].append((s, mb))
            rows[w].append(
                Operation(OpKind.BACKWARD_INPUT, 0, s, micro_batches=(mb,))
            )
        elif rank == 1:
            end = start + f_time
            f_end[s][mb] = end
            next_f[s] += 1
            in_flight[w] += 1
            rows[w].append(Operation(OpKind.FORWARD, 0, s, micro_batches=(mb,)))
        else:
            end = start + w_time
            pending_w[w].popleft()
            in_flight[w] -= 1
            rows[w].append(
                Operation(OpKind.BACKWARD_WEIGHT, 0, s, micro_batches=(mb,))
            )
        free[w] = end
        done += 1
    return rows
