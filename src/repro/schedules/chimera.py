"""Chimera bidirectional pipeline schedules (the paper's core contribution).

Construction (paper §3.1, Figure 3):

1. Choose the bidirectional placement: ``f`` *down* pipelines and ``f`` *up*
   pipelines over the same ``D`` workers (``f = 1`` by default).
2. Partition the ``N`` micro-batches among the ``2f`` pipelines in contiguous
   blocks, as evenly as possible.
3. Schedule each pipeline independently with 1F1B (or an expanded variant
   for ``N > D``, §3.5) to obtain each pipeline's per-stage *program order*.
4. **Merge**: run a deterministic unit-slot list scheduler in which every
   worker holds one program-order queue per hosted pipeline and, each slot,
   executes the ready queue head with the smallest per-pipeline position
   (ties broken by replica id). For an even ``D`` the two directions never
   contend for the same slot, reproducing the paper's conflict-free merge;
   bubbles drop to ``D - 2`` (``D/2 - 1`` in each pass).

Gradient synchronization (§3.2): allreduce launch points are placed
according to ``sync_mode``:

* ``"lazy"`` — after all local compute (Figure 4a),
* ``"eager"`` — right after each stage's last local backward (Figure 4b),
* ``"eager_opt"`` — eager only where the merged timeline actually has a
  bubble between gradient completion and the end of local compute (the
  paper's recommendation: middle stages are synchronized lazily because an
  eager launch there cannot overlap anything and only adds progression
  overhead).

Scaling to ``N > D`` (§3.5) concatenates basic scheduling units under one of
three strategies: ``direct`` (intermediate bubbles remain), ``doubling``
(two-micro-batch forwards + recomputation), and ``halving`` (half-size
backwards). §3.6 generalizes to ``f > 1`` down/up pipeline pairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ScheduleError
from repro.schedules._sync import SYNC_MODES, insert_eager_sync
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.onefb import expanded_onefb_stage_order, onefb_stage_order
from repro.schedules.placement import StagePlacement


class ConcatStrategy(enum.Enum):
    """How to concatenate basic scheduling units when ``N > D`` (§3.5)."""

    #: Figure 7(b): back-to-back units; uneven F/B workloads leave
    #: intermediate bubbles, but no extra memory or recompute cost.
    DIRECT = "direct"
    #: Figure 7(c)/(d): fuse two micro-batches per forward and recompute in
    #: the backward; equalizes slot workloads and removes intermediate
    #: bubbles at the cost of ~1/3 extra backward compute.
    FORWARD_DOUBLING = "doubling"
    #: Same schedule shape with half-size backwards instead of fused
    #: forwards; no recompute / extra memory, but the backward runs at a
    #: sub-maximal micro-batch size.
    BACKWARD_HALVING = "halving"


def partition_micro_batches(
    num_micro_batches: int, num_pipelines: int
) -> list[list[int]]:
    """Contiguous, as-even-as-possible split of ``0..N-1`` over pipelines.

    Matches the paper's assignment (Figure 3: down gets {0, 1}, up gets
    {2, 3}; Figure 8: down pipelines take the first blocks). Earlier
    pipelines receive the extra micro-batches when ``N`` does not divide.
    """
    if num_micro_batches < 1:
        raise ScheduleError("need at least one micro-batch")
    base, extra = divmod(num_micro_batches, num_pipelines)
    blocks: list[list[int]] = []
    start = 0
    for i in range(num_pipelines):
        size = base + (1 if i < extra else 0)
        blocks.append(list(range(start, start + size)))
        start += size
    return blocks


@dataclass(frozen=True)
class MergedTimeline:
    """Result of the unit-slot merge: per-worker order plus slot times."""

    rows: tuple[tuple[Operation, ...], ...]
    #: ``op.key() -> (start_slot, end_slot)`` under unit op durations.
    slots: dict
    makespan: int


def _pipeline_block_for_replica(replica: int, f: int) -> int:
    """Block index of the micro-batch partition owned by ``replica``.

    Down pipelines (even replicas) take the first ``f`` blocks in order, up
    pipelines (odd replicas) the next ``f`` — matching Figure 8.
    """
    if replica % 2 == 0:
        return replica // 2
    return f + replica // 2


def _stage_sequences(
    depth: int,
    f: int,
    blocks: list[list[int]],
    strategy: ConcatStrategy,
) -> dict[tuple[int, int], list[Operation]]:
    """Per-(replica, stage) solo program orders.

    Each pipeline runs (expanded) 1F1B over its full micro-batch list with
    the warmup — i.e. the in-flight micro-batch units — capped at
    ``D/(2f)``. The cap yields Table 2's balanced activation interval
    ``[(D/2+1) Ma, D Ma]`` across the ``2f`` directions; the merge
    (:func:`merge_pipelines`) re-derives the fine-grained interleaving from
    these orders' forward/backward FIFOs, which is what lets a basic
    unit's forwards fill the previous unit's backward-drain gaps
    (paper §3.5, Figure 7).
    """
    sequences: dict[tuple[int, int], list[Operation]] = {}
    cap = max(1, depth // (2 * f))
    for replica in range(2 * f):
        mbs = blocks[_pipeline_block_for_replica(replica, f)]
        for stage in range(depth):
            if not mbs:
                sequences[(replica, stage)] = []
                continue
            if strategy is ConcatStrategy.DIRECT:
                seq = onefb_stage_order(
                    stage, depth, mbs, replica=replica, warmup_cap=cap
                )
            elif strategy is ConcatStrategy.FORWARD_DOUBLING:
                whole, residual = (mbs, []) if len(mbs) % 2 == 0 else (mbs[:-1], mbs[-1:])
                seq = expanded_onefb_stage_order(
                    stage,
                    depth,
                    whole,
                    replica=replica,
                    mode="doubling",
                    warmup_cap=cap,
                )
                if residual:
                    # Odd residual micro-batch: append a plain 1F1B tail,
                    # mirroring the paper's odd-K handling; its backward
                    # recomputes like the doubled units it rides with.
                    seq += [
                        op.with_recompute() if op.is_backward else op
                        for op in onefb_stage_order(
                            stage, depth, residual, replica=replica, warmup_cap=cap
                        )
                    ]
            else:
                seq = expanded_onefb_stage_order(
                    stage,
                    depth,
                    mbs,
                    replica=replica,
                    mode="halving",
                    warmup_cap=cap,
                )
            sequences[(replica, stage)] = seq
    return sequences


def unit_durations(op: Operation) -> int:
    """Equal forward/backward slot widths (Figure 3 top: merge assumption)."""
    return max(1, round(2 * op.work_units))


def practical_durations(op: Operation) -> int:
    """Integer slot widths under the paper's practical workload model.

    In units of half a forward pass: forward = 2 per micro-batch, backward =
    4 (2x a forward), backward with recomputation = 6 (3x), so a half-size
    backward is 2 and a fused two-micro-batch forward is 4.
    """
    per_mb = 2 if op.is_forward else (6 if op.recompute else 4)
    return max(1, round(per_mb * op.work_units))


def merge_pipelines(
    placement: StagePlacement,
    sequences: dict[tuple[int, int], list[Operation]],
    durations: "Callable[[Operation], int]" = unit_durations,
    *,
    inflight_cap: int | None = None,
) -> MergedTimeline:
    """Deterministic slotted merge of per-pipeline program orders.

    Every worker owns, per hosted ``(replica, stage)``, a forward FIFO and a
    backward FIFO extracted from that pipeline's 1F1B program order. Each
    slot, an idle worker executes the *ready* FIFO head with the highest
    priority: backwards before forwards (draining frees activations and
    unblocks upstream injection), then smallest FIFO position, then smallest
    replica id. Forward injection respects Chimera's activation discipline:

    * at most ``cap + 1`` micro-batch units in flight per (replica, stage)
      — ``cap = D/(2f)`` with a one-unit transient exactly as in Figure 7's
      concatenated schedules, and
    * at most ``2f * cap = D`` micro-batches in flight per *worker* across
      all hosted stages — Table 2's upper activation bound.

    Under equal slot widths this reproduces the paper's conflict-free
    bidirectional merge (Figure 3); under the practical widths (backward =
    2x forward) the next basic unit's forwards land exactly in the previous
    unit's backward-drain gaps (§3.5), keeping the total bubble count at
    ``D - 2`` independent of ``N``.
    """
    depth = placement.num_stages
    num_workers = placement.num_workers

    # Split each program order into forward / backward FIFOs. The 1F1B
    # sequencing between them is re-established by the in-flight caps plus
    # data dependencies, which is what allows the cross-unit interleaving.
    fifos: list[list[tuple[int, int, int, list[Operation], list[int]]]] = [
        [] for _ in range(num_workers)
    ]
    per_pipe_cap: dict[tuple[int, int], int] = {}
    total_ops = 0
    total_duration = 0
    for (replica, stage), seq in sorted(sequences.items()):
        worker = placement.worker_of(replica, stage)
        fwd = [op for op in seq if op.is_forward]
        bwd = [op for op in seq if op.is_backward]
        # kind_rank 0 = backward (drained first), 1 = forward.
        fifos[worker].append((1, replica, stage, fwd, [0]))
        fifos[worker].append((0, replica, stage, bwd, [0]))
        total_ops += len(seq)
        total_duration += sum(durations(op) for op in seq)
        # The largest warmup in this pipeline's own order bounds its
        # in-flight units; allow a one-unit transient on top (Figure 7).
        transient = max((len(op.micro_batches) for op in fwd), default=1)
        per_pipe_cap[(replica, stage)] = _max_warmup(seq) + transient

    if inflight_cap is None:
        inflight_cap = max(1, depth)

    fwd_end: dict[tuple[int, int, int], int] = {}
    bwd_end: dict[tuple[int, int, int, tuple[int, int]], int] = {}
    inflight: dict[tuple[int, int], float] = {key: 0.0 for key in per_pipe_cap}
    worker_inflight = [0.0] * num_workers

    def ready(op: Operation, now: int, worker: int, *, ignore_caps: bool = False) -> bool:
        if op.is_forward:
            if not ignore_caps:
                key = (op.replica, op.stage)
                units = len(op.micro_batches)
                if inflight[key] + units > per_pipe_cap[key]:
                    return False
                if worker_inflight[worker] + units > inflight_cap:
                    return False
            if op.stage == 0:
                return True
            return all(
                fwd_end.get((op.replica, op.stage - 1, mb), _NEVER) <= now
                for mb in op.micro_batches
            )
        for mb in op.micro_batches:
            if fwd_end.get((op.replica, op.stage, mb), _NEVER) > now:
                return False
            if op.stage < depth - 1:
                if bwd_end.get((op.replica, op.stage + 1, mb, op.part), _NEVER) > now:
                    return False
        return True

    rows: list[list[Operation]] = [[] for _ in range(num_workers)]
    slots: dict = {}
    busy_until = [0] * num_workers
    done = 0
    now = 0
    limit = 4 * total_duration + 48 * depth + 64
    while done < total_ops:
        if now > limit:
            raise ScheduleError(
                f"pipeline merge made no progress by slot {now} "
                f"({total_ops - done} ops pending) — dependency bug"
            )
        for worker in range(num_workers):
            if busy_until[worker] > now:
                continue
            best = None
            best_prio = None
            for kind_rank, replica, stage, seq, pos in fifos[worker]:
                if pos[0] >= len(seq):
                    continue
                op = seq[pos[0]]
                if not ready(op, now, worker):
                    continue
                prio = (kind_rank, pos[0], replica)
                if best_prio is None or prio < best_prio:
                    best_prio = prio
                    best = (op, pos)
            if best is None:
                continue
            op, pos = best
            pos[0] += 1
            rows[worker].append(op)
            end = now + durations(op)
            slots[op.key()] = (now, end)
            if op.is_forward:
                for mb in op.micro_batches:
                    fwd_end[(op.replica, op.stage, mb)] = end
                inflight[(op.replica, op.stage)] += len(op.micro_batches)
                worker_inflight[worker] += len(op.micro_batches)
            else:
                for mb in op.micro_batches:
                    bwd_end[(op.replica, op.stage, mb, op.part)] = end
                freed = op.work_units
                inflight[(op.replica, op.stage)] -= freed
                worker_inflight[worker] -= freed
            busy_until[worker] = end
            done += 1

        # Stall recovery: if every worker is idle and only the in-flight
        # caps hold work back (a cap-wait cycle across workers, seen for
        # deep forward-doubling chains), admit the single best
        # dependency-ready op ignoring the caps. The transient memory
        # excess is bounded by one scheduling unit and progress is
        # guaranteed; a stall with no dependency-ready op at all is a real
        # bug and still raises below.
        # Nothing in flight and nothing schedulable this slot = stall.
        if done < total_ops and all(b <= now for b in busy_until):
            best = None
            best_prio = None
            best_worker = None
            for worker in range(num_workers):
                for kind_rank, replica, stage, seq, pos in fifos[worker]:
                    if pos[0] >= len(seq):
                        continue
                    op = seq[pos[0]]
                    if ready(op, now, worker) or not ready(
                        op, now, worker, ignore_caps=True
                    ):
                        continue
                    prio = (kind_rank, pos[0], replica)
                    if best_prio is None or prio < best_prio:
                        best_prio = prio
                        best = (op, pos)
                        best_worker = worker
            if best is not None:
                op, pos = best
                pos[0] += 1
                rows[best_worker].append(op)
                end = now + durations(op)
                slots[op.key()] = (now, end)
                for mb in op.micro_batches:
                    fwd_end[(op.replica, op.stage, mb)] = end
                inflight[(op.replica, op.stage)] += len(op.micro_batches)
                worker_inflight[best_worker] += len(op.micro_batches)
                busy_until[best_worker] = end
                done += 1
        now += 1

    makespan = max((end for _, end in slots.values()), default=0)
    return MergedTimeline(rows=freeze_worker_ops(rows), slots=slots, makespan=makespan)


def _max_warmup(seq: list[Operation]) -> int:
    """Micro-batches injected by ``seq`` before its first backward."""
    count = 0
    for op in seq:
        if op.is_backward:
            break
        count += len(op.micro_batches)
    return max(1, count)


_NEVER = 1 << 60


def _eager_opt_pairs(
    placement: StagePlacement, timeline: MergedTimeline
) -> set[tuple[int, int, int]]:
    """``(worker, replica, stage)`` pairs worth synchronizing eagerly.

    The paper's criterion (§3.2): launch the allreduce early only if there
    is an idle slot between the completion of that stage's local gradients
    and the end of the worker's local computation — otherwise the eager
    launch cannot overlap anything and only risks slowing the critical path.
    """
    num_workers = placement.num_workers
    busy: list[set[int]] = [set() for _ in range(num_workers)]
    last_compute_end = [0] * num_workers
    for worker in range(num_workers):
        for op in timeline.rows[worker]:
            start, end = timeline.slots[op.key()]
            busy[worker].update(range(start, end))
            last_compute_end[worker] = max(last_compute_end[worker], end)

    eager: set[tuple[int, int, int]] = set()
    for worker in range(num_workers):
        for replica, stage in placement.stages_on_worker(worker):
            grad_end = max(
                (
                    timeline.slots[op.key()][1]
                    for op in timeline.rows[worker]
                    if op.is_backward and op.replica == replica and op.stage == stage
                ),
                default=None,
            )
            if grad_end is None:
                continue
            window = range(grad_end, last_compute_end[worker])
            if any(slot not in busy[worker] for slot in window):
                eager.add((worker, replica, stage))
    return eager


def build_chimera_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    num_down_pipelines: int = 1,
    concat: ConcatStrategy | str = ConcatStrategy.DIRECT,
    sync_mode: str = "eager_opt",
    slot_model: str = "practical",
) -> Schedule:
    """Build a Chimera schedule.

    Parameters
    ----------
    depth:
        ``D`` — number of pipeline stages; must be even (bidirectional
        merging is conflict-free only for even ``D``, §3.1).
    num_micro_batches:
        ``N`` — micro-batches per worker per iteration. ``N < D`` is
        supported by splitting as evenly as possible; ``N > D`` uses the
        ``concat`` strategy.
    num_down_pipelines:
        ``f`` — the §3.6 generalization; must divide ``D/2``. The default
        ``f = 1`` combines one down and one up pipeline.
    concat:
        Strategy for ``N > D`` (ignored when ``N <= D``). Forward doubling
        always recomputes its fused units' backwards (flag-based, part of
        the schedule shape); schedule-wide recomputation is the recompute
        pass's job — ``build_schedule("chimera", ..., recompute=True)``.
    sync_mode:
        ``"lazy"``, ``"eager"``, or ``"eager_opt"`` (default; paper §3.2).
    slot_model:
        Duration model used to derive the merged order: ``"practical"``
        (default; backward = 2x forward, Figure 3 bottom) or ``"unit"``
        (equal slots, Figure 3 top — the assumption behind the Table 3
        formulas).

    Returns
    -------
    A validated-shape :class:`~repro.schedules.ir.Schedule`; the unit-slot
    makespan of the merge is recorded in ``metadata["unit_slot_makespan"]``.
    """
    if isinstance(concat, str):
        try:
            concat = ConcatStrategy(concat)
        except ValueError:
            raise ScheduleError(
                f"unknown concatenation strategy {concat!r}; expected one of "
                f"{[s.value for s in ConcatStrategy]}"
            ) from None
    if sync_mode not in SYNC_MODES:
        raise ScheduleError(
            f"unknown sync mode {sync_mode!r}; expected one of {SYNC_MODES}"
        )
    if depth < 2 or depth % 2 != 0:
        raise ScheduleError(
            f"Chimera needs an even number of stages >= 2, got D={depth}"
        )
    f = num_down_pipelines
    placement = StagePlacement.bidirectional(depth, f)
    if num_micro_batches <= depth:
        # A single basic unit (or a partially filled one, N < D).
        strategy = ConcatStrategy.DIRECT
    else:
        strategy = concat

    if slot_model == "practical":
        durations = practical_durations
    elif slot_model == "unit":
        durations = unit_durations
    else:
        raise ScheduleError(
            f"unknown slot model {slot_model!r}; expected 'practical' or 'unit'"
        )
    blocks = partition_micro_batches(num_micro_batches, 2 * f)
    sequences = _stage_sequences(depth, f, blocks, strategy)
    # Forward doubling deliberately doubles the activation budget (paper
    # §3.5), so its per-worker in-flight cap is 2D instead of D.
    inflight_cap = 2 * depth if strategy is ConcatStrategy.FORWARD_DOUBLING else depth
    timeline = merge_pipelines(
        placement, sequences, durations, inflight_cap=inflight_cap
    )

    rows = [list(ops) for ops in timeline.rows]
    if sync_mode == "lazy":
        insert_eager_sync(rows, placement, eager_pairs=set())
    elif sync_mode == "eager":
        insert_eager_sync(rows, placement, eager_pairs=None)
    else:
        insert_eager_sync(
            rows, placement, eager_pairs=_eager_opt_pairs(placement, timeline)
        )

    return Schedule(
        scheme="chimera",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={
            "concat": strategy.value,
            "num_down_pipelines": f,
            "sync_mode": sync_mode,
            "unit_slot_makespan": timeline.makespan,
        },
    )
