"""Structural validation of schedules.

``validate_schedule`` is run by every builder's test and by the simulator in
strict mode. It enforces the invariants that make a schedule executable:

1. **Uniqueness** — no operation is scheduled twice (checked while building
   the dependency graph).
2. **Completeness** — every micro-batch ``0..N-1`` receives exactly one
   forward and a full set of backward parts at *every* stage of exactly one
   replica. A stage's backward may be fused (``B``) or split
   (``Bi`` + ``W``); under splitting the weight-gradient parts must mirror
   the input-gradient parts exactly, and fused/split must not mix for one
   (stage, micro-batch).
3. **Acyclicity** — data dependencies plus each worker's program order admit
   a topological order (i.e. the schedule can actually run without
   deadlock).
4. **Placement consistency** — every compute op is scheduled on the worker
   its placement assigns to ``(replica, stage)``. Comm ops carry the stage
   of the endpoint they run on, so the same rule pins the ``SEND`` to the
   producer's worker and the ``RECV`` to the consumer's.
5. For lowered schedules (:mod:`repro.schedules.lowering`), **lowering
   completeness** — every cross-worker activation/gradient flow has exactly
   one ``SEND``/``RECV`` pair, no comm op covers a same-worker (local) hop,
   and comm ops appear only in schedules marked lowered. (That each ``RECV``
   has a matching ``SEND`` and each ``SEND`` a local producer is enforced
   while building the dependency graph.) Fused schedules
   (:mod:`repro.schedules.passes.fuse`) instead require every flow covered
   by exactly one batched ``SEND`` and **no** ``RECV`` ops at all.
6. **Recompute coverage** — explicit ``RECOMPUTE`` ops (the recompute
   pass) are unique per (replica, stage, micro-batch), sit *before* the
   micro-batch's first backward part on the same worker, and never double
   up with a flag-recomputed backward (whose rematerialization is already
   charged in-op).
7. Optionally, **synchronization coverage** — every hosted stage replica has
   a gradient allreduce op (synchronous schemes only).
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.common.errors import ValidationError
from repro.schedules.dependencies import DependencyGraph, build_dependency_graph
from repro.schedules.ir import OpKind, Schedule


def validate_schedule(
    schedule: Schedule,
    *,
    require_sync_ops: bool = False,
) -> DependencyGraph:
    """Validate ``schedule`` and return its dependency graph.

    Raises
    ------
    ValidationError
        With a message pinpointing the first violated invariant.
    """
    graph = build_dependency_graph(schedule)
    _check_placement(schedule)
    _check_completeness(schedule)
    _check_lowering(schedule)
    _check_recompute(schedule)
    _check_offload(schedule)
    _check_acyclic(graph)
    if require_sync_ops:
        _check_sync_coverage(schedule)
    return graph


def _check_placement(schedule: Schedule) -> None:
    for worker, op in schedule.all_ops():
        expected = schedule.worker_of(op.replica, op.stage)
        if worker != expected:
            raise ValidationError(
                f"{op.short()} (replica {op.replica}, stage {op.stage}) is "
                f"scheduled on worker {worker} but placed on worker {expected}"
            )


def _check_completeness(schedule: Schedule) -> None:
    depth = schedule.num_stages
    n = schedule.num_micro_batches

    # Which replica owns each micro-batch (determined by its stage-0 forward).
    owner: dict[int, int] = {}
    for _, op in schedule.all_ops():
        if op.is_forward and op.stage == 0:
            for mb in op.micro_batches:
                if mb in owner and owner[mb] != op.replica:
                    raise ValidationError(
                        f"micro-batch {mb} enters both replica {owner[mb]} "
                        f"and replica {op.replica}"
                    )
                owner[mb] = op.replica

    missing = sorted(set(range(n)) - set(owner))
    if missing:
        raise ValidationError(f"micro-batches {missing} never enter the pipeline")
    extra = sorted(set(owner) - set(range(n)))
    if extra:
        raise ValidationError(
            f"micro-batches {extra} are outside the declared range 0..{n - 1}"
        )

    fwd_seen: dict[tuple[int, int], int] = defaultdict(int)  # (stage, mb) -> count
    fused_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    input_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    weight_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    for _, op in schedule.all_ops():
        if (
            op.kind is OpKind.ALLREDUCE
            or op.is_comm
            or op.is_host_comm
            or op.is_recompute
        ):
            continue
        for mb in op.micro_batches:
            if op.replica != owner.get(mb):
                raise ValidationError(
                    f"{op.short()} of micro-batch {mb} at stage {op.stage} runs "
                    f"on replica {op.replica}, owner is {owner.get(mb)}"
                )
        if op.is_forward:
            for mb in op.micro_batches:
                fwd_seen[(op.stage, mb)] += 1
        elif op.kind is OpKind.BACKWARD:
            for mb in op.micro_batches:
                fused_parts[(op.stage, mb)].add(op.part)
        elif op.is_backward_input:
            for mb in op.micro_batches:
                input_parts[(op.stage, mb)].add(op.part)
        elif op.is_backward_weight:
            for mb in op.micro_batches:
                weight_parts[(op.stage, mb)].add(op.part)

    def check_parts(parts: set[tuple[int, int]], stage: int, mb: int, what: str) -> None:
        num_parts = {p[1] for p in parts}
        if len(num_parts) != 1:
            raise ValidationError(
                f"micro-batch {mb} mixes {what} splits {sorted(parts)} "
                f"at stage {stage}"
            )
        total = num_parts.pop()
        if {p[0] for p in parts} != set(range(total)):
            raise ValidationError(
                f"micro-batch {mb} {what} parts {sorted(parts)} do not "
                f"cover 0..{total - 1} at stage {stage}"
            )

    for stage in range(depth):
        for mb in range(n):
            if fwd_seen[(stage, mb)] != 1:
                raise ValidationError(
                    f"micro-batch {mb} has {fwd_seen[(stage, mb)]} forwards at "
                    f"stage {stage} (expected exactly 1)"
                )
            fused = fused_parts[(stage, mb)]
            split_in = input_parts[(stage, mb)]
            split_w = weight_parts[(stage, mb)]
            if fused and (split_in or split_w):
                raise ValidationError(
                    f"micro-batch {mb} mixes fused and split backwards at "
                    f"stage {stage}"
                )
            if split_in or split_w:
                check_parts(split_in | split_w, stage, mb, "backward")
                if split_in != split_w:
                    raise ValidationError(
                        f"micro-batch {mb} split-backward halves disagree at "
                        f"stage {stage}: input parts {sorted(split_in)} vs "
                        f"weight parts {sorted(split_w)}"
                    )
                continue
            if not fused:
                raise ValidationError(
                    f"micro-batch {mb} has no backward at stage {stage}"
                )
            check_parts(fused, stage, mb, "backward")


def _check_lowering(schedule: Schedule) -> None:
    """Completeness of the explicit comm ops in a lowered schedule.

    Recomputes, from the schedule structure alone, which activation and
    gradient flows cross a worker boundary, and checks the comm ops cover
    exactly those flows — nothing missing, nothing local lowered.
    """
    has_comm = any(op.is_comm for _, op in schedule.all_ops())
    if not schedule.lowered:
        if has_comm:
            raise ValidationError(
                "schedule contains SEND/RECV ops but is not marked lowered "
                "(run it through repro.schedules.lowering.lower_schedule)"
            )
        return
    fused = bool(schedule.metadata.get("fused_comm", False))

    depth = schedule.num_stages
    sends: set[tuple] = set()  # (replica, src_stage, mb, part, payload)
    recvs: set[tuple] = set()

    def add_flow(flows: set[tuple], op, flow: tuple) -> None:
        # "Exactly one" pair per flow: a second comm op covering an
        # already-claimed flow (e.g. a stray single-mb SEND next to the
        # doubling chunk's SEND) must fail here, not as an executor
        # KeyError at run time.
        if flow in flows:
            raise ValidationError(
                f"{op.short()} (replica {op.replica}) duplicates a flow "
                f"already covered by another comm op: {flow}"
            )
        flows.add(flow)

    for _, op in schedule.all_ops():
        if op.kind is OpKind.SEND:
            src, dst = op.stage, op.peer_stage
            if not 0 <= dst < depth:
                raise ValidationError(
                    f"{op.short()} targets stage {dst} outside 0..{depth - 1}"
                )
            if schedule.worker_of(op.replica, src) == schedule.worker_of(
                op.replica, dst
            ):
                raise ValidationError(
                    f"{op.short()} lowers a local hop (stages {src} and {dst} "
                    f"of replica {op.replica} share a worker)"
                )
            for mb in op.micro_batches:
                add_flow(sends, op, (op.replica, src, mb, op.part, op.payload))
        elif op.kind is OpKind.RECV:
            if fused:
                raise ValidationError(
                    f"fused schedule still carries a RECV op {op.short()} "
                    f"(replica {op.replica}) — fuse_comm batches every "
                    f"transfer into its SEND"
                )
            src = op.peer_stage
            for mb in op.micro_batches:
                add_flow(recvs, op, (op.replica, src, mb, op.part, op.payload))

    required: set[tuple] = set()
    for _, op in schedule.all_ops():
        if op.is_forward and op.stage > 0:
            if schedule.worker_of(op.replica, op.stage - 1) != schedule.worker_of(
                op.replica, op.stage
            ):
                for mb in op.micro_batches:
                    required.add((op.replica, op.stage - 1, mb, op.part, "act"))
        elif op.is_backward and op.stage < depth - 1:
            if schedule.worker_of(op.replica, op.stage + 1) != schedule.worker_of(
                op.replica, op.stage
            ):
                for mb in op.micro_batches:
                    required.add((op.replica, op.stage + 1, mb, op.part, "grad"))

    pairs = (("SEND", sends),) if fused else (("SEND", sends), ("RECV", recvs))
    for name, have in pairs:
        missing = required - have
        if missing:
            replica, stage, mb, part, payload = sorted(missing)[0]
            raise ValidationError(
                f"lowered schedule is missing a {name} for the {payload} of "
                f"micro-batch {mb} part {part} out of stage {stage} "
                f"(replica {replica}); {len(missing)} flow(s) uncovered"
            )
        extra = have - required
        if extra:
            replica, stage, mb, part, payload = sorted(extra)[0]
            raise ValidationError(
                f"lowered schedule has a {name} with no consumer: {payload} "
                f"of micro-batch {mb} part {part} out of stage {stage} "
                f"(replica {replica}); {len(extra)} stray flow(s)"
            )


def _check_recompute(schedule: Schedule) -> None:
    """Positional and uniqueness rules for explicit RECOMPUTE ops.

    (The matching-forward requirement and per-micro-batch uniqueness are
    enforced while building the dependency graph; here we pin the
    *placement*: a rematerialization must precede the first backward part
    of its micro-batch on the same worker, and must not double up with a
    flag-recomputed backward.)
    """
    remat_pos: dict[tuple[int, int, int], tuple[int, int]] = {}
    first_bwd_pos: dict[tuple[int, int, int], tuple[int, int]] = {}
    flagged: set[tuple[int, int, int]] = set()
    for worker, ops in enumerate(schedule.worker_ops):
        for pos, op in enumerate(ops):
            if op.is_recompute:
                for mb in op.micro_batches:
                    remat_pos[(op.replica, op.stage, mb)] = (worker, pos)
            elif op.is_backward:
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb)
                    if key not in first_bwd_pos:
                        first_bwd_pos[key] = (worker, pos)
                    if op.recompute:
                        flagged.add(key)
    for key, (worker, pos) in remat_pos.items():
        if key in flagged:
            raise ValidationError(
                f"(replica, stage, mb) = {key} has both an explicit "
                f"RECOMPUTE op and a flag-recomputed backward — the "
                f"rematerialization would be charged twice"
            )
        bwd = first_bwd_pos.get(key)
        if bwd is None:
            raise ValidationError(
                f"RECOMPUTE for (replica, stage, mb) = {key} has no backward"
            )
        if bwd[0] != worker or bwd[1] < pos:
            raise ValidationError(
                f"RECOMPUTE for (replica, stage, mb) = {key} on worker "
                f"{worker} does not precede its first backward "
                f"(worker {bwd[0]}, position {bwd[1]})"
            )


def _check_offload(schedule: Schedule) -> None:
    """Residency discipline for OFFLOAD/RELOAD pairs.

    (That offloads and reloads pair 1:1 per (replica, stage, micro-batch),
    match micro-batch coverage, and have a matching forward and a consuming
    backward is enforced while building the dependency graph; here we pin
    the *positions*: the stash must be offloaded only after its forward,
    and while it resides on the host — between the OFFLOAD and its RELOAD —
    no operation may consume it. Every stash consumer (backward part,
    weight-gradient half, RECOMPUTE) must follow the RELOAD.)
    """
    offload_pos: dict[tuple[int, int, int], int] = {}
    reload_pos: dict[tuple[int, int, int], int] = {}
    fwd_pos: dict[tuple[int, int, int], int] = {}
    consumer_pos: dict[tuple[int, int, int], list[tuple[int, str]]] = (
        defaultdict(list)
    )
    for worker, ops in enumerate(schedule.worker_ops):
        for pos, op in enumerate(ops):
            keys = [(op.replica, op.stage, mb) for mb in op.micro_batches]
            if op.is_offload:
                for key in keys:
                    offload_pos[key] = pos
            elif op.is_reload:
                for key in keys:
                    reload_pos[key] = pos
            elif op.is_forward:
                for key in keys:
                    fwd_pos[key] = pos
            elif op.is_backward or op.is_backward_weight or op.is_recompute:
                for key in keys:
                    consumer_pos[key].append((pos, op.short()))
    for key, opos in offload_pos.items():
        if key not in fwd_pos or fwd_pos[key] > opos:
            raise ValidationError(
                f"OFFLOAD for (replica, stage, mb) = {key} does not follow "
                f"its forward"
            )
        rpos = reload_pos[key]  # pairing guaranteed by the graph builder
        if rpos < opos:
            raise ValidationError(
                f"RELOAD for (replica, stage, mb) = {key} precedes its "
                f"OFFLOAD"
            )
        for cpos, short in consumer_pos.get(key, ()):
            if opos < cpos < rpos:
                raise ValidationError(
                    f"{short} consumes the stash of (replica, stage, mb) = "
                    f"{key} while it resides on the host (between its "
                    f"OFFLOAD and RELOAD)"
                )


def _check_acyclic(graph: DependencyGraph) -> None:
    """Kahn's algorithm over data edges plus per-worker program order."""
    schedule = graph.schedule
    indegree: dict[tuple, int] = {key: 0 for key in graph.location}
    out: dict[tuple, list[tuple]] = defaultdict(list)

    def add_edge(src: tuple, dst: tuple) -> None:
        out[src].append(dst)
        indegree[dst] += 1

    for key, incoming in graph.deps.items():
        for edge in incoming:
            add_edge(edge.src, key)
    for ops in schedule.worker_ops:
        for prev, nxt in zip(ops, ops[1:]):
            add_edge(prev.key(), nxt.key())

    ready = deque(key for key, deg in indegree.items() if deg == 0)
    visited = 0
    while ready:
        key = ready.popleft()
        visited += 1
        for succ in out[key]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if visited != len(indegree):
        stuck = [key for key, deg in indegree.items() if deg > 0][:8]
        raise ValidationError(
            f"schedule has a dependency cycle / deadlock; {len(indegree) - visited} "
            f"operations can never run, e.g. {stuck}"
        )


def validate_synthesized_schedule(
    schedule: Schedule,
    *,
    memory_budget_units: float | None = None,
) -> DependencyGraph:
    """:func:`validate_schedule` plus the synthesized-schedule rule set.

    A ``synthesize`` schedule is search output, not a hand-audited recipe,
    so it carries extra obligations on top of general executability:

    * scheme is ``"synthesize"`` (the rules below are meaningless for the
      hand-written builders);
    * **split-only discipline** — every backward is a ``Bi``/``W`` pair,
      never a fused ``B`` (the search space is (F, Bi, W) placements; a
      fused op would make the cost/memory trade the search optimizes
      unobservable);
    * each ``W`` runs after its ``Bi`` **on the same worker** (the weight
      gradient consumes the stash its input-gradient half left behind);
    * the search provenance is stamped in metadata (``seed``, ``cost``,
      ``peak_units``, ``makespan``) so a cached schedule can always be
      traced back to its parameters;
    * the stamped ``peak_units`` matches a recount by
      :func:`repro.schedules.synthesize.peak_stash_units`, and fits the
      declared (or explicitly passed) memory budget.

    Raises
    ------
    ValidationError
        Naming the first violated rule.
    """
    graph = validate_schedule(schedule, require_sync_ops=schedule.synchronous)
    if schedule.scheme != "synthesize":
        raise ValidationError(
            f"synthesized-schedule rules apply to scheme 'synthesize', "
            f"got {schedule.scheme!r}"
        )
    for worker, ops in enumerate(schedule.worker_ops):
        last_bi: dict[tuple, int] = {}
        for pos, op in enumerate(ops):
            if op.kind is OpKind.BACKWARD:
                raise ValidationError(
                    f"synthesized schedule carries a fused backward "
                    f"{op.short()} on worker {worker}; the search emits "
                    f"split Bi/W pairs only"
                )
            if op.is_backward_input:
                for mb in op.micro_batches:
                    last_bi[(op.replica, op.stage, mb, op.part)] = pos
            elif op.is_backward_weight:
                for mb in op.micro_batches:
                    key = (op.replica, op.stage, mb, op.part)
                    if key not in last_bi:
                        raise ValidationError(
                            f"weight gradient {op.short()} (micro-batch "
                            f"{mb}) on worker {worker} has no earlier "
                            f"input gradient on the same worker"
                        )
    for field in ("seed", "cost", "peak_units", "makespan"):
        if field not in schedule.metadata:
            raise ValidationError(
                f"synthesized schedule is missing metadata[{field!r}] — "
                f"search provenance must be stamped on the output"
            )
    from repro.schedules.synthesize import peak_stash_units

    recounted = peak_stash_units(schedule)
    stamped = float(schedule.metadata["peak_units"])  # type: ignore[arg-type]
    if abs(recounted - stamped) > 1e-9:
        raise ValidationError(
            f"synthesized schedule stamps peak_units={stamped:g} but a "
            f"recount gives {recounted:g}"
        )
    budget = memory_budget_units
    if budget is None:
        declared = schedule.metadata.get("memory_budget_units")
        budget = None if declared is None else float(declared)  # type: ignore[arg-type]
    if budget is not None and recounted > budget + 1e-9:
        raise ValidationError(
            f"synthesized schedule peaks at {recounted:g} full-stage "
            f"stashes, over its memory budget of {budget:g}"
        )
    return graph


def _check_sync_coverage(schedule: Schedule) -> None:
    synced: set[tuple[int, int]] = set()
    for _, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            synced.add((op.replica, op.stage))
    for worker in range(schedule.num_workers):
        for replica, stage in schedule.replicas_hosted_by(worker):
            if (replica, stage) not in synced:
                raise ValidationError(
                    f"stage {stage} of replica {replica} (worker {worker}) "
                    f"has no gradient synchronization op"
                )
