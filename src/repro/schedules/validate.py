"""Structural validation of schedules.

``validate_schedule`` is run by every builder's test and by the simulator in
strict mode. It enforces the invariants that make a schedule executable:

1. **Uniqueness** — no operation is scheduled twice (checked while building
   the dependency graph).
2. **Completeness** — every micro-batch ``0..N-1`` receives exactly one
   forward and a full set of backward parts at *every* stage of exactly one
   replica. A stage's backward may be fused (``B``) or split
   (``Bi`` + ``W``); under splitting the weight-gradient parts must mirror
   the input-gradient parts exactly, and fused/split must not mix for one
   (stage, micro-batch).
3. **Acyclicity** — data dependencies plus each worker's program order admit
   a topological order (i.e. the schedule can actually run without
   deadlock).
4. **Placement consistency** — every compute op is scheduled on the worker
   its placement assigns to ``(replica, stage)``.
5. Optionally, **synchronization coverage** — every hosted stage replica has
   a gradient allreduce op (synchronous schemes only).
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.common.errors import ValidationError
from repro.schedules.dependencies import DependencyGraph, build_dependency_graph
from repro.schedules.ir import OpKind, Schedule


def validate_schedule(
    schedule: Schedule,
    *,
    require_sync_ops: bool = False,
) -> DependencyGraph:
    """Validate ``schedule`` and return its dependency graph.

    Raises
    ------
    ValidationError
        With a message pinpointing the first violated invariant.
    """
    graph = build_dependency_graph(schedule)
    _check_placement(schedule)
    _check_completeness(schedule)
    _check_acyclic(graph)
    if require_sync_ops:
        _check_sync_coverage(schedule)
    return graph


def _check_placement(schedule: Schedule) -> None:
    for worker, op in schedule.all_ops():
        expected = schedule.worker_of(op.replica, op.stage)
        if worker != expected:
            raise ValidationError(
                f"{op.short()} (replica {op.replica}, stage {op.stage}) is "
                f"scheduled on worker {worker} but placed on worker {expected}"
            )


def _check_completeness(schedule: Schedule) -> None:
    depth = schedule.num_stages
    n = schedule.num_micro_batches

    # Which replica owns each micro-batch (determined by its stage-0 forward).
    owner: dict[int, int] = {}
    for _, op in schedule.all_ops():
        if op.is_forward and op.stage == 0:
            for mb in op.micro_batches:
                if mb in owner and owner[mb] != op.replica:
                    raise ValidationError(
                        f"micro-batch {mb} enters both replica {owner[mb]} "
                        f"and replica {op.replica}"
                    )
                owner[mb] = op.replica

    missing = sorted(set(range(n)) - set(owner))
    if missing:
        raise ValidationError(f"micro-batches {missing} never enter the pipeline")
    extra = sorted(set(owner) - set(range(n)))
    if extra:
        raise ValidationError(
            f"micro-batches {extra} are outside the declared range 0..{n - 1}"
        )

    fwd_seen: dict[tuple[int, int], int] = defaultdict(int)  # (stage, mb) -> count
    fused_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    input_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    weight_parts: dict[tuple[int, int], set[tuple[int, int]]] = defaultdict(set)
    for _, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            continue
        for mb in op.micro_batches:
            if op.replica != owner.get(mb):
                raise ValidationError(
                    f"{op.short()} of micro-batch {mb} at stage {op.stage} runs "
                    f"on replica {op.replica}, owner is {owner.get(mb)}"
                )
        if op.is_forward:
            for mb in op.micro_batches:
                fwd_seen[(op.stage, mb)] += 1
        elif op.kind is OpKind.BACKWARD:
            for mb in op.micro_batches:
                fused_parts[(op.stage, mb)].add(op.part)
        elif op.is_backward_input:
            for mb in op.micro_batches:
                input_parts[(op.stage, mb)].add(op.part)
        elif op.is_backward_weight:
            for mb in op.micro_batches:
                weight_parts[(op.stage, mb)].add(op.part)

    def check_parts(parts: set[tuple[int, int]], stage: int, mb: int, what: str) -> None:
        num_parts = {p[1] for p in parts}
        if len(num_parts) != 1:
            raise ValidationError(
                f"micro-batch {mb} mixes {what} splits {sorted(parts)} "
                f"at stage {stage}"
            )
        total = num_parts.pop()
        if {p[0] for p in parts} != set(range(total)):
            raise ValidationError(
                f"micro-batch {mb} {what} parts {sorted(parts)} do not "
                f"cover 0..{total - 1} at stage {stage}"
            )

    for stage in range(depth):
        for mb in range(n):
            if fwd_seen[(stage, mb)] != 1:
                raise ValidationError(
                    f"micro-batch {mb} has {fwd_seen[(stage, mb)]} forwards at "
                    f"stage {stage} (expected exactly 1)"
                )
            fused = fused_parts[(stage, mb)]
            split_in = input_parts[(stage, mb)]
            split_w = weight_parts[(stage, mb)]
            if fused and (split_in or split_w):
                raise ValidationError(
                    f"micro-batch {mb} mixes fused and split backwards at "
                    f"stage {stage}"
                )
            if split_in or split_w:
                check_parts(split_in | split_w, stage, mb, "backward")
                if split_in != split_w:
                    raise ValidationError(
                        f"micro-batch {mb} split-backward halves disagree at "
                        f"stage {stage}: input parts {sorted(split_in)} vs "
                        f"weight parts {sorted(split_w)}"
                    )
                continue
            if not fused:
                raise ValidationError(
                    f"micro-batch {mb} has no backward at stage {stage}"
                )
            check_parts(fused, stage, mb, "backward")


def _check_acyclic(graph: DependencyGraph) -> None:
    """Kahn's algorithm over data edges plus per-worker program order."""
    schedule = graph.schedule
    indegree: dict[tuple, int] = {key: 0 for key in graph.location}
    out: dict[tuple, list[tuple]] = defaultdict(list)

    def add_edge(src: tuple, dst: tuple) -> None:
        out[src].append(dst)
        indegree[dst] += 1

    for key, incoming in graph.deps.items():
        for edge in incoming:
            add_edge(edge.src, key)
    for ops in schedule.worker_ops:
        for prev, nxt in zip(ops, ops[1:]):
            add_edge(prev.key(), nxt.key())

    ready = deque(key for key, deg in indegree.items() if deg == 0)
    visited = 0
    while ready:
        key = ready.popleft()
        visited += 1
        for succ in out[key]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if visited != len(indegree):
        stuck = [key for key, deg in indegree.items() if deg > 0][:8]
        raise ValidationError(
            f"schedule has a dependency cycle / deadlock; {len(indegree) - visited} "
            f"operations can never run, e.g. {stuck}"
        )


def _check_sync_coverage(schedule: Schedule) -> None:
    synced: set[tuple[int, int]] = set()
    for _, op in schedule.all_ops():
        if op.kind is OpKind.ALLREDUCE:
            synced.add((op.replica, op.stage))
    for worker in range(schedule.num_workers):
        for replica, stage in schedule.replicas_hosted_by(worker):
            if (replica, stage) not in synced:
                raise ValidationError(
                    f"stage {stage} of replica {replica} (worker {worker}) "
                    f"has no gradient synchronization op"
                )
