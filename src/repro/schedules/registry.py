"""Name-based schedule construction, per-scheme traits, default pipelines.

The benchmark harness sweeps over scheme names; this registry maps each name
to its builder with a uniform ``(depth, num_micro_batches, **options)``
signature. ``_BUILDERS`` is ordered: its insertion order *is* the canonical
presentation order (Table 2 comparison order, then the zero-bubble family,
then the memory-controllable V-schedules), and both
:func:`available_schemes` and error messages derive from it so the two can
never drift apart.

:func:`scheme_traits` exposes the structural facts a *caller* needs before
it can even build a schedule — whether the depth must be even, how many
chunk stages each worker hosts (the V-shaped family folds ``2D`` chunks
over ``D`` workers, so the model must split into ``2D`` parts), whether
the scheme is synchronous, and the scheme's **default pass pipeline**
(:mod:`repro.schedules.passes`). Builders emit *compute rows only*; the
cross-cutting transforms — gradient-sync placement, recomputation,
bubble filling, lowering, communication fusion — are passes the registry
composes:

    builder output → default passes → ``recompute`` (if requested)
                   → caller-requested ``passes``

Two schemes keep scheme-managed synchronization (empty default pipeline):
PipeDream synchronizes after every micro-batch inside its builder, and
Chimera's ``eager_opt`` placement needs the merged timeline's bubble
structure.

Options are split in two: ``recompute`` and ``passes`` address the pass
pipeline and work for **every** scheme; everything else must be a keyword
the scheme's builder declares, checked up front — an unknown key raises
:class:`~repro.common.errors.UnknownOptionError` naming the scheme and
the key instead of disappearing into ``**options``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, UnknownOptionError
from repro.schedules.chimera import build_chimera_schedule
from repro.schedules.dapple import build_dapple_schedule
from repro.schedules.gems import build_gems_schedule
from repro.schedules.gpipe import build_gpipe_schedule
from repro.schedules.ir import Schedule
from repro.schedules.passes import SchedulePass, resolve_pipeline
from repro.schedules.pipedream import build_pipedream_schedule
from repro.schedules.pipedream_2bw import build_pipedream_2bw_schedule
from repro.schedules.zero_bubble import (
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
)

_BUILDERS: dict[str, Callable[..., Schedule]] = {
    "pipedream": build_pipedream_schedule,
    "pipedream_2bw": build_pipedream_2bw_schedule,
    "gpipe": build_gpipe_schedule,
    "gems": build_gems_schedule,
    "dapple": build_dapple_schedule,
    "chimera": build_chimera_schedule,
    "zb_h1": build_zb_h1_schedule,
    "zb_v": build_zb_v_schedule,
    "zb_vhalf": build_zb_vhalf_schedule,
    "zb_vmin": build_zb_vmin_schedule,
}

#: Options the registry itself consumes; valid for every scheme and never
#: forwarded to a builder.
PIPELINE_OPTIONS = ("recompute", "passes")


@dataclass(frozen=True)
class SchemeTraits:
    """Structural facts about a scheme, known before building a schedule.

    Attributes
    ----------
    stages_per_worker:
        Model chunks hosted per worker: 1 for the classic one-stage-per-
        worker placements, 2 for the V-shaped zero-bubble family (a
        schedule at depth ``D`` then has ``2D`` stages, and the workload's
        layer count must divide into ``2D`` chunks).
    requires_even_depth:
        True for the bidirectional placements (Chimera, GEMS), whose
        down/up merge needs an even ``D``.
    synchronous:
        False for the flush-free PipeDream family (stale updates).
    default_passes:
        The pass pipeline :func:`build_schedule` always applies to the
        builder's output (before any requested ``recompute`` /
        ``passes``). Empty for schemes whose synchronization is
        scheme-managed inside the builder.
    cost_parameterized:
        True when the builder's output depends on more than
        ``(depth, num_micro_batches)`` — e.g. the ``synthesize`` search,
        whose schedule is a function of the cost model and memory budget.
        Such schemes must register a ``builder_fingerprint`` hook so the
        schedule cache can key on the extra parameters; sweeps that assume
        one schedule per ``(scheme, D, N)`` (paper tables, the perf suite)
        skip them.
    """

    stages_per_worker: int = 1
    requires_even_depth: bool = False
    synchronous: bool = True
    default_passes: tuple[str, ...] = ("insert_sync",)
    cost_parameterized: bool = False

    def stage_count(self, depth: int) -> int:
        """Number of model stages a schedule at ``depth`` workers has."""
        return depth * self.stages_per_worker


_TRAITS: dict[str, SchemeTraits] = {
    "pipedream": SchemeTraits(synchronous=False, default_passes=()),
    "pipedream_2bw": SchemeTraits(synchronous=False),
    "gpipe": SchemeTraits(),
    "gems": SchemeTraits(requires_even_depth=True),
    "dapple": SchemeTraits(),
    "chimera": SchemeTraits(requires_even_depth=True, default_passes=()),
    "zb_h1": SchemeTraits(),
    "zb_v": SchemeTraits(stages_per_worker=2),
    "zb_vhalf": SchemeTraits(stages_per_worker=2),
    "zb_vmin": SchemeTraits(stages_per_worker=2),
}

assert set(_TRAITS) == set(_BUILDERS), "traits and builders out of sync"

#: Optional per-scheme ``builder_fingerprint`` hooks (see
#: :func:`register_scheme`): ``options -> hashable`` canonicalizations the
#: schedule cache folds into its key for cost-parameterized schemes.
_FINGERPRINTS: dict[str, Callable[[dict], object]] = {}


def available_schemes() -> tuple[str, ...]:
    """All registered scheme names, in canonical comparison order."""
    return tuple(_BUILDERS)


def register_scheme(
    name: str,
    builder: Callable[..., Schedule],
    traits: SchemeTraits,
    *,
    builder_fingerprint: Callable[[dict], object] | None = None,
    replace: bool = False,
) -> None:
    """Register ``builder`` under ``name`` (appended to canonical order).

    Registration is what makes a scheme a first-class citizen: it appears
    in :func:`available_schemes`, in every unknown-scheme error message
    (those enumerate the registry *at raise time*), in ``repro plan``'s
    candidate grid, and in the CLI scheme lists.

    Parameters
    ----------
    builder:
        ``(depth, num_micro_batches, **options) -> Schedule`` with every
        option declared keyword-only (so :func:`builder_options` can
        enumerate them).
    traits:
        The scheme's :class:`SchemeTraits`. A trait with
        ``cost_parameterized=True`` requires a ``builder_fingerprint``.
    builder_fingerprint:
        Canonicalizes a builder-option dict into a hashable value that
        uniquely identifies the builder's output beyond ``(D, N)``; the
        schedule cache folds it into its key (memory and disk tiers). It
        must raise :class:`~repro.common.errors.ReproError` on options it
        cannot cover — returning a partial fingerprint would alias
        distinct schedules.
    replace:
        Allow overwriting an existing registration (tests); by default a
        duplicate name raises :class:`ConfigurationError`.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"scheme name must be a non-empty string, got {name!r}"
        )
    if name in _BUILDERS and not replace:
        raise ConfigurationError(
            f"scheme {name!r} is already registered; pass replace=True to override"
        )
    if traits.cost_parameterized and builder_fingerprint is None:
        raise ConfigurationError(
            f"cost-parameterized scheme {name!r} must provide a "
            f"builder_fingerprint so cache keys cover its parameters"
        )
    _BUILDERS[name] = builder
    _TRAITS[name] = traits
    if builder_fingerprint is not None:
        _FINGERPRINTS[name] = builder_fingerprint
    else:
        _FINGERPRINTS.pop(name, None)


def unregister_scheme(name: str) -> None:
    """Remove a registered scheme (primarily for tests)."""
    if name not in _BUILDERS:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {list(available_schemes())}"
        )
    del _BUILDERS[name]
    del _TRAITS[name]
    _FINGERPRINTS.pop(name, None)


def builder_fingerprint(scheme: str, options: dict) -> object | None:
    """The scheme's canonical builder-parameter fingerprint, or ``None``.

    ``None`` means the scheme's output depends only on ``(D, N)`` and the
    classic cache key suffices. Pipeline options (``recompute``/``passes``)
    are the cache layer's concern and are stripped before the hook runs.
    """
    hook = _FINGERPRINTS.get(scheme)
    if hook is None:
        return None
    return hook({k: v for k, v in options.items() if k not in PIPELINE_OPTIONS})


def scheme_traits(scheme: str) -> SchemeTraits:
    """Structural traits of a registered scheme (see :class:`SchemeTraits`)."""
    try:
        return _TRAITS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None


def builder_options(scheme: str) -> tuple[str, ...]:
    """The keyword options a scheme's builder declares (sorted)."""
    try:
        builder = _BUILDERS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None
    params = inspect.signature(builder).parameters
    return tuple(
        sorted(
            name
            for name, p in params.items()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        )
    )


def _check_builder_options(scheme: str, options: dict) -> None:
    known = set(builder_options(scheme))
    for key in options:
        if key not in known:
            raise UnknownOptionError(
                f"scheme {scheme!r} does not accept builder option {key!r}; "
                f"valid options for {scheme}: {sorted(known)} "
                f"(plus the universal pipeline options "
                f"{list(PIPELINE_OPTIONS)})"
            )


def build_schedule(
    scheme: str, depth: int, num_micro_batches: int, **options: object
) -> Schedule:
    """Build a schedule by scheme name and run its pass pipeline.

    Universal pipeline options (any scheme):

    * ``recompute=True`` — append the activation-recomputation pass;
    * ``passes=...`` — extra passes after the defaults: a comma-separated
      spec string (``"fill_bubbles,lower_p2p,fuse_comm"``), a sequence of
      specs / :class:`~repro.schedules.passes.SchedulePass` objects, or a
      pre-built pipeline.

    Everything else is forwarded to the scheme's builder (e.g.
    ``concat=``/``num_down_pipelines=``/``sync_mode=`` for Chimera,
    ``max_in_flight=`` for the greedy zero-bubble pair) and must be a
    keyword the builder declares — an unknown key raises
    :class:`~repro.common.errors.UnknownOptionError` naming the scheme
    and the key.
    """
    try:
        builder = _BUILDERS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None
    recompute = bool(options.pop("recompute", False))
    passes = options.pop("passes", None)
    _check_builder_options(scheme, options)

    schedule = builder(depth, num_micro_batches, **options)

    specs: list[str | SchedulePass] = list(_TRAITS[scheme].default_passes)
    if recompute:
        specs.append("recompute")
    if passes is not None:
        specs.extend(resolve_pipeline(passes).passes)
    return resolve_pipeline(specs).run(schedule)


# The synthesized scheme registers itself through the public path: it is
# the first cost-parameterized builder, and its fingerprint hook is what
# exercises the cache's builder_fingerprint keying. Imported last because
# synthesize derives seed candidates from the registered schemes (lazily,
# via the cache) — the import-time dependency must stay one-way.
from repro.schedules.synthesize import (  # noqa: E402
    build_synthesize_schedule,
    synthesize_fingerprint,
)

register_scheme(
    "synthesize",
    build_synthesize_schedule,
    SchemeTraits(stages_per_worker=2, cost_parameterized=True),
    builder_fingerprint=synthesize_fingerprint,
)
