"""Name-based schedule construction and per-scheme structural traits.

The benchmark harness sweeps over scheme names; this registry maps each name
to its builder with a uniform ``(depth, num_micro_batches, **options)``
signature. ``_BUILDERS`` is ordered: its insertion order *is* the canonical
presentation order (Table 2 comparison order, then the zero-bubble family,
then the memory-controllable V-schedules), and both
:func:`available_schemes` and error messages derive from it so the two can
never drift apart.

:func:`scheme_traits` exposes the structural facts a *caller* needs before
it can even build a schedule — whether the depth must be even, how many
chunk stages each worker hosts (the V-shaped family folds ``2D`` chunks
over ``D`` workers, so the model must split into ``2D`` parts), and whether
the scheme is synchronous. The configuration planner
(:mod:`repro.perf.planner`) and the figure drivers use these to enumerate
valid ``(scheme, W, D)`` grids without try/except scaffolding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.schedules.chimera import build_chimera_schedule
from repro.schedules.dapple import build_dapple_schedule
from repro.schedules.gems import build_gems_schedule
from repro.schedules.gpipe import build_gpipe_schedule
from repro.schedules.ir import Schedule
from repro.schedules.pipedream import build_pipedream_schedule
from repro.schedules.pipedream_2bw import build_pipedream_2bw_schedule
from repro.schedules.zero_bubble import (
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
)

_BUILDERS: dict[str, Callable[..., Schedule]] = {
    "pipedream": build_pipedream_schedule,
    "pipedream_2bw": build_pipedream_2bw_schedule,
    "gpipe": build_gpipe_schedule,
    "gems": build_gems_schedule,
    "dapple": build_dapple_schedule,
    "chimera": build_chimera_schedule,
    "zb_h1": build_zb_h1_schedule,
    "zb_v": build_zb_v_schedule,
    "zb_vhalf": build_zb_vhalf_schedule,
    "zb_vmin": build_zb_vmin_schedule,
}


@dataclass(frozen=True)
class SchemeTraits:
    """Structural facts about a scheme, known before building a schedule.

    Attributes
    ----------
    stages_per_worker:
        Model chunks hosted per worker: 1 for the classic one-stage-per-
        worker placements, 2 for the V-shaped zero-bubble family (a
        schedule at depth ``D`` then has ``2D`` stages, and the workload's
        layer count must divide into ``2D`` chunks).
    requires_even_depth:
        True for the bidirectional placements (Chimera, GEMS), whose
        down/up merge needs an even ``D``.
    synchronous:
        False for the flush-free PipeDream family (stale updates).
    """

    stages_per_worker: int = 1
    requires_even_depth: bool = False
    synchronous: bool = True

    def stage_count(self, depth: int) -> int:
        """Number of model stages a schedule at ``depth`` workers has."""
        return depth * self.stages_per_worker


_TRAITS: dict[str, SchemeTraits] = {
    "pipedream": SchemeTraits(synchronous=False),
    "pipedream_2bw": SchemeTraits(synchronous=False),
    "gpipe": SchemeTraits(),
    "gems": SchemeTraits(requires_even_depth=True),
    "dapple": SchemeTraits(),
    "chimera": SchemeTraits(requires_even_depth=True),
    "zb_h1": SchemeTraits(),
    "zb_v": SchemeTraits(stages_per_worker=2),
    "zb_vhalf": SchemeTraits(stages_per_worker=2),
    "zb_vmin": SchemeTraits(stages_per_worker=2),
}

assert set(_TRAITS) == set(_BUILDERS), "traits and builders out of sync"


def available_schemes() -> tuple[str, ...]:
    """All registered scheme names, in canonical comparison order."""
    return tuple(_BUILDERS)


def scheme_traits(scheme: str) -> SchemeTraits:
    """Structural traits of a registered scheme (see :class:`SchemeTraits`)."""
    try:
        return _TRAITS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None


def build_schedule(
    scheme: str, depth: int, num_micro_batches: int, **options: object
) -> Schedule:
    """Build a schedule by scheme name.

    Options are forwarded to the scheme's builder (e.g. ``recompute=True``
    for any scheme, ``concat=``/``num_down_pipelines=``/``sync_mode=`` for
    Chimera, ``max_in_flight=`` for the greedy zero-bubble pair).
    """
    try:
        builder = _BUILDERS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None
    return builder(depth, num_micro_batches, **options)
