"""Name-based schedule construction.

The benchmark harness sweeps over scheme names; this registry maps each name
to its builder with a uniform ``(depth, num_micro_batches, **options)``
signature. ``_BUILDERS`` is ordered: its insertion order *is* the canonical
presentation order (Table 2 comparison order, then the zero-bubble family),
and both :func:`available_schemes` and error messages derive from it so the
two can never drift apart.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.schedules.chimera import build_chimera_schedule
from repro.schedules.dapple import build_dapple_schedule
from repro.schedules.gems import build_gems_schedule
from repro.schedules.gpipe import build_gpipe_schedule
from repro.schedules.ir import Schedule
from repro.schedules.pipedream import build_pipedream_schedule
from repro.schedules.pipedream_2bw import build_pipedream_2bw_schedule
from repro.schedules.zero_bubble import build_zb_h1_schedule, build_zb_v_schedule

_BUILDERS: dict[str, Callable[..., Schedule]] = {
    "pipedream": build_pipedream_schedule,
    "pipedream_2bw": build_pipedream_2bw_schedule,
    "gpipe": build_gpipe_schedule,
    "gems": build_gems_schedule,
    "dapple": build_dapple_schedule,
    "chimera": build_chimera_schedule,
    "zb_h1": build_zb_h1_schedule,
    "zb_v": build_zb_v_schedule,
}


def available_schemes() -> tuple[str, ...]:
    """All registered scheme names, in canonical comparison order."""
    return tuple(_BUILDERS)


def build_schedule(
    scheme: str, depth: int, num_micro_batches: int, **options: object
) -> Schedule:
    """Build a schedule by scheme name.

    Options are forwarded to the scheme's builder (e.g. ``recompute=True``
    for any scheme, ``concat=``/``num_down_pipelines=``/``sync_mode=`` for
    Chimera, ``max_in_flight=`` for the zero-bubble family).
    """
    try:
        builder = _BUILDERS[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; available: {list(available_schemes())}"
        ) from None
    return builder(depth, num_micro_batches, **options)
