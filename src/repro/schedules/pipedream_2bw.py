"""PipeDream-2BW schedule builder [Narayanan et al. 2020].

PipeDream-2BW keeps PipeDream's flush-free 1F1B pattern but uses *gradient
accumulation* over ``N >= D`` micro-batches and double-buffered weights
(exactly 2 stashed versions regardless of depth). Weight staleness remains
(the backward of the first micro-batches of an accumulation window uses the
previous weight version), so the scheme is asynchronous / not
convergence-equivalent to mini-batch SGD, but its memory cost is ``2 M_theta``
instead of PipeDream's up to ``D M_theta`` (Table 2).

Gradient synchronization across the ``W`` replicated pipelines happens once
per accumulation window and is overlapped with the next window's compute;
the registry's default ``insert_sync`` pass places a single per-stage
``ALLREDUCE`` at the end of the window.
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.onefb import onefb_stage_order
from repro.schedules.placement import StagePlacement


def build_pipedream_2bw_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build a PipeDream-2BW accumulation window of ``N`` micro-batches."""
    if depth < 1:
        raise ScheduleError("PipeDream-2BW needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("PipeDream-2BW needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    mbs = range(num_micro_batches)
    rows: list[list[Operation]] = [
        onefb_stage_order(stage, depth, mbs) for stage in range(depth)
    ]
    return Schedule(
        scheme="pipedream_2bw",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=False,
        metadata={
            "weight_versions": 2,
            "overlap_sync_with_next_window": True,
        },
    )
