"""Pipeline-parallel schedule construction.

This package contains the paper's primary contribution — the Chimera
bidirectional schedule (:mod:`repro.schedules.chimera`) — together with every
baseline it is compared against in Table 2 of the paper:

* :mod:`repro.schedules.gpipe` — GPipe [Huang et al. 2019]
* :mod:`repro.schedules.dapple` — DAPPLE / synchronous 1F1B [Fan et al. 2021]
* :mod:`repro.schedules.gems` — GEMS [Jain et al. 2020]
* :mod:`repro.schedules.pipedream` — PipeDream [Narayanan et al. 2019]
* :mod:`repro.schedules.pipedream_2bw` — PipeDream-2BW [Narayanan et al. 2020]

plus the zero-bubble family built on the split backward
(:mod:`repro.schedules.zero_bubble` — ZB-H1 / ZB-V [Qi et al. 2023] and the
memory-controllable ZB-vhalf / ZB-vmin [Qi et al. 2024]), the strongest
modern baselines to compare Chimera against.

All builders produce the same :class:`repro.schedules.ir.Schedule` IR, which
the simulator (:mod:`repro.sim`), the training runtime
(:mod:`repro.runtime`), and the memory model consume uniformly. Builders
emit compute rows; the cross-cutting transforms — gradient-sync
placement, activation recomputation, bubble filling, communication
lowering and fusion — are composable passes
(:mod:`repro.schedules.passes`) that the registry's default pipelines,
the CLI's ``--passes`` flag, and the schedule cache all share. The
lowering implementation itself lives in :mod:`repro.schedules.lowering`
and rewrites any scheme — without per-builder code — into a form with
explicit ``SEND``/``RECV`` communication ops, enabling link-contention
simulation and comm-lane rendering.
"""

from repro.schedules.ir import Operation, OpKind, Schedule
from repro.schedules.placement import StagePlacement
from repro.schedules.chimera import build_chimera_schedule, ConcatStrategy
from repro.schedules.gpipe import build_gpipe_schedule
from repro.schedules.dapple import build_dapple_schedule
from repro.schedules.gems import build_gems_schedule
from repro.schedules.pipedream import build_pipedream_schedule
from repro.schedules.pipedream_2bw import build_pipedream_2bw_schedule
from repro.schedules.zero_bubble import (
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
    stable_pattern,
)
from repro.schedules.registry import (
    SchemeTraits,
    available_schemes,
    build_schedule,
    builder_fingerprint,
    register_scheme,
    scheme_traits,
    unregister_scheme,
)
from repro.schedules.synthesize import (
    build_synthesize_schedule,
    peak_stash_units,
    synthesis_cost_model,
)
from repro.schedules.lowering import is_lowered, lower_schedule
from repro.schedules.passes import (
    DEFAULT_PASS_MANAGER,
    FillBubblesPass,
    FuseCommPass,
    InsertSyncPass,
    LowerP2PPass,
    PassManager,
    PassPipeline,
    RecomputePass,
    SchedulePass,
    pipeline_signature,
    register_pass,
    resolve_pipeline,
    schedule_facts,
)
from repro.schedules.cache import (
    ScheduleArtifacts,
    ScheduleCache,
    cached_build_schedule,
    clear_schedule_cache,
    schedule_artifacts,
    schedule_cache_stats,
)
from repro.schedules.validate import validate_schedule, validate_synthesized_schedule
from repro.schedules.analysis import (
    bubble_ratio_formula,
    activation_interval_formula,
    weight_copies_formula,
    scheme_properties,
)

__all__ = [
    "Operation",
    "OpKind",
    "Schedule",
    "StagePlacement",
    "ConcatStrategy",
    "build_chimera_schedule",
    "build_gpipe_schedule",
    "build_dapple_schedule",
    "build_gems_schedule",
    "build_pipedream_schedule",
    "build_pipedream_2bw_schedule",
    "build_zb_h1_schedule",
    "build_zb_v_schedule",
    "build_zb_vhalf_schedule",
    "build_zb_vmin_schedule",
    "stable_pattern",
    "build_schedule",
    "build_synthesize_schedule",
    "peak_stash_units",
    "synthesis_cost_model",
    "available_schemes",
    "SchemeTraits",
    "scheme_traits",
    "register_scheme",
    "unregister_scheme",
    "builder_fingerprint",
    "lower_schedule",
    "is_lowered",
    "DEFAULT_PASS_MANAGER",
    "PassManager",
    "PassPipeline",
    "SchedulePass",
    "InsertSyncPass",
    "RecomputePass",
    "FillBubblesPass",
    "LowerP2PPass",
    "FuseCommPass",
    "pipeline_signature",
    "register_pass",
    "resolve_pipeline",
    "schedule_facts",
    "ScheduleArtifacts",
    "ScheduleCache",
    "cached_build_schedule",
    "clear_schedule_cache",
    "schedule_artifacts",
    "schedule_cache_stats",
    "validate_schedule",
    "validate_synthesized_schedule",
    "bubble_ratio_formula",
    "activation_interval_formula",
    "weight_copies_formula",
    "scheme_properties",
]
