"""Synthesized schedules: search the (F, Bi, W) placement space directly.

Every other registered scheme is a hand-written stage-order recipe. This
module instead *searches* for a schedule under an arbitrary split-backward
cost model ``(f, b, w, comm)`` and an explicit peak-memory budget:

1. **Seed.** Generate a diverse candidate pool: the stable ZB-V patterns
   (:func:`~repro.schedules.zero_bubble.v_pattern_compute_rows` for
   ``zb_vmin``/``zb_vhalf``), greedy list-scheduling runs under the *actual*
   costs at several in-flight caps on both the linear and the V-shaped
   placement, and — the match-or-beat guarantee — every registered scheme's
   own compute rows with each fused backward split into an adjacent
   ``Bi`` + ``W`` pair (cost- and memory-neutral: a fused backward costs
   ``b + w`` and releases its stash at the same program point, while the
   earlier ``Bi`` completion can only unblock the upstream stage sooner).
2. **Prune.** Drop candidates whose peak live activation exceeds the
   budget, measured in *full-stage* stash units (``Ma``): a chunk stage of
   a ``2D``-stage V placement counts ``1/2``, exactly the units of
   :func:`repro.sim.memory.analyze_memory`'s ``activation_peak_units``
   scaled by ``D / num_stages``.
3. **Score.** Simulate the whole pool in **one**
   :func:`repro.sim.kernel.simulate_batch_many` call under the requested
   cost model and keep the ``beam_width`` best by (makespan, peak).
4. **Refine.** Bounded beam search over weight-gradient placement: a ``W``
   op's only data dependency is its own ``Bi`` and nothing consumes its
   output (gradient sync is inserted later by the ``insert_sync`` pass),
   so swapping a ``W`` one slot earlier or later on its own worker is
   *always* dependency-safe — the move set explores exactly the freedom
   the zero-bubble papers exploit. Each round scores every neighbor of
   every beam member in one batched kernel call.

The builder is **deterministic**: no randomness, identical inputs produce
identical schedules. It is also **cost-parameterized** — the schedule
depends on the cost model and budget, not just ``(scheme, D, N)`` — which
is why registration installs :func:`synthesize_fingerprint` as the
registry's ``builder_fingerprint`` hook: the schedule cache folds the
canonicalized cost/budget/beam parameters into its key (and therefore into
the disk tier's content address), so two synthesized schedules never alias
and an explicit-default caller shares the entry of a no-options caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.common.errors import ConfigurationError, ReproError, ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement
from repro.schedules.zero_bubble import (
    _greedy_split_backward_rows,
    v_pattern_compute_rows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cost import CostModel

#: Default beam width / refinement rounds. Deliberately small: the seeds
#: already include every registered scheme's schedule, so refinement is a
#: local polish, not the source of competitiveness.
DEFAULT_BEAM_WIDTH = 4
DEFAULT_BEAM_ROUNDS = 3

#: Cap on refinement moves generated per beam member per round, keeping a
#: round's batched kernel call bounded independently of ``D`` and ``N``.
_MAX_MOVES_PER_CANDIDATE = 8

#: Slack absorbing float drift when comparing peak stash units to a budget.
_BUDGET_EPS = 1e-9

#: Builder options covered by :func:`synthesize_fingerprint`. Must match
#: the keyword-only parameters of :func:`build_synthesize_schedule`.
_FINGERPRINT_OPTIONS = (
    "f_time",
    "b_time",
    "w_time",
    "comm_time",
    "memory_budget_units",
    "beam_width",
    "beam_rounds",
)


def synthesize_fingerprint(options: Mapping[str, object]) -> tuple:
    """Canonical cost/budget identity of one ``synthesize`` builder call.

    Installed as the registry's ``builder_fingerprint`` hook: the schedule
    cache replaces the raw builder options with this tuple in its key, so

    * two calls that differ in cost model, budget, or beam parameters can
      never alias one cache entry (in memory or on disk), and
    * a caller spelling out the defaults shares the entry of a caller
      omitting them (every option is resolved to its default here).

    Raises
    ------
    ConfigurationError
        On an unknown or non-numeric option — the cache layer treats the
        key as uncacheable and the builder raises the authoritative error.
    """
    unknown = sorted(set(options) - set(_FINGERPRINT_OPTIONS))
    if unknown:
        raise ConfigurationError(
            f"synthesize fingerprint cannot cover unknown option(s) {unknown}"
        )

    def num(name: str, default: float | None) -> float | None:
        value = options.get(name, default)
        if value is None:
            return None
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"synthesize option {name!r} must be a number, got {value!r}"
            ) from None
    return (
        "synthesize",
        num("f_time", 1.0),
        num("b_time", 1.0),
        num("w_time", 1.0),
        num("comm_time", 0.0),
        num("memory_budget_units", None),
        int(num("beam_width", DEFAULT_BEAM_WIDTH) or 0),
        int(num("beam_rounds", DEFAULT_BEAM_ROUNDS) or 0),
    )


def synthesis_cost_model(
    f_time: float,
    b_time: float,
    w_time: float,
    comm_time: float = 0.0,
) -> "CostModel":
    """The :class:`~repro.sim.cost.CostModel` a synthesis run scores under.

    ``f``/``b``/``w`` are the split-backward durations (a fused backward
    costs ``b + w``); ``comm_time`` is the flat per-hop activation/gradient
    message latency (0 disables communication entirely).
    """
    from repro.sim.cost import CostModel
    from repro.sim.network import FlatTopology, LinkSpec

    topology = None
    message_bytes = 0.0
    if comm_time > 0:
        topology = FlatTopology(link=LinkSpec(alpha=comm_time, beta=0.0))
        message_bytes = 1.0
    return CostModel(
        forward_time=f_time,
        backward_ratio=(b_time + w_time) / f_time,
        recompute_backward_ratio=(b_time + w_time + f_time) / f_time,
        backward_input_ratio=b_time / f_time,
        backward_weight_ratio=w_time / f_time,
        activation_message_bytes=message_bytes,
        topology=topology,
    )


def peak_stash_units(schedule: Schedule) -> float:
    """Peak live activation stashes per worker, in full-stage (Ma) units.

    Uses :func:`repro.sim.memory.analyze_memory` with a unit model whose
    per-stage activation size is ``num_workers / num_stages`` — 1 for a
    one-stage-per-worker placement, 1/2 for the folded ``2D``-stage V — so
    budgets are comparable across placements: "at most ``x`` conventional
    stages' worth of activations live on any worker".
    """
    from repro.sim.memory import MemoryModel, analyze_memory

    scale = schedule.num_workers / schedule.num_stages
    report = analyze_memory(
        schedule,
        MemoryModel(
            activation_bytes=scale,
            stash_input_bytes=scale / 4.0,
            weight_bytes=0.0,
            weight_stash_bytes=0.0,
        ),
    )
    return report.peak_bytes


@dataclass
class _Candidate:
    """One synthesized-schedule candidate under evaluation."""

    label: str
    schedule: Schedule
    peak_units: float
    makespan: float = float("inf")
    moves: int = 0

    def key(self) -> tuple:
        return tuple(
            tuple(
                (op.kind, op.replica, op.stage, op.micro_batches, op.part)
                for op in row
            )
            for row in self.schedule.worker_ops
        )


def _as_candidate(
    label: str,
    placement: StagePlacement,
    rows: Sequence[Sequence[Operation]],
    num_micro_batches: int,
    moves: int = 0,
) -> _Candidate:
    schedule = Schedule(
        scheme="synthesize",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
    )
    return _Candidate(
        label=label,
        schedule=schedule,
        peak_units=peak_stash_units(schedule),
        moves=moves,
    )


def _split_backward_rows(schedule: Schedule) -> list[list[Operation]]:
    """A registered scheme's compute rows with fused backwards split.

    Drops synchronization/communication ops (re-inserted by the pass
    pipeline) and replaces each fused ``B`` with an adjacent ``Bi`` + ``W``
    pair covering the same micro-batches and part. Under a cost model with
    ``B = b + w`` the split is cost-neutral on its own worker and can only
    *shorten* the downstream critical path (consumers wait for ``Bi``, not
    the full fused op); the adjacent ``W`` releases the stash at the same
    program point, so the activation peak is unchanged.
    """
    rows: list[list[Operation]] = []
    for ops in schedule.worker_ops:
        row: list[Operation] = []
        for op in ops:
            if op.kind is OpKind.ALLREDUCE or op.is_comm:
                continue
            if op.kind is OpKind.BACKWARD:
                row.append(
                    Operation(
                        OpKind.BACKWARD_INPUT,
                        op.replica,
                        op.stage,
                        micro_batches=op.micro_batches,
                        part=op.part,
                        recompute=op.recompute,
                    )
                )
                row.append(
                    Operation(
                        OpKind.BACKWARD_WEIGHT,
                        op.replica,
                        op.stage,
                        micro_batches=op.micro_batches,
                        part=op.part,
                    )
                )
            else:
                row.append(op)
        rows.append(row)
    return rows


def _seed_candidates(
    depth: int,
    num_micro_batches: int,
    f_time: float,
    b_time: float,
    w_time: float,
) -> list[_Candidate]:
    """The initial candidate pool (patterns, greedy runs, derived schemes)."""
    n = num_micro_batches
    out: list[_Candidate] = []

    vshaped = StagePlacement.vshaped(depth)
    for pattern in ("zb_vmin", "zb_vhalf"):
        rows = v_pattern_compute_rows(pattern, depth, n)
        out.append(_as_candidate(f"pattern:{pattern}", vshaped, rows, n))

    v_caps = sorted({2 * depth, depth + 2, max(2, (2 * depth) // 3 + 2)})
    for cap in v_caps:
        rows = _greedy_split_backward_rows(
            vshaped,
            n,
            caps=[cap] * depth,
            f_time=f_time,
            b_time=b_time,
            w_time=w_time,
        )
        out.append(_as_candidate(f"greedy_v:cap{cap}", vshaped, rows, n))

    linear = StagePlacement.linear(depth)
    h1_caps = [depth - s for s in range(depth)]
    tight = [max(1, min(depth - s, max(1, depth // 2))) for s in range(depth)]
    for name, caps in (("greedy_h:1f1b", h1_caps), ("greedy_h:tight", tight)):
        rows = _greedy_split_backward_rows(
            linear,
            n,
            caps=list(caps),
            f_time=f_time,
            b_time=b_time,
            w_time=w_time,
        )
        out.append(_as_candidate(name, linear, rows, n))

    out.extend(_derived_candidates(depth, n))

    deduped: list[_Candidate] = []
    seen: set[tuple] = set()
    for cand in out:
        key = cand.key()
        if key not in seen:
            seen.add(key)
            deduped.append(cand)
    return deduped


def _derived_candidates(depth: int, num_micro_batches: int) -> list[_Candidate]:
    """Split-backward rewrites of every registered (buildable) scheme.

    These seeds are what guarantees the synthesized schedule matches or
    beats each registered scheme at that scheme's own memory footprint.
    Imported lazily: the registry imports this module to register the
    ``synthesize`` scheme, so the dependency must stay one-way at import
    time. Cost-parameterized schemes (including ``synthesize`` itself) are
    skipped — deriving from them would recurse.
    """
    from repro.schedules.cache import cached_build_schedule
    from repro.schedules.registry import available_schemes, scheme_traits

    out: list[_Candidate] = []
    for scheme in available_schemes():
        if scheme_traits(scheme).cost_parameterized:
            continue
        try:
            source = cached_build_schedule(scheme, depth, num_micro_batches)
        except ReproError:
            continue  # structurally invalid at this (D, N): skip the seed
        rows = _split_backward_rows(source)
        out.append(
            _as_candidate(
                f"scheme:{scheme}", source.placement, rows, num_micro_batches
            )
        )
    return out


def _score(candidates: Sequence[_Candidate], model: "CostModel") -> None:
    """Fill in each candidate's makespan — one batched kernel call."""
    from repro.sim.kernel import simulate_batch_many

    if not candidates:
        return
    batch = simulate_batch_many([(c.schedule, model) for c in candidates])
    for k, cand in enumerate(candidates):
        cand.makespan = float(batch.compute_makespan[k])


def _rank(candidates: list[_Candidate]) -> list[_Candidate]:
    return sorted(candidates, key=lambda c: (c.makespan, c.peak_units, c.label))


def _w_move_neighbors(cand: _Candidate, limit: int) -> list[_Candidate]:
    """Dependency-safe one-slot moves of ``W`` ops, bounded by ``limit``.

    A ``W`` may swap with its predecessor unless that predecessor is its
    own ``Bi`` (the one data dependency), and may always swap with its
    successor — nothing consumes a ``W``'s output before gradient sync.
    Moves are sampled with a stride so successive rounds walk different
    regions of the schedule instead of re-polishing the head.
    """
    rows = [list(row) for row in cand.schedule.worker_ops]
    moves: list[tuple[int, int, int]] = []
    for w, row in enumerate(rows):
        for i, op in enumerate(row):
            if not op.is_backward_weight:
                continue
            if i > 0:
                prev = row[i - 1]
                own_bi = (
                    prev.is_backward_input
                    and prev.replica == op.replica
                    and prev.stage == op.stage
                    and prev.micro_batches == op.micro_batches
                    and prev.part == op.part
                )
                if not own_bi:
                    moves.append((w, i, i - 1))
            if i + 1 < len(row):
                moves.append((w, i, i + 1))
    if not moves:
        return []
    stride = max(1, len(moves) // limit)
    offset = cand.moves % stride  # rotate coverage across rounds
    picked = moves[offset::stride][:limit]

    neighbors: list[_Candidate] = []
    for w, i, j in picked:
        new_rows = [list(row) for row in rows]
        new_rows[w][i], new_rows[w][j] = new_rows[w][j], new_rows[w][i]
        neighbors.append(
            _as_candidate(
                cand.label,
                cand.schedule.placement,
                new_rows,
                cand.schedule.num_micro_batches,
                moves=cand.moves + 1,
            )
        )
    return neighbors


def build_synthesize_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    f_time: float = 1.0,
    b_time: float = 1.0,
    w_time: float = 1.0,
    comm_time: float = 0.0,
    memory_budget_units: float | None = None,
    beam_width: int = DEFAULT_BEAM_WIDTH,
    beam_rounds: int = DEFAULT_BEAM_ROUNDS,
) -> Schedule:
    """Synthesize a split-backward schedule for the given costs and budget.

    Parameters
    ----------
    depth, num_micro_batches:
        Worker count ``D`` and micro-batch count ``N``. The chosen
        placement is part of the search: candidates use both the linear
        ``D``-stage and the folded ``2D``-stage V placement (plus every
        registered scheme's own placement through the derived seeds).
    f_time, b_time, w_time, comm_time:
        The cost model the search optimizes: forward, input-gradient and
        weight-gradient durations, plus a flat per-hop message latency.
    memory_budget_units:
        Peak live activation stashes allowed per worker, in *full-stage*
        units (see :func:`peak_stash_units`); ``None`` leaves memory
        unconstrained. Raises :class:`~repro.common.errors.ScheduleError`
        when no candidate fits, naming the smallest achievable peak.
    beam_width, beam_rounds:
        Beam-search refinement bounds; each round is one batched kernel
        call over every neighbor of every beam member.

    Returns
    -------
    Schedule
        ``scheme="synthesize"``, compute rows only (the registry's default
        pass pipeline inserts gradient synchronization), with the chosen
        seed, cost model, budget, peak, and makespan stamped in metadata.
    """
    if depth < 1:
        raise ScheduleError("synthesize needs at least one worker")
    if num_micro_batches < 1:
        raise ScheduleError("synthesize needs at least one micro-batch")
    for name, value in (("f_time", f_time), ("b_time", b_time), ("w_time", w_time)):
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")
    if comm_time < 0:
        raise ConfigurationError(f"comm_time must be >= 0, got {comm_time}")
    if memory_budget_units is not None and memory_budget_units <= 0:
        raise ConfigurationError(
            f"memory_budget_units must be positive, got {memory_budget_units}"
        )
    if beam_width < 1:
        raise ConfigurationError(f"beam_width must be >= 1, got {beam_width}")
    if beam_rounds < 0:
        raise ConfigurationError(f"beam_rounds must be >= 0, got {beam_rounds}")

    model = synthesis_cost_model(f_time, b_time, w_time, comm_time)
    pool = _seed_candidates(depth, num_micro_batches, f_time, b_time, w_time)

    if memory_budget_units is not None:
        fitting = [
            c for c in pool if c.peak_units <= memory_budget_units + _BUDGET_EPS
        ]
        if not fitting:
            floor = min(c.peak_units for c in pool)
            raise ScheduleError(
                f"synthesize: no candidate fits memory_budget_units="
                f"{memory_budget_units:g} at D={depth}, N={num_micro_batches}; "
                f"smallest achievable peak is {floor:g} full-stage stashes — "
                f"raise the budget"
            )
        pool = fitting

    _score(pool, model)
    beam = _rank(pool)[:beam_width]
    seen = {c.key() for c in beam}

    for _ in range(beam_rounds):
        neighbors: list[_Candidate] = []
        for cand in beam:
            for nb in _w_move_neighbors(cand, _MAX_MOVES_PER_CANDIDATE):
                if memory_budget_units is not None and (
                    nb.peak_units > memory_budget_units + _BUDGET_EPS
                ):
                    continue
                key = nb.key()
                if key in seen:
                    continue
                seen.add(key)
                neighbors.append(nb)
        if not neighbors:
            break
        _score(neighbors, model)
        best_before = beam[0].makespan
        beam = _rank(beam + neighbors)[:beam_width]
        if not beam[0].makespan < best_before:
            break

    best = beam[0]
    return best.schedule.with_metadata(
        seed=best.label,
        cost=(float(f_time), float(b_time), float(w_time), float(comm_time)),
        memory_budget_units=(
            None if memory_budget_units is None else float(memory_budget_units)
        ),
        peak_units=float(best.peak_units),
        makespan=float(best.makespan),
        beam=(int(beam_width), int(beam_rounds)),
        refinement_moves=int(best.moves),
    )
