"""GPipe schedule builder [Huang et al. 2019].

GPipe injects all ``N`` micro-batches into the pipeline at once (all forwards
first, then all backwards) and flushes at the iteration boundary. Bubble
ratio ``(D-1)/(N+D-1)`` per pass; activation memory proportional to ``N``
(Table 2 of the Chimera paper).

The builder emits compute rows only; gradient synchronization and
activation recomputation (GPipe's usual operating mode at scale — the
paper's evaluation runs GPipe with recomputation in most configurations)
are applied by the registry's pass pipeline
(:mod:`repro.schedules.passes`): ``build_schedule("gpipe", ...,
recompute=True)``.
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.onefb import gpipe_stage_order
from repro.schedules.placement import StagePlacement


def build_gpipe_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build the GPipe schedule for ``D = depth`` stages, ``N`` micro-batches."""
    if depth < 1:
        raise ScheduleError("GPipe needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("GPipe needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    mbs = range(num_micro_batches)
    rows: list[list[Operation]] = [
        gpipe_stage_order(stage, depth, mbs) for stage in range(depth)
    ]
    return Schedule(
        scheme="gpipe",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
    )
