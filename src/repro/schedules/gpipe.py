"""GPipe schedule builder [Huang et al. 2019].

GPipe injects all ``N`` micro-batches into the pipeline at once (all forwards
first, then all backwards) and flushes at the iteration boundary. Bubble
ratio ``(D-1)/(N+D-1)`` per pass; activation memory proportional to ``N``
(Table 2 of the Chimera paper).
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules._sync import append_lazy_sync
from repro.schedules.ir import Operation, Schedule, freeze_worker_ops
from repro.schedules.onefb import gpipe_stage_order
from repro.schedules.placement import StagePlacement


def build_gpipe_schedule(
    depth: int,
    num_micro_batches: int,
    *,
    recompute: bool = False,
) -> Schedule:
    """Build the GPipe schedule for ``D = depth`` stages, ``N`` micro-batches.

    Parameters
    ----------
    recompute:
        Discard activations in the forward pass and recompute them during the
        backward pass (GPipe's usual operating mode at scale; the paper's
        evaluation runs GPipe with recomputation in most configurations).
    """
    if depth < 1:
        raise ScheduleError("GPipe needs at least one stage")
    if num_micro_batches < 1:
        raise ScheduleError("GPipe needs at least one micro-batch")
    placement = StagePlacement.linear(depth)
    mbs = range(num_micro_batches)
    rows: list[list[Operation]] = [
        gpipe_stage_order(stage, depth, mbs, recompute=recompute)
        for stage in range(depth)
    ]
    append_lazy_sync(rows, placement)
    return Schedule(
        scheme="gpipe",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
        metadata={"recompute": recompute},
    )
