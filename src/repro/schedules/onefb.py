"""One-Forward-One-Backward (1F1B) per-stage operation orders.

1F1B [Narayanan et al. 2019] is the building block of DAPPLE, PipeDream,
PipeDream-2BW, and of *each direction* of a Chimera bidirectional pipeline:
stage ``s`` first runs ``min(D - 1 - s, N)`` warmup forwards, then
alternates one forward with one backward, and finally drains the remaining
backwards. This caps the number of in-flight micro-batches (and therefore
stashed activations) at ``D - s`` for stage ``s``.

This module also provides the *expanded* 1F1B variants used by Chimera's
forward-doubling and backward-halving concatenation strategies (paper §3.5),
where each scheduling unit is either a fused two-micro-batch forward followed
by two single-micro-batch backwards, or a single forward followed by two
half-micro-batch backwards.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind


def onefb_stage_order(
    stage: int,
    depth: int,
    micro_batches: Sequence[int],
    *,
    replica: int = 0,
    warmup_cap: int | None = None,
    steady_backward_first: bool = False,
) -> list[Operation]:
    """Classic 1F1B order for one stage of one pipeline.

    Parameters
    ----------
    stage, depth:
        Stage index and pipeline depth ``D``.
    micro_batches:
        The micro-batch ids this pipeline processes, in injection order.
    replica:
        Model-replica id stamped on the operations.
    warmup_cap:
        Optional cap on the number of warmup forwards (i.e. on the
        in-flight micro-batch count). Chimera caps each direction at ``D/2``
        so the two directions together never exceed ``D`` in-flight
        micro-batches and concatenated basic units chain seamlessly
        (paper §3.5).
    steady_backward_first:
        Emit steady-state pairs as (backward, forward) instead of the
        classic (forward, backward). Capped pipelines must drain a
        micro-batch before injecting the next one to honour the cap;
        it is also what lets the next basic unit's forwards fill the
        previous unit's backward-drain gaps (paper Figure 7).

    Returns
    -------
    The stage's operation list: warmup forwards, steady 1F1B pairs, and the
    backward drain.
    """
    if not 0 <= stage < depth:
        raise ScheduleError(f"stage {stage} outside pipeline of depth {depth}")
    mbs = list(micro_batches)
    n = len(mbs)
    warmup = min(depth - 1 - stage, n)
    if warmup_cap is not None:
        warmup = min(warmup, warmup_cap)
    # With no warmup (last stage) a backward-first steady pair would place a
    # micro-batch's backward before its own forward — impossible.
    steady_backward_first = steady_backward_first and warmup >= 1

    ops: list[Operation] = []
    for i in range(warmup):
        ops.append(
            Operation(OpKind.FORWARD, replica, stage, micro_batches=(mbs[i],))
        )
    for i in range(warmup, n):
        fwd = Operation(OpKind.FORWARD, replica, stage, micro_batches=(mbs[i],))
        bwd = Operation(
            OpKind.BACKWARD, replica, stage, micro_batches=(mbs[i - warmup],)
        )
        ops.extend((bwd, fwd) if steady_backward_first else (fwd, bwd))
    for i in range(n - warmup, n):
        ops.append(
            Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mbs[i],))
        )
    return ops


def gpipe_stage_order(
    stage: int,
    depth: int,
    micro_batches: Sequence[int],
    *,
    replica: int = 0,
) -> list[Operation]:
    """GPipe order: all forwards, then all backwards.

    GPipe injects every micro-batch into the pipeline before any backward
    starts, so the activation footprint is proportional to ``N``
    (Table 2 of the paper).
    """
    if not 0 <= stage < depth:
        raise ScheduleError(f"stage {stage} outside pipeline of depth {depth}")
    mbs = list(micro_batches)
    ops = [
        Operation(OpKind.FORWARD, replica, stage, micro_batches=(mb,)) for mb in mbs
    ]
    # Backwards drain in reverse arrival order at the last stage in classic
    # GPipe diagrams; using forward order keeps the same bubble count and is
    # what Figure 2 of the paper shows (backward of micro-batch 0 first).
    ops.extend(
        Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mb,))
        for mb in mbs
    )
    return ops


def expanded_onefb_stage_order(
    stage: int,
    depth: int,
    micro_batches: Sequence[int],
    *,
    replica: int = 0,
    mode: str,
    warmup_cap: int | None = None,
    steady_backward_first: bool = False,
) -> list[Operation]:
    """1F1B over *units* whose backward expands into two operations.

    ``mode="doubling"`` (forward doubling): a unit is a fused forward over two
    consecutive micro-batches; its backward is two single-micro-batch
    backwards with recomputation (the doubled activations exceed device
    memory, paper §3.5).

    ``mode="halving"`` (backward halving): a unit is a single full-size
    forward; its backward is two half-micro-batch backwards and no
    recomputation.

    Both realizations share the schedule *shape* of Figure 7(c)/(d): every
    forward slot is followed (in steady state) by two equal-duration backward
    slots, which equalizes forward and backward slot workloads and removes
    the intermediate bubbles of direct concatenation.
    """
    if mode not in ("doubling", "halving"):
        raise ScheduleError(f"unknown expanded-1F1B mode {mode!r}")
    mbs = list(micro_batches)
    if mode == "doubling":
        if len(mbs) % 2 != 0:
            raise ScheduleError(
                f"forward doubling needs an even micro-batch count, got {len(mbs)}"
            )
        units: list[tuple[int, ...]] = [
            tuple(mbs[i : i + 2]) for i in range(0, len(mbs), 2)
        ]
    else:
        units = [(mb,) for mb in mbs]

    num_units = len(units)
    warmup = min(depth - 1 - stage, num_units)
    if warmup_cap is not None:
        warmup = min(warmup, warmup_cap)
    steady_backward_first = steady_backward_first and warmup >= 1

    def forward_of(unit: tuple[int, ...]) -> Operation:
        return Operation(OpKind.FORWARD, replica, stage, micro_batches=unit)

    def backwards_of(unit: tuple[int, ...]) -> list[Operation]:
        if mode == "doubling":
            return [
                Operation(
                    OpKind.BACKWARD,
                    replica,
                    stage,
                    micro_batches=(mb,),
                    recompute=True,
                )
                for mb in unit
            ]
        (mb,) = unit
        return [
            Operation(
                OpKind.BACKWARD, replica, stage, micro_batches=(mb,), part=(k, 2)
            )
            for k in range(2)
        ]

    ops: list[Operation] = []
    for i in range(warmup):
        ops.append(forward_of(units[i]))
    for i in range(warmup, num_units):
        if steady_backward_first:
            ops.extend(backwards_of(units[i - warmup]))
            ops.append(forward_of(units[i]))
        else:
            ops.append(forward_of(units[i]))
            ops.extend(backwards_of(units[i - warmup]))
    for i in range(num_units - warmup, num_units):
        ops.extend(backwards_of(units[i]))
    return ops
