"""GEMS schedule builder [Jain et al. 2020].

GEMS keeps two model replicas in opposite directions (the same placement
Chimera uses) but schedules micro-batches almost serially between them: at
most two micro-batches are active at any time. Micro-batch ``i`` runs on
replica ``i mod 2``; the forward of micro-batch ``i+1`` (on the *other*
replica, whose first stage sits where micro-batch ``i``'s pipeline just
finished) overlaps only with the backward sweep of micro-batch ``i``.

This gives the lowest — and perfectly balanced — memory footprint of all
schemes (one in-flight activation, ``2 M_theta`` weights) but a bubble ratio
around ``(D-1)/(D+1/2)`` that does not improve with ``N`` (Table 2).
"""

from __future__ import annotations

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement


def build_gems_schedule(depth: int, num_micro_batches: int) -> Schedule:
    """Build the GEMS schedule for an even ``depth`` and ``N`` micro-batches."""
    if depth < 2 or depth % 2 != 0:
        raise ScheduleError(
            f"GEMS uses two opposite-direction replicas and needs an even "
            f"number of stages >= 2, got D={depth}"
        )
    if num_micro_batches < 1:
        raise ScheduleError("GEMS needs at least one micro-batch")

    placement = StagePlacement.bidirectional(depth, 1)
    rows: list[list[Operation]] = [[] for _ in range(depth)]
    for mb in range(num_micro_batches):
        replica = mb % 2
        # Every worker executes this micro-batch's forward and backward for
        # the stage it hosts on that replica; the serial per-worker order
        # (F_i then B_i, micro-batches in order) lets the engine overlap the
        # forward sweep of micro-batch i+1 with the backward sweep of i.
        for stage in range(depth):
            worker = placement.worker_of(replica, stage)
            rows[worker].append(
                Operation(OpKind.FORWARD, replica, stage, micro_batches=(mb,))
            )
        for stage in range(depth):
            worker = placement.worker_of(replica, stage)
            rows[worker].append(
                Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mb,))
            )
    # Interleave so each worker's list is ordered by micro-batch then kind.
    for worker in range(depth):
        rows[worker].sort(
            key=lambda op: (op.micro_batches[0], 0 if op.is_forward else 1)
        )
    return Schedule(
        scheme="gems",
        placement=placement,
        num_micro_batches=num_micro_batches,
        worker_ops=freeze_worker_ops(rows),
        synchronous=True,
    )
