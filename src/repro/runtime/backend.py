"""In-process communication backend (the GLOO stand-in).

The paper runs PyTorch with the GLOO distributed backend for both p2p
transfers between pipeline stages and allreduce across stage replicas. Here
the "network" is an in-process mailbox keyed like MPI messages
(source/destination implicit in the key, tag-style disambiguation by
micro-batch/kind/part), plus collectives with explicit membership.

The collective *algorithms* (Rabenseifner reduce-scatter + allgather, ring)
are also implemented executably on per-rank NumPy buffers, with round and
byte accounting that the tests check against the closed-form cost models in
:mod:`repro.sim.collectives` — the simulation and the runtime agree on what
an allreduce does.
"""

from __future__ import annotations


import numpy as np

from repro.common.errors import CommunicationError


class InProcessBackend:
    """Mailbox p2p plus membership-counted collectives."""

    def __init__(self) -> None:
        self._mail: dict = {}
        self._collectives: dict = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ p2p
    def send(self, key: tuple, payload: np.ndarray) -> None:
        """Deposit a message; exactly one recv may consume it."""
        if key in self._mail:
            raise CommunicationError(f"message {key} sent twice without a recv")
        self._mail[key] = payload
        self.messages_sent += 1
        self.bytes_sent += payload.nbytes

    def recv(self, key: tuple) -> np.ndarray:
        """Consume a message; raises if absent (callers poll first)."""
        try:
            return self._mail.pop(key)
        except KeyError:
            raise CommunicationError(f"recv on missing message {key}") from None

    def can_recv(self, key: tuple) -> bool:
        return key in self._mail

    def pending_messages(self) -> int:
        return len(self._mail)

    # ----------------------------------------------------------- collectives
    def allreduce_contribute(
        self,
        coll_key: tuple,
        member: tuple,
        arrays: list[np.ndarray],
        group_size: int,
    ) -> None:
        """Non-blocking contribution to a sum-allreduce.

        ``arrays`` are contributed *by reference*: when the last member
        arrives, the element-wise sum is written back into every member's
        arrays (in place), mirroring an in-place framework allreduce.
        """
        entry = self._collectives.setdefault(
            coll_key, {"members": {}, "size": group_size, "done": False}
        )
        if entry["size"] != group_size:
            raise CommunicationError(
                f"collective {coll_key}: inconsistent group size "
                f"({entry['size']} vs {group_size})"
            )
        if member in entry["members"]:
            raise CommunicationError(
                f"collective {coll_key}: member {member} contributed twice"
            )
        entry["members"][member] = arrays
        if len(entry["members"]) == entry["size"]:
            self._complete(coll_key, entry)

    def _complete(self, coll_key: tuple, entry: dict) -> None:
        member_arrays = list(entry["members"].values())
        first = member_arrays[0]
        for other in member_arrays[1:]:
            if len(other) != len(first):
                raise CommunicationError(
                    f"collective {coll_key}: members contributed different "
                    f"buffer counts"
                )
        sums = [np.sum([m[i] for m in member_arrays], axis=0) for i in range(len(first))]
        for arrays in member_arrays:
            for a, s in zip(arrays, sums):
                a[...] = s
                self.bytes_sent += a.nbytes
        entry["done"] = True

    def allreduce_done(self, coll_key: tuple) -> bool:
        entry = self._collectives.get(coll_key)
        return bool(entry and entry["done"])

    def unresolved_collectives(self) -> list[tuple]:
        return [k for k, e in self._collectives.items() if not e["done"]]

    def reset_collectives(self) -> None:
        self._collectives.clear()


