"""Cooperative executor: runs a schedule's operations on real NumPy stages.

Workers are polled round-robin; each executes its next operation as soon as
the operation's messages are available in the backend (the in-order-per-
worker semantics the simulator models). A full pass with no progress is a
deadlock and raises with a per-worker report — by construction (validated
schedules) this only fires on library bugs, and the tests rely on that.

The executor is scheme-agnostic: PipeDream's weight stashing and per-micro-
batch updates are injected through hooks by the trainer. Split-backward
schedules (zero-bubble family) execute ``BACKWARD_INPUT`` as a gradient-
propagating backward whose parameter gradients are deferred inside the
stage module, and ``BACKWARD_WEIGHT`` as the purely local accumulation of
that deferred contribution.

Lowered schedules (:mod:`repro.schedules.lowering`) run with *explicit*
transfer steps: a producer whose consumer lives on another worker parks
its tensor in a local outbox, the scheduled ``SEND`` moves it into the
backend (the wire), the ``RECV`` moves it from the backend into the
consumer's inbox, and the consumer reads the inbox. Stage pairs sharing a
worker (the ZB-V fold) keep the direct backend path — exactly the edges
the lowering pass leaves implicit. *Fused* schedules
(:mod:`repro.schedules.passes.fuse`) have no ``RECV`` step: the batched
``SEND`` puts the tensor on the wire and the consumer takes it straight
off the backend. Explicit ``RECOMPUTE`` ops (the recompute pass)
rematerialize a stage's discarded activations from the stashed stage
input right before the first backward. ``OFFLOAD``/``RELOAD`` ops (the
offload pass) park a stage's stash in the module's host tier between the
forward and its first consumer. All paths produce bit-identical training
results; the parity tests assert it.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.common.errors import DeadlockError, ReproError
from repro.models.loss import softmax_cross_entropy
from repro.runtime.backend import InProcessBackend
from repro.runtime.stage_module import StageModule
from repro.schedules.ir import Operation, OpKind, Schedule

#: (group, replica, stage) -> StageModule
StageMap = Mapping[tuple[int, int, int], StageModule]


class PipelineExecutor:
    """Executes one training iteration of ``schedule`` over ``width`` groups.

    Parameters
    ----------
    schedule:
        Any validated schedule.
    stages:
        Stage modules per ``(group, replica, stage)``.
    width:
        ``W`` — data-parallel pipeline groups (each runs the same schedule
        on its own micro-batches).
    backend:
        Message/collective transport; a fresh one is created if omitted.
    weight_stashing:
        PipeDream-style: snapshot weights at each forward, run the backward
        against the snapshot (version consistency across an update that
        happened in between).
    on_sync_complete:
        Called with ``(stage, micro_batches, members)`` whenever a gradient
        allreduce finishes; PipeDream's trainer updates weights here.
    """

    def __init__(
        self,
        schedule: Schedule,
        stages: StageMap,
        *,
        width: int = 1,
        backend: InProcessBackend | None = None,
        weight_stashing: bool = False,
        on_sync_complete: Callable[[int, tuple, list], None] | None = None,
    ) -> None:
        self.schedule = schedule
        self.stages = dict(stages)
        self.width = width
        self.backend = backend or InProcessBackend()
        self.weight_stashing = weight_stashing
        self.on_sync_complete = on_sync_complete
        self.lowered = schedule.lowered
        #: Fused communication (fuse_comm pass): SENDs exist but RECVs are
        #: batched into them — consumers read the backend directly.
        self.fused = bool(schedule.metadata.get("fused_comm", False))
        #: Lowered mode: producer output awaiting its SEND, keyed like the
        #: backend message it becomes.
        self._outbox: dict[tuple, np.ndarray] = {}
        #: Lowered mode: received message awaiting its consumer.
        self._inbox: dict[tuple, np.ndarray] = {}
        #: (replica, stage, mb) whose forward must stash only the stage
        #: input — flag-based recomputation plus explicit RECOMPUTE ops.
        self._recompute_mbs: set[tuple[int, int, int]] = {
            (op.replica, op.stage, mb)
            for _, op in schedule.all_ops()
            if (op.is_backward and op.recompute) or op.is_recompute
            for mb in op.micro_batches
        }
        if weight_stashing and any(
            op.is_split_backward for _, op in schedule.all_ops()
        ):
            raise ReproError(
                "weight stashing (PipeDream versioning) is not supported "
                "with split-backward schedules"
            )
        for group in range(width):
            for worker in range(schedule.num_workers):
                for replica, stage in schedule.replicas_hosted_by(worker):
                    if (group, replica, stage) not in self.stages:
                        raise ReproError(
                            f"missing stage module (group={group}, "
                            f"replica={replica}, stage={stage})"
                        )

    # ------------------------------------------------------------------ API
    def run_iteration(
        self, data: list[list[tuple[np.ndarray, np.ndarray]]]
    ) -> float:
        """Execute the schedule once; returns the mini-batch loss.

        ``data[group][mb] = (tokens, targets)`` with exactly ``N`` entries
        per group.
        """
        n = self.schedule.num_micro_batches
        if len(data) != self.width:
            raise ReproError(f"need data for {self.width} groups, got {len(data)}")
        for group_data in data:
            if len(group_data) != n:
                raise ReproError(
                    f"each group needs {n} micro-batches, got {len(group_data)}"
                )
        self._data = data
        self._logits: dict[tuple[int, int], np.ndarray] = {}
        self._losses: dict[tuple[int, int], float] = {}
        self._stashes: dict[tuple, list[np.ndarray]] = {}
        self._outbox.clear()
        self._inbox.clear()
        self.backend.reset_collectives()

        pointers = {
            (group, worker): 0
            for group in range(self.width)
            for worker in range(self.schedule.num_workers)
        }
        ops = self.schedule.worker_ops
        total = self.width * sum(len(row) for row in ops)
        done = 0
        while done < total:
            progressed = False
            for (group, worker), ptr in list(pointers.items()):
                row = ops[worker]
                while pointers[(group, worker)] < len(row):
                    op = row[pointers[(group, worker)]]
                    if not self._executable(group, op):
                        break
                    self._execute(group, worker, op)
                    pointers[(group, worker)] += 1
                    done += 1
                    progressed = True
            if not progressed:
                heads = {}
                for (group, worker), ptr in pointers.items():
                    if ptr < len(ops[worker]):
                        heads[f"g{group}/P{worker}"] = ops[worker][ptr].short()
                raise DeadlockError(
                    f"pipeline made no progress; blocked heads: {heads}"
                )
        unresolved = self.backend.unresolved_collectives()
        if unresolved:
            raise DeadlockError(
                f"iteration finished with unresolved collectives: {unresolved}"
            )
        if self._outbox or self._inbox:
            raise DeadlockError(
                f"iteration finished with undelivered transfers: "
                f"{len(self._outbox)} parked, {len(self._inbox)} unconsumed"
            )
        mean_group_losses = [
            sum(self._losses[(g, mb)] for mb in range(n)) / n
            for g in range(self.width)
        ]
        return float(np.mean(mean_group_losses))

    # ------------------------------------------------------------- execution
    def _cross_worker(self, replica: int, src_stage: int, dst_stage: int) -> bool:
        """Does a message between these stages leave its worker?"""
        return self.schedule.worker_of(replica, src_stage) != self.schedule.worker_of(
            replica, dst_stage
        )

    def _message_key(
        self, group: int, op: Operation, mb: int, payload: str, stage: int
    ) -> tuple:
        if payload == "act":
            return (group, op.replica, stage, mb, "act")
        return (group, op.replica, stage, mb, "grad", op.part)

    # The three routing helpers own the lowered-vs-implicit decision: a
    # cross-worker message of a lowered schedule stages through the
    # outbox/wire/inbox pipeline, anything else uses the backend directly.
    # Under fused communication the producer side keeps the outbox/SEND
    # step but the consumer reads the wire (backend) itself — the RECV
    # was batched into the SEND.
    def _routes_via_comm_ops(
        self, replica: int, src_stage: int, dst_stage: int
    ) -> bool:
        return self.lowered and self._cross_worker(replica, src_stage, dst_stage)

    def _input_ready(
        self, key: tuple, replica: int, src_stage: int, dst_stage: int
    ) -> bool:
        if not self.fused and self._routes_via_comm_ops(
            replica, src_stage, dst_stage
        ):
            return key in self._inbox
        return self.backend.can_recv(key)

    def _take_input(
        self, key: tuple, replica: int, src_stage: int, dst_stage: int
    ) -> np.ndarray:
        if not self.fused and self._routes_via_comm_ops(
            replica, src_stage, dst_stage
        ):
            return self._inbox.pop(key)
        return self.backend.recv(key)

    def _emit_output(
        self,
        key: tuple,
        replica: int,
        src_stage: int,
        dst_stage: int,
        value: np.ndarray,
    ) -> None:
        if self._routes_via_comm_ops(replica, src_stage, dst_stage):
            self._outbox[key] = value
        else:
            self.backend.send(key, value)

    def _executable(self, group: int, op: Operation) -> bool:
        if (
            op.kind is OpKind.ALLREDUCE
            or op.is_backward_weight
            or op.is_recompute
            or op.is_host_comm
        ):
            # Weight-gradient ops consume only local deferred state;
            # RECOMPUTE replays from the locally stashed stage input;
            # OFFLOAD/RELOAD shuffle the stash between memory tiers of
            # their own worker; in all cases program order (validated: W
            # after its Bi, R after its forward, host ops bracketing the
            # stash's idle span) makes them always runnable.
            return True
        if op.kind is OpKind.SEND:
            # Program order puts the SEND after its producer, which filled
            # the outbox; checked anyway so a deadlock report names it.
            return all(
                self._message_key(group, op, mb, op.payload, op.peer_stage)
                in self._outbox
                for mb in op.micro_batches
            )
        if op.kind is OpKind.RECV:
            return all(
                self.backend.can_recv(
                    self._message_key(group, op, mb, op.payload, op.stage)
                )
                for mb in op.micro_batches
            )
        if op.is_forward:
            if op.stage == 0:
                return True
            return all(
                self._input_ready(
                    (group, op.replica, op.stage, mb, "act"),
                    op.replica,
                    op.stage - 1,
                    op.stage,
                )
                for mb in op.micro_batches
            )
        if op.stage == self.schedule.num_stages - 1:
            return True
        return all(
            self._input_ready(
                (group, op.replica, op.stage, mb, "grad", op.part),
                op.replica,
                op.stage + 1,
                op.stage,
            )
            for mb in op.micro_batches
        )

    def _execute(self, group: int, worker: int, op: Operation) -> None:
        if op.kind is OpKind.ALLREDUCE:
            self._execute_sync(group, op)
        elif op.kind is OpKind.SEND:
            self._execute_send(group, op)
        elif op.kind is OpKind.RECV:
            self._execute_recv(group, op)
        elif op.is_host_comm:
            self._execute_host_comm(group, op)
        elif op.is_recompute:
            self._execute_recompute(group, op)
        elif op.is_forward:
            self._execute_forward(group, op)
        elif op.is_backward_weight:
            self._execute_backward_weight(group, op)
        else:
            self._execute_backward(group, op)

    def _execute_send(self, group: int, op: Operation) -> None:
        """Move the producer's parked tensor onto the wire (the backend)."""
        for mb in op.micro_batches:
            key = self._message_key(group, op, mb, op.payload, op.peer_stage)
            self.backend.send(key, self._outbox.pop(key))

    def _execute_recv(self, group: int, op: Operation) -> None:
        """Take the arrived message off the wire into the consumer's inbox."""
        for mb in op.micro_batches:
            key = self._message_key(group, op, mb, op.payload, op.stage)
            self._inbox[key] = self.backend.recv(key)

    def _execute_host_comm(self, group: int, op: Operation) -> None:
        """Move a stash between the device and host tiers (offload pass).

        ``OFFLOAD`` parks the stage's activation stash in the stage
        module's host-side dict, ``RELOAD`` brings it back before the
        first consumer. Both touch only local state, and in this
        in-process runtime the "copy" is a dict move — training stays
        bit-identical; the simulator prices the transfer.
        """
        stage_module = self.stages[(group, op.replica, op.stage)]
        for mb in op.micro_batches:
            if op.is_offload:
                stage_module.offload_stash(mb)
            else:
                stage_module.reload_stash(mb)

    def _execute_recompute(self, group: int, op: Operation) -> None:
        """Rebuild the stage's discarded activation caches for the backward.

        Under PipeDream weight stashing the replay must use the *same
        weight version* the original forward used (an optimizer step may
        have happened in between), so the stashed snapshot is loaded
        around the rematerialization — exactly what the lazy flag-based
        path does implicitly inside the snapshot-loaded backward.
        """
        stage_module = self.stages[(group, op.replica, op.stage)]
        for mb in op.micro_batches:
            stash_key = (group, op.replica, op.stage, mb)
            if self.weight_stashing and stash_key in self._stashes:
                current = stage_module.snapshot_params()
                stage_module.load_params(self._stashes[stash_key])
                stage_module.rematerialize(mb)
                stage_module.load_params(current)
            else:
                stage_module.rematerialize(mb)

    def _execute_forward(self, group: int, op: Operation) -> None:
        depth = self.schedule.num_stages
        stage_module = self.stages[(group, op.replica, op.stage)]
        for mb in op.micro_batches:
            if op.stage == 0:
                x = self._data[group][mb][0]
            else:
                x = self._take_input(
                    (group, op.replica, op.stage, mb, "act"),
                    op.replica,
                    op.stage - 1,
                    op.stage,
                )
            if self.weight_stashing:
                self._stashes[(group, op.replica, op.stage, mb)] = (
                    stage_module.snapshot_params()
                )
            recompute = (op.replica, op.stage, mb) in self._recompute_mbs
            stage_module.recompute = recompute
            y = stage_module.forward(mb, x)
            if op.stage < depth - 1:
                self._emit_output(
                    (group, op.replica, op.stage + 1, mb, "act"),
                    op.replica,
                    op.stage,
                    op.stage + 1,
                    y,
                )
            else:
                self._logits[(group, mb)] = y

    def _execute_backward(self, group: int, op: Operation) -> None:
        depth = self.schedule.num_stages
        stage_module = self.stages[(group, op.replica, op.stage)]
        index, parts = op.part
        for mb in op.micro_batches:
            if op.stage == depth - 1:
                logits = self._logits[(group, mb)]
                batch = logits.shape[0]
                rows = _part_slice(batch, index, parts)
                targets = self._data[group][mb][1]
                loss, dlogits = softmax_cross_entropy(
                    logits[rows], targets[rows]
                )
                # Rescale from a part-mean to the micro-batch mean so parts
                # compose exactly.
                dlogits = dlogits / parts
                self._losses[(group, mb)] = (
                    self._losses.get((group, mb), 0.0) + loss / parts
                )
                dy = dlogits
                row_slice = rows if parts > 1 else None
            else:
                dy = self._take_input(
                    (group, op.replica, op.stage, mb, "grad", op.part),
                    op.replica,
                    op.stage + 1,
                    op.stage,
                )
                batch = self._data[group][mb][0].shape[0]
                row_slice = _part_slice(batch, index, parts) if parts > 1 else None

            stash_key = (group, op.replica, op.stage, mb)
            if op.is_backward_input:
                dx = stage_module.backward_input(
                    mb, dy, row_slice=row_slice, part=op.part
                )
            elif self.weight_stashing and stash_key in self._stashes:
                current = stage_module.snapshot_params()
                stage_module.load_params(self._stashes[stash_key])
                dx = stage_module.backward(
                    mb, dy, row_slice=row_slice, fraction=1.0 / parts
                )
                stage_module.load_params(current)
                if not stage_module.is_in_flight(mb):
                    del self._stashes[stash_key]
            else:
                dx = stage_module.backward(
                    mb, dy, row_slice=row_slice, fraction=1.0 / parts
                )
            if op.stage > 0:
                self._emit_output(
                    (group, op.replica, op.stage - 1, mb, "grad", op.part),
                    op.replica,
                    op.stage,
                    op.stage - 1,
                    dx,
                )

    def _execute_backward_weight(self, group: int, op: Operation) -> None:
        stage_module = self.stages[(group, op.replica, op.stage)]
        _index, parts = op.part
        for mb in op.micro_batches:
            stage_module.backward_weight(mb, part=op.part, fraction=1.0 / parts)

    def _execute_sync(self, group: int, op: Operation) -> None:
        coll_key = (op.stage, op.micro_batches)
        members = self._sync_members(op.stage)
        stage_module = self.stages[(group, op.replica, op.stage)]
        self.backend.allreduce_contribute(
            coll_key,
            (group, op.replica, op.stage),
            stage_module.grad_arrays(),
            group_size=len(members),
        )
        if self.backend.allreduce_done(coll_key) and self.on_sync_complete:
            self.on_sync_complete(op.stage, op.micro_batches, members)

    def _sync_members(self, stage: int) -> list[tuple[int, int, int]]:
        """Every (group, replica, stage) copy participating in the collective.

        Each model replica holds stage ``stage`` exactly once, so the group
        is ``width x num_replicas`` strong (§3.3: data parallelism grows the
        participant count by W without changing the local gradient size).
        """
        return [
            (group, replica, stage)
            for group in range(self.width)
            for replica in range(self.schedule.num_replicas)
        ]


def _part_slice(batch: int, index: int, parts: int) -> slice:
    if batch % parts:
        raise ReproError(
            f"micro-batch of {batch} rows cannot split into {parts} backward parts"
        )
    step = batch // parts
    return slice(index * step, (index + 1) * step)
