"""First-order optimizers operating on layer parameter/gradient dicts.

The paper trains with stochastic gradient descent; we provide plain SGD,
momentum SGD, and Adam. Optimizer state is keyed per (layer object, param
name), so independent stage replicas holding identical weights and receiving
identical (allreduced) gradients evolve identically — the property the
synchronous-equivalence tests rely on.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.models.layers import Layer


class Optimizer:
    """Base optimizer over lists of layers."""

    def step(self, layers: Iterable[Layer]) -> None:
        for layer in layers:
            params = layer.params
            grads = layer.grads
            for name in params:
                self.update(
                    (id(layer), name), params[name], grads[name]
                )

    def update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def __init__(self, lr: float = 0.1) -> None:
        self.lr = lr

    def update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.9) -> None:
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[tuple, np.ndarray] = {}

    def update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param)
            self._velocity[key] = v
        v *= self.momentum
        v += grad
        param -= self.lr * v


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[tuple, np.ndarray] = {}
        self._v: dict[tuple, np.ndarray] = {}
        self._t: dict[tuple, int] = {}

    def update(self, key: tuple, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        mhat = m / (1 - self.beta1**t)
        vhat = v / (1 - self.beta2**t)
        param -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
