"""Executable allreduce algorithms on per-rank NumPy buffers.

These run the actual message schedules — ring reduce-scatter/allgather and
Rabenseifner recursive halving/doubling — in one process, with round and
byte accounting. The tests verify (a) every rank ends with the exact sum,
and (b) the accounting matches the closed-form cost models in
:mod:`repro.sim.collectives`, tying the simulator's formulas to real
executions of the algorithms the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import CommunicationError


@dataclass
class CollectiveStats:
    """Accounting for one executed collective."""

    rounds: int = 0
    #: Payload bytes each rank sent over the whole collective.
    bytes_per_rank: float = 0.0
    messages: int = 0


def _as_flat_float64(buffers: list[np.ndarray]) -> list[np.ndarray]:
    if not buffers:
        raise CommunicationError("empty allreduce group")
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise CommunicationError("allreduce buffers must share a shape")
    return [b.astype(np.float64).ravel().copy() for b in buffers]


def ring_allreduce(
    buffers: list[np.ndarray],
) -> tuple[list[np.ndarray], CollectiveStats]:
    """Ring allreduce, executed message by message.

    Reduce-scatter ring: in round ``t``, rank ``i`` sends chunk ``(i - t)
    mod r`` to rank ``i + 1``; after ``r - 1`` rounds rank ``i`` owns the
    fully reduced chunk ``(i + 1) mod r``. Allgather ring forwards the
    owned chunks for another ``r - 1`` rounds. Total: ``2 (r - 1)`` rounds
    of ``L / r`` bytes — the :func:`repro.sim.collectives.ring_cost` terms.
    """
    r = len(buffers)
    stats = CollectiveStats()
    if r == 1:
        return [buffers[0].copy()], stats
    work = _as_flat_float64(buffers)
    n = work[0].size
    bounds = np.linspace(0, n, r + 1).astype(int)
    itemsize = buffers[0].itemsize

    def chunk(vec: np.ndarray, c: int) -> np.ndarray:
        return vec[bounds[c] : bounds[c + 1]]

    # Reduce-scatter ring.
    for t in range(r - 1):
        sends = [
            (i, (i + 1) % r, (i - t) % r, chunk(work[i], (i - t) % r).copy())
            for i in range(r)
        ]
        for _src, dst, c, data in sends:
            chunk(work[dst], c)[...] += data
            stats.messages += 1
        stats.rounds += 1
        stats.bytes_per_rank += itemsize * (n / r)

    owned: dict[int, np.ndarray] = {}
    for i in range(r):
        c = (i + 1) % r
        owned[c] = chunk(work[i], c).copy()

    # Allgather ring: rank i forwards the chunk it received last round.
    have: list[dict[int, np.ndarray]] = [
        {(i + 1) % r: owned[(i + 1) % r]} for i in range(r)
    ]
    for t in range(r - 1):
        sends = []
        for i in range(r):
            c = (i + 1 - t) % r
            sends.append((i, (i + 1) % r, c, have[i][c]))
        for _src, dst, c, data in sends:
            have[dst][c] = data
            stats.messages += 1
        stats.rounds += 1
        stats.bytes_per_rank += itemsize * (n / r)

    results = []
    for i in range(r):
        out = np.empty(n, dtype=np.float64)
        for c in range(r):
            chunk(out, c)[...] = have[i][c]
        results.append(out.reshape(buffers[0].shape).astype(buffers[0].dtype))
    return results, stats


def rabenseifner_allreduce(
    buffers: list[np.ndarray],
) -> tuple[list[np.ndarray], CollectiveStats]:
    """Rabenseifner allreduce (power-of-two groups), message by message.

    Recursive-halving reduce-scatter: each round, pair ``(i, i ^ dist)``
    splits the shared segment; each keeps one half and receives the peer's
    contribution for it. Recursive-doubling allgather mirrors the rounds
    back. ``2 log2(r)`` rounds, ``2 (r - 1)/r * L`` bytes per rank —
    :func:`repro.sim.collectives.rabenseifner_cost`.
    """
    r = len(buffers)
    stats = CollectiveStats()
    if r == 1:
        return [buffers[0].copy()], stats
    if r & (r - 1):
        raise CommunicationError(
            f"rabenseifner_allreduce requires a power-of-two group, got {r}"
        )
    work = _as_flat_float64(buffers)
    n = work[0].size
    itemsize = buffers[0].itemsize
    seg: list[tuple[int, int]] = [(0, n)] * r

    # Recursive-halving reduce-scatter.
    dist = r // 2
    while dist >= 1:
        sends: dict[int, tuple[np.ndarray, tuple[int, int]]] = {}
        keeps: dict[int, tuple[int, int]] = {}
        for i in range(r):
            peer = i ^ dist
            lo, hi = seg[i]
            mid = (lo + hi) // 2
            keep = (lo, mid) if i < peer else (mid, hi)
            send = (mid, hi) if i < peer else (lo, mid)
            keeps[i] = keep
            sends[i] = (work[i][send[0] : send[1]].copy(), send)
        for i in range(r):
            peer = i ^ dist
            data, rng = sends[peer]
            assert rng == keeps[i]
            work[i][rng[0] : rng[1]] += data
            seg[i] = keeps[i]
            stats.messages += 1
        stats.rounds += 1
        stats.bytes_per_rank += itemsize * (seg[0][1] - seg[0][0])
        dist //= 2

    # Recursive-doubling allgather.
    have: list[dict[tuple[int, int], np.ndarray]] = [
        {seg[i]: work[i][seg[i][0] : seg[i][1]].copy()} for i in range(r)
    ]
    dist = 1
    while dist < r:
        snapshots = [dict(h) for h in have]
        payload_elems = 0
        for i in range(r):
            peer = i ^ dist
            for rng, data in snapshots[peer].items():
                have[i][rng] = data
            payload_elems = sum(hi - lo for lo, hi in snapshots[i])
            stats.messages += 1
        stats.rounds += 1
        stats.bytes_per_rank += itemsize * payload_elems
        dist *= 2

    results = []
    for i in range(r):
        out = np.empty(n, dtype=np.float64)
        for (lo, hi), data in have[i].items():
            out[lo:hi] = data
        results.append(out.reshape(buffers[0].shape).astype(buffers[0].dtype))
    return results, stats
