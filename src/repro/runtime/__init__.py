"""Executable pipeline-parallel training runtime.

This package runs any :class:`~repro.schedules.ir.Schedule` on the real
NumPy models of :mod:`repro.models`, with an in-process GLOO-like
communication backend. It is the "does the schedule actually compute the
right thing" half of the reproduction:

* synchronous schemes (Chimera, DAPPLE, GPipe, GEMS) produce weights
  numerically equal to sequential mini-batch SGD (paper §2: "equivalent to
  the standard and well-proved mini-batch SGD");
* the PipeDream family exhibits weight staleness (different weights than
  SGD) while remaining version-consistent and convergent.
"""

from repro.runtime.optimizers import SGD, Adam, Momentum, Optimizer
from repro.runtime.backend import InProcessBackend
from repro.runtime.collective_algorithms import (
    CollectiveStats,
    rabenseifner_allreduce,
    ring_allreduce,
)
from repro.runtime.stage_module import StageModule
from repro.runtime.executor import PipelineExecutor
from repro.runtime.trainer import PipelineTrainer

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "InProcessBackend",
    "CollectiveStats",
    "rabenseifner_allreduce",
    "ring_allreduce",
    "StageModule",
    "PipelineExecutor",
    "PipelineTrainer",
]
