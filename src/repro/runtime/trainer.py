"""High-level training API: a model + a schedule + an optimizer.

``PipelineTrainer`` owns the stage modules (one full set of stage weights
per (group, replica) — exactly the memory layout the paper describes), the
executor, and the per-scheme update semantics:

* synchronous schemes (including the split-backward zero-bubble family) —
  allreduce gradient sums across all stage copies, scale to the mini-batch
  mean, one optimizer step per iteration (algorithmically identical to
  sequential mini-batch SGD);
* ``pipedream`` — weight stashing + an optimizer step after every
  micro-batch's backward (asynchronous, stale weights; runtime supports
  width 1, wider configurations are covered by the simulator);
* ``pipedream_2bw`` — gradient accumulation over the window with a
  one-window-stale application (double-buffered weight versions).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError, ReproError
from repro.models.layers import Layer
from repro.models.transformer import (
    TransformerLMConfig,
    build_transformer_layers,
    partition_layers,
)
from repro.runtime.executor import PipelineExecutor
from repro.runtime.optimizers import SGD, Optimizer
from repro.runtime.stage_module import StageModule
from repro.schedules.lowering import lower_schedule
from repro.schedules.passes import FuseCommPass
from repro.schedules.passes.pipeline import (
    normalize_pipeline,
    pipeline_from_flags,
    split_pipeline,
)
from repro.schedules.registry import build_schedule
from repro.schedules.validate import validate_schedule


class PipelineTrainer:
    """Train a :class:`TransformerLMConfig` model under any scheme.

    ``pipeline=`` is the canonical way to configure schedule transforms:
    an ordered pass spec (e.g. ``("offload", "lower_p2p")``) resolved
    against the pass registry, exactly as the simulator and planner take
    it. Every composition is numerically identical to the plain path
    (the parity tests assert it): lowering makes each cross-worker
    transfer an explicit SEND/RECV step, fuse_comm batches the pairs,
    recompute rematerializes activations at explicit RECOMPUTE ops, and
    offload parks the stash in the host tier between OFFLOAD/RELOAD ops
    — all bit-identical. The ``recompute``/``lowered``/``fused``
    booleans remain as aliases composed into the same spec.
    """

    def __init__(
        self,
        model_config: TransformerLMConfig,
        *,
        scheme: str = "chimera",
        depth: int,
        num_micro_batches: int,
        width: int = 1,
        optimizer_factory: Callable[[], Optimizer] | None = None,
        recompute: bool = False,
        lowered: bool = False,
        fused: bool = False,
        pipeline: "str | tuple[str, ...] | None" = None,
        schedule_options: dict | None = None,
    ) -> None:
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if pipeline is not None and (recompute or lowered or fused):
            raise ConfigurationError(
                "pass transforms either as pipeline= or as the "
                "recompute/lowered/fused booleans, not both"
            )
        if fused and not lowered:
            raise ConfigurationError(
                "fused communication requires lowered=True"
            )
        parts = split_pipeline(
            normalize_pipeline(pipeline)
            if pipeline is not None
            else pipeline_from_flags(
                recompute=recompute, lowered=lowered, fused=fused
            )
        )
        recompute = parts.recompute
        self.model_config = model_config
        self.scheme = scheme
        self.depth = depth
        self.width = width
        self.pipeline = parts.pipeline()
        options = dict(schedule_options or {})
        self.schedule = build_schedule(
            scheme,
            depth,
            num_micro_batches,
            **parts.build_options(),
            **options,
        )
        if parts.lowered:
            self.schedule = lower_schedule(self.schedule)
        if parts.fused:
            self.schedule = FuseCommPass().run(self.schedule)
        validate_schedule(self.schedule, require_sync_ops=False)
        if scheme == "pipedream" and width != 1:
            raise ConfigurationError(
                "the runtime implements PipeDream's per-micro-batch updates "
                "for width=1; use the simulator for wider sweeps"
            )

        self.optimizer = (optimizer_factory or (lambda: SGD(0.1)))()
        #: (group, replica, stage) -> StageModule. Every (group, replica)
        #: pair holds a full, identically initialized copy of the model.
        #: Partitioning follows the *schedule's* stage count, which can
        #: exceed ``depth`` (ZB-V folds 2 * depth chunks over the workers).
        self.stages: dict[tuple[int, int, int], StageModule] = {}
        for group in range(width):
            for replica in range(self.schedule.num_replicas):
                layers = build_transformer_layers(model_config)
                for stage, stage_layers in enumerate(
                    partition_layers(layers, self.schedule.num_stages)
                ):
                    self.stages[(group, replica, stage)] = StageModule(
                        stage_layers, recompute=recompute
                    )

        self.executor = PipelineExecutor(
            self.schedule,
            self.stages,
            width=width,
            weight_stashing=(scheme == "pipedream"),
            on_sync_complete=(
                self._pipedream_update if scheme == "pipedream" else None
            ),
        )
        self._pending_grads: dict[tuple[int, int, int], list[np.ndarray]] | None = (
            None
        )
        self.iterations = 0

    # -------------------------------------------------------------- training
    @property
    def num_micro_batches(self) -> int:
        return self.schedule.num_micro_batches

    def train_step(
        self, micro_batches: list[tuple[np.ndarray, np.ndarray]]
    ) -> float:
        """One iteration over ``N * width`` micro-batches; returns the loss."""
        n = self.num_micro_batches
        if len(micro_batches) != n * self.width:
            raise ReproError(
                f"expected {n * self.width} micro-batches, got {len(micro_batches)}"
            )
        data = [micro_batches[g * n : (g + 1) * n] for g in range(self.width)]

        if self.scheme == "pipedream_2bw":
            self._apply_pending()

        for module in self.stages.values():
            module.zero_grads()
        loss = self.executor.run_iteration(data)

        if self.schedule.synchronous:
            scale = 1.0 / (n * self.width)
            for module in self.stages.values():
                module.scale_grads(scale)
            for module in self.stages.values():
                self.optimizer.step(module.layers)
        elif self.scheme == "pipedream_2bw":
            scale = 1.0 / (n * self.width)
            self._pending_grads = {
                key: [g.copy() * scale for g in module.grad_arrays()]
                for key, module in self.stages.items()
            }
        # pipedream updated per micro-batch inside the executor hook.
        self.iterations += 1
        return loss

    def _apply_pending(self) -> None:
        """PipeDream-2BW: apply the previous window's (stale) gradients."""
        if self._pending_grads is None:
            return
        for key, grads in self._pending_grads.items():
            module = self.stages[key]
            for g, pending in zip(module.grad_arrays(), grads):
                g[...] = pending
            self.optimizer.step(module.layers)
            module.zero_grads()
        self._pending_grads = None

    def _pipedream_update(
        self, stage: int, micro_batches: tuple, members: list
    ) -> None:
        """Per-micro-batch update right after the gradient synchronization."""
        for group, replica, member_stage in members:
            module = self.stages[(group, replica, member_stage)]
            module.scale_grads(1.0 / self.width)
            self.optimizer.step(module.layers)
            module.zero_grads()

    # ------------------------------------------------------------ inspection
    def full_model_layers(self, *, group: int = 0, replica: int = 0) -> list[Layer]:
        """The layers of one model copy in forward order (for comparisons)."""
        layers: list[Layer] = []
        for stage in range(self.schedule.num_stages):
            layers.extend(self.stages[(group, replica, stage)].layers)
        return layers

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        """Do all model copies hold (numerically) identical weights?

        True for synchronous schemes after any number of iterations —
        replicas receive identical allreduced gradients.
        """
        for stage in range(self.schedule.num_stages):
            reference = None
            for group in range(self.width):
                for replica in range(self.schedule.num_replicas):
                    params = self.stages[(group, replica, stage)].param_arrays()
                    if reference is None:
                        reference = params
                        continue
                    for a, b in zip(reference, params):
                        if not np.allclose(a, b, atol=atol, rtol=0.0):
                            return False
        return True
