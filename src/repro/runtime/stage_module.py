"""A pipeline stage over a list of layers, with per-micro-batch stashes.

The runtime counterpart of what each worker hosts per (replica, stage):
weights, per-micro-batch activation caches (or just the stage input under
recomputation), and accumulated gradients. Also provides the weight
snapshot/restore hooks PipeDream's version stashing needs, and the split
backward the zero-bubble schedules use: :meth:`backward_input` computes and
returns the input gradient while *deferring* the micro-batch's parameter-
gradient contribution into a side buffer, and the matching
:meth:`backward_weight` later folds that buffer into the accumulated
gradients and releases the stash. Deferral keeps the numerics equivalent
to the fused backward regardless of how far the schedule separates the two
halves (no optimizer step can intervene within a synchronous iteration) —
exact up to float-addition rounding: re-associating the accumulation when
other micro-batches interleave between a ``Bi`` and its ``W`` can differ
from fused in-place accumulation by ~1 ulp. The simulator's cost model,
not this module, accounts for the true compute split between the halves.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.models.layers import Layer


class StageModule:
    """One stage replica: layers + in-flight micro-batch state."""

    def __init__(self, layers: list[Layer], *, recompute: bool = False) -> None:
        self.layers = layers
        self.recompute = recompute
        #: mb id -> list of per-layer caches (or the stage input under
        #: recomputation).
        self._caches: dict[int, list] = {}
        self._inputs: dict[int, np.ndarray] = {}
        #: mb id -> backward fraction still outstanding (parts support).
        self._pending: dict[int, float] = {}
        #: mb id -> (stage input, caches) parked in the host tier by an
        #: OFFLOAD op; device-side dicts drop the entries while parked.
        self._host: dict[int, tuple[np.ndarray, list | None]] = {}
        #: (mb, part) -> deferred parameter-gradient contribution of a
        #: split backward_input, awaiting its backward_weight.
        self._deferred_grads: dict[tuple[int, tuple[int, int]], list[np.ndarray]] = {}

    # ----------------------------------------------------------------- state
    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def grad_arrays(self) -> list[np.ndarray]:
        """Flat list of gradient buffers (allreduce payload), stable order."""
        return [g for layer in self.layers for _, g in sorted(layer.grads.items())]

    def param_arrays(self) -> list[np.ndarray]:
        return [p for layer in self.layers for _, p in sorted(layer.params.items())]

    def scale_grads(self, factor: float) -> None:
        for g in self.grad_arrays():
            g *= factor

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    def in_flight(self) -> int:
        """Number of micro-batches with live stashes (memory-model checks)."""
        return len(self._pending)

    def is_in_flight(self, mb: int) -> bool:
        return mb in self._pending

    def host_resident(self) -> int:
        """Number of micro-batch stashes currently parked in the host tier."""
        return len(self._host)

    # ------------------------------------------------------------- snapshots
    def snapshot_params(self) -> list[np.ndarray]:
        """Copy of all parameters (PipeDream weight-version stash)."""
        return [p.copy() for p in self.param_arrays()]

    def load_params(self, snapshot: list[np.ndarray]) -> None:
        params = self.param_arrays()
        if len(params) != len(snapshot):
            raise ReproError("parameter snapshot shape mismatch")
        for p, s in zip(params, snapshot):
            p[...] = s

    # ----------------------------------------------------------- computation
    def forward(self, mb: int, x: np.ndarray) -> np.ndarray:
        """Run the stage forward for micro-batch ``mb``, stashing state."""
        if mb in self._pending:
            raise ReproError(f"micro-batch {mb} already in flight on this stage")
        self._inputs[mb] = x
        if self.recompute:
            caches = None
        else:
            caches = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            if caches is not None:
                caches.append(cache)
        if caches is not None:
            self._caches[mb] = caches
        self._pending[mb] = 1.0
        return x

    def backward(
        self, mb: int, dy: np.ndarray, *, row_slice: slice | None = None, fraction: float = 1.0
    ) -> np.ndarray:
        """Fused backward for (a part of) micro-batch ``mb``; returns ``d input``.

        Parameter gradients accumulate into the layers. ``row_slice``
        restricts to a batch-row slice (backward halving); ``fraction`` is
        the share of the micro-batch this call covers, used to release the
        stash once all parts ran.
        """
        dy = self._backprop(mb, dy, row_slice)
        self._release(mb, fraction)
        return dy

    def backward_input(
        self,
        mb: int,
        dy: np.ndarray,
        *,
        row_slice: slice | None = None,
        part: tuple[int, int] = (0, 1),
    ) -> np.ndarray:
        """Split backward, input-gradient half (zero-bubble ``Bi``).

        Runs the backward walk for ``mb`` but diverts this call's
        parameter-gradient contribution into a deferred buffer keyed by
        ``(mb, part)`` instead of the accumulated gradients; the stash stays
        live for the matching :meth:`backward_weight`. Returns ``d input``.
        """
        key = (mb, part)
        if key in self._deferred_grads:
            raise ReproError(
                f"micro-batch {mb} part {part} already has a deferred "
                f"weight gradient on this stage"
            )
        before = [g.copy() for g in self.grad_arrays()]
        dy = self._backprop(mb, dy, row_slice)
        deferred = []
        for g, prev in zip(self.grad_arrays(), before):
            deferred.append(g - prev)
            g[...] = prev
        self._deferred_grads[key] = deferred
        return dy

    def backward_weight(
        self, mb: int, *, part: tuple[int, int] = (0, 1), fraction: float = 1.0
    ) -> None:
        """Split backward, weight-gradient half (zero-bubble ``W``).

        Folds the gradients the matching :meth:`backward_input` deferred
        into the accumulated per-layer gradients and releases this part's
        share of the activation stash.
        """
        key = (mb, part)
        deferred = self._deferred_grads.pop(key, None)
        if deferred is None:
            raise ReproError(
                f"weight gradient for micro-batch {mb} part {part} without "
                f"a matching input gradient"
            )
        for g, extra in zip(self.grad_arrays(), deferred):
            g += extra
        self._release(mb, fraction)

    def deferred_weight_grads(self) -> int:
        """Number of (mb, part) buffers awaiting their backward_weight."""
        return len(self._deferred_grads)

    # --------------------------------------------------------------- offload
    def offload_stash(self, mb: int) -> None:
        """Park micro-batch ``mb``'s stash in the host tier (``OFFLOAD``).

        The stage input (and the activation caches, when the forward kept
        them) move out of the device-side dicts into a host-side one. In
        this in-process NumPy runtime host memory is where the arrays
        already live, so the move is pure bookkeeping — which is exactly
        why training stays bit-identical with offload enabled; the
        simulator's cost model, not this module, accounts for the copy
        time and the two-tier peaks.
        """
        if mb not in self._pending:
            raise ReproError(f"offload for micro-batch {mb} without a forward")
        if mb in self._host:
            raise ReproError(f"micro-batch {mb} stash is already offloaded")
        self._host[mb] = (self._inputs.pop(mb), self._caches.pop(mb, None))

    def reload_stash(self, mb: int) -> None:
        """Bring micro-batch ``mb``'s stash back on device (``RELOAD``)."""
        entry = self._host.pop(mb, None)
        if entry is None:
            raise ReproError(
                f"reload for micro-batch {mb} without an offloaded stash"
            )
        x, caches = entry
        self._inputs[mb] = x
        if caches is not None:
            self._caches[mb] = caches

    def rematerialize(self, mb: int) -> None:
        """Replay the forward for ``mb`` from the stashed stage input.

        The runtime counterpart of an explicit ``RECOMPUTE`` op (the
        recompute pass): rebuilds the per-layer caches the forward
        discarded so the following backward finds them. Idempotent — a
        micro-batch whose caches are already live is left alone, which is
        also what makes the lazy flag-based path and the explicit-op path
        compose.
        """
        if mb not in self._pending:
            raise ReproError(
                f"rematerialization for micro-batch {mb} without a forward"
            )
        if mb in self._host:
            raise ReproError(
                f"micro-batch {mb} stash is offloaded; RELOAD must run first"
            )
        if mb in self._caches:
            return
        x = self._inputs[mb]
        caches = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            caches.append(cache)
        self._caches[mb] = caches

    def _backprop(
        self, mb: int, dy: np.ndarray, row_slice: slice | None
    ) -> np.ndarray:
        """Reverse layer walk for ``mb`` (rematerializing if needed)."""
        if mb not in self._pending:
            raise ReproError(f"backward for micro-batch {mb} without a forward")
        if mb in self._host:
            raise ReproError(
                f"micro-batch {mb} stash is offloaded; RELOAD must run first"
            )
        if self.recompute and mb not in self._caches:
            # Rematerialize the full forward from the stashed stage input
            # (flag-based recomputation; explicit RECOMPUTE ops call
            # rematerialize() ahead of time instead).
            self.rematerialize(mb)
        caches = self._caches[mb]
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache, row_slice=row_slice)
        return dy

    def _release(self, mb: int, fraction: float) -> None:
        """Release ``fraction`` of ``mb``'s stash; free it when all ran."""
        self._pending[mb] -= fraction
        if self._pending[mb] <= 1e-9:
            del self._pending[mb]
            del self._caches[mb]
            del self._inputs[mb]
