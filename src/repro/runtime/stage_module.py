"""A pipeline stage over a list of layers, with per-micro-batch stashes.

The runtime counterpart of what each worker hosts per (replica, stage):
weights, per-micro-batch activation caches (or just the stage input under
recomputation), and accumulated gradients. Also provides the weight
snapshot/restore hooks PipeDream's version stashing needs.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.models.layers import Layer


class StageModule:
    """One stage replica: layers + in-flight micro-batch state."""

    def __init__(self, layers: list[Layer], *, recompute: bool = False) -> None:
        self.layers = layers
        self.recompute = recompute
        #: mb id -> list of per-layer caches (or the stage input under
        #: recomputation).
        self._caches: dict[int, list] = {}
        self._inputs: dict[int, np.ndarray] = {}
        #: mb id -> backward fraction still outstanding (parts support).
        self._pending: dict[int, float] = {}

    # ----------------------------------------------------------------- state
    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def grad_arrays(self) -> list[np.ndarray]:
        """Flat list of gradient buffers (allreduce payload), stable order."""
        return [g for layer in self.layers for _, g in sorted(layer.grads.items())]

    def param_arrays(self) -> list[np.ndarray]:
        return [p for layer in self.layers for _, p in sorted(layer.params.items())]

    def scale_grads(self, factor: float) -> None:
        for g in self.grad_arrays():
            g *= factor

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    def in_flight(self) -> int:
        """Number of micro-batches with live stashes (memory-model checks)."""
        return len(self._pending)

    def is_in_flight(self, mb: int) -> bool:
        return mb in self._pending

    # ------------------------------------------------------------- snapshots
    def snapshot_params(self) -> list[np.ndarray]:
        """Copy of all parameters (PipeDream weight-version stash)."""
        return [p.copy() for p in self.param_arrays()]

    def load_params(self, snapshot: list[np.ndarray]) -> None:
        params = self.param_arrays()
        if len(params) != len(snapshot):
            raise ReproError("parameter snapshot shape mismatch")
        for p, s in zip(params, snapshot):
            p[...] = s

    # ----------------------------------------------------------- computation
    def forward(self, mb: int, x: np.ndarray) -> np.ndarray:
        """Run the stage forward for micro-batch ``mb``, stashing state."""
        if mb in self._pending:
            raise ReproError(f"micro-batch {mb} already in flight on this stage")
        self._inputs[mb] = x
        if self.recompute:
            caches = None
        else:
            caches = []
        for layer in self.layers:
            x, cache = layer.forward(x)
            if caches is not None:
                caches.append(cache)
        if caches is not None:
            self._caches[mb] = caches
        self._pending[mb] = 1.0
        return x

    def backward(
        self, mb: int, dy: np.ndarray, *, row_slice: slice | None = None, fraction: float = 1.0
    ) -> np.ndarray:
        """Backward for (a part of) micro-batch ``mb``; returns ``d input``.

        Parameter gradients accumulate into the layers. ``row_slice``
        restricts to a batch-row slice (backward halving); ``fraction`` is
        the share of the micro-batch this call covers, used to release the
        stash once all parts ran.
        """
        if mb not in self._pending:
            raise ReproError(f"backward for micro-batch {mb} without a forward")
        if self.recompute and mb not in self._caches:
            # Rematerialize the full forward from the stashed stage input.
            x = self._inputs[mb]
            caches = []
            for layer in self.layers:
                x, cache = layer.forward(x)
                caches.append(cache)
            self._caches[mb] = caches
        caches = self._caches[mb]
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache, row_slice=row_slice)
        self._pending[mb] -= fraction
        if self._pending[mb] <= 1e-9:
            del self._pending[mb]
            del self._caches[mb]
            del self._inputs[mb]
        return dy
