"""``python -m repro`` entry point."""

import signal
import sys

from repro.cli import main

# Die quietly when the consumer closes the pipe (e.g. `... | head`).
try:
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
    pass

sys.exit(main())
