"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``show``      Render a schedule as an ASCII Gantt chart.
``simulate``  Simulate a configuration on a modelled machine and report
              throughput / bubble ratio / memory.
``select``    Rank (W, D, B) configurations with the §3.4 model.
``figure``    Regenerate one of the paper's tables/figures.
``trace``     Export a simulated schedule as Chrome-tracing JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments
from repro.bench.harness import ExperimentConfig, run_configuration
from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, GPT2_32, GPT2_64
from repro.perf.selector import select_configuration
from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.trace import write_chrome_trace

MACHINES = {"piz-daint": PIZ_DAINT, "v100": V100_CLUSTER}
WORKLOADS = {"bert-48": BERT48, "gpt2-64": GPT2_64, "gpt2-32": GPT2_32}
FIGURES = {
    name: getattr(experiments, name)
    for name in experiments.__all__
}


def _schedule_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", choices=available_schemes(), default="chimera")
    parser.add_argument("--depth", "-D", type=int, default=4)
    parser.add_argument("--micro-batches", "-N", type=int, default=4)
    parser.add_argument("--recompute", action="store_true")
    parser.add_argument(
        "--concat", choices=["direct", "doubling", "halving"], default="direct"
    )
    parser.add_argument("--pipelines", "-f", type=int, default=1)
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="zero-bubble schemes: cap on live activation stashes",
    )


def _build(args: argparse.Namespace):
    options: dict = {"recompute": args.recompute}
    if args.scheme == "chimera":
        options["concat"] = args.concat
        options["num_down_pipelines"] = args.pipelines
    if args.scheme in ("zb_h1", "zb_v") and args.max_in_flight is not None:
        options["max_in_flight"] = args.max_in_flight
    return build_schedule(args.scheme, args.depth, args.micro_batches, **options)


def cmd_show(args: argparse.Namespace) -> int:
    print(render_gantt(_build(args)))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    result = simulate(_build(args), CostModel.practical())
    write_chrome_trace(result, args.output)
    print(f"wrote {args.output} (open in chrome://tracing or Perfetto)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    cfg = ExperimentConfig(
        scheme=args.scheme,
        machine=MACHINES[args.machine],
        workload=WORKLOADS[args.workload],
        width=args.width,
        depth=args.depth,
        micro_batch=args.micro_batch,
        mini_batch=args.mini_batch,
    )
    r = run_configuration(cfg)
    print(f"configuration : {r.label()}")
    print(f"micro-batches : N={r.num_micro_batches}")
    print(f"status        : {'OOM' if r.oom else 'fits'}"
          f"{' (activation recomputation)' if r.recompute else ''}")
    print(f"iteration     : {r.iteration_time:.4f} s")
    print(f"throughput    : {r.throughput:.1f} sequences/s")
    print(f"bubble ratio  : {r.bubble_ratio * 100:.1f} %")
    print(f"memory        : {r.min_memory_bytes / 2**30:.2f}"
          f"–{r.peak_memory_bytes / 2**30:.2f} GiB per worker")
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    ranked = select_configuration(
        MACHINES[args.machine],
        WORKLOADS[args.workload],
        num_workers=args.workers,
        mini_batch=args.mini_batch,
    )
    for i, cand in enumerate(ranked, 1):
        mark = "  <- selected" if i == 1 else ""
        print(f"{i}. {cand.label():<24} {cand.predicted_throughput:8.1f} seq/s{mark}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    print(FIGURES[args.name].run(fast=not args.full))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Chimera (SC'21) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("show", help="render a schedule as ASCII Gantt")
    _schedule_args(p)
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("trace", help="export a Chrome-tracing JSON")
    _schedule_args(p)
    p.add_argument("--output", "-o", default="schedule_trace.json")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("simulate", help="simulate one configuration")
    p.add_argument("--scheme", choices=available_schemes(), default="chimera")
    p.add_argument("--machine", choices=sorted(MACHINES), default="piz-daint")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="bert-48")
    p.add_argument("--width", "-W", type=int, default=8)
    p.add_argument("--depth", "-D", type=int, default=4)
    p.add_argument("--micro-batch", "-B", type=int, default=8)
    p.add_argument("--mini-batch", type=int, default=512)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("select", help="rank (W, D, B) configurations")
    p.add_argument("--machine", choices=sorted(MACHINES), default="piz-daint")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="bert-48")
    p.add_argument("--workers", "-P", type=int, default=32)
    p.add_argument("--mini-batch", type=int, default=512)
    p.set_defaults(func=cmd_select)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--full", action="store_true", help="paper-scale sweep")
    p.set_defaults(func=cmd_figure)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
