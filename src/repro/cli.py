"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``show``      Render a schedule as an ASCII Gantt chart.
``simulate``  Simulate a configuration on a modelled machine and report
              throughput / bubble ratio / memory.
``select``    Rank Chimera (W, D, B) configurations with the §3.4 model.
``plan``      Scheme-agnostic planner: enumerate (scheme, W, D, B) over
              every registered scheme, prune by the memory model against
              an optional ``--budget-gib`` peak-memory budget, and rank
              the survivors with the contention-aware event-queue engine.
``synthesize``  Search the (F, Bi, W) placement space directly for a
              schedule under an explicit ``(f, b, w, comm)`` cost model
              and peak-memory budget (``--budget-units``, in full-stage
              activation stashes), validate it with the synthesized-
              schedule rule set, and compare its makespan against every
              hand-written scheme.
``bench``     Run the engine performance suite (event engine vs the array
              kernel's fast/batch paths over every registered scheme ×
              {implicit, lowered, fused, contended, contended_fused} —
              the contended modes use a nonzero-beta link model, so
              transfers queue per channel — plus the ``planner_qps``
              load harness and the non-gating ``synthesize`` comparison),
              write a schema-versioned (v7) ``BENCH_<rev>.json``, and — with
              ``--check-against benchmarks/baseline.json`` — fail on
              makespan mismatches, >20% throughput regressions, a D=16
              contended batch speedup below its 5x floor, a >20% planner
              QPS drop (single-process or multiprocess), a plan_many
              batch speedup below its 5x floor, or multiprocess QPS
              below 2x single-process at 4 workers on a >=4-core host
              (the CI gate; see ``docs/benchmarking.md``).
``serve``     Run the planner as a long-lived HTTP/JSON service
              (``POST /plan``, ``POST /plan_many``, ``GET /stats``; see
              ``docs/serving.md``).
``cache``     Inspect (``stats``), wipe (``clear``), or locate (``path``)
              the schedule-artifact cache, both the in-process LRU and
              the persistent disk tier under ``~/.cache/repro``.
``figure``    Regenerate one of the paper's tables/figures.
``trace``     Export a simulated schedule as Chrome-tracing JSON.

``show``, ``trace`` and ``simulate`` accept ``--lower`` / ``--no-lower``
(default off) to run the schedule through the communication lowering pass
first: p2p transfers become explicit SEND/RECV ops that contend for link
bandwidth, and the Gantt/trace outputs grow per-worker comm lanes.
``show``/``trace`` take the link model from ``--link-alpha``/``--link-beta``
(in forward-time units; both default to 0, i.e. free links — set them to
see transfers on the wire), while ``simulate`` derives it from
``--machine``.

Schedule transforms are composable passes (:mod:`repro.schedules.passes`):
``--recompute`` routes through the recompute pass (any scheme),
``--fuse-comm`` batches each SEND/RECV pair into one transfer (implies
``--lower``), and ``--passes`` appends an explicit comma-separated
pipeline (e.g. ``--passes fill_bubbles,lower_p2p,fuse_comm`` or
``--passes insert_sync:eager``) after the scheme's default pipeline.
``plan`` exposes the same transforms as planning axes
(``--recompute``/``--no-recompute``, ``--fuse-comm``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench import experiments
from repro.bench.harness import ExperimentConfig, run_configuration
from repro.bench.machines import MACHINES
from repro.bench.perfsuite import (
    DEFAULT_TOLERANCE,
    check_against,
    default_output_name,
    format_suite,
    run_suite,
    write_bench_json,
)
from repro.bench.workloads import WORKLOADS
from repro.common.errors import ConfigurationError
from repro.common.units import parse_gib
from repro.perf.planner import format_plan, plan_configurations
from repro.perf.planner import select_configuration
from repro.schedules.passes.pipeline import normalize_pipeline
from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.network import FlatTopology, HostChannel, LinkSpec
from repro.sim.trace import write_chrome_trace
FIGURES = {
    name: getattr(experiments, name)
    for name in experiments.__all__
}


def _schedule_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheme", choices=available_schemes(), default="chimera")
    parser.add_argument("--depth", "-D", type=int, default=4)
    parser.add_argument("--micro-batches", "-N", type=int, default=4)
    parser.add_argument("--recompute", action="store_true")
    parser.add_argument(
        "--concat", choices=["direct", "doubling", "halving"], default="direct"
    )
    parser.add_argument("--pipelines", "-f", type=int, default=1)
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="zero-bubble schemes: cap on live activation stashes",
    )
    parser.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="extra schedule passes after the scheme's defaults, comma-"
        "separated (e.g. 'fill_bubbles,lower_p2p,fuse_comm', "
        "'insert_sync:eager')",
    )
    _lower_arg(parser)
    _link_args(parser)


def _pipeline_spec(value: str) -> tuple[str, ...]:
    """argparse type for ``--pipeline``: validate against the registry.

    A typo fails at parse time with the registered pass names in the
    message (the same enumeration the serve schema returns on a bad
    ``pipeline`` field).
    """
    try:
        return normalize_pipeline(value)
    except ConfigurationError as err:
        raise argparse.ArgumentTypeError(str(err)) from None


def _pipeline_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pipeline",
        type=_pipeline_spec,
        default=None,
        metavar="SPEC",
        help="canonical transform pipeline, comma-separated pass names "
        "(e.g. 'offload,lower_p2p'); replaces --lower/--fuse-comm/"
        "--passes and pins the transforms exactly",
    )


def _lower_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lower",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="rewrite p2p communication into explicit SEND/RECV ops "
        "(link contention, comm lanes)",
    )
    parser.add_argument(
        "--fuse-comm",
        action="store_true",
        help="batch each SEND/RECV pair into one transfer op "
        "(fuse_comm pass; implies --lower)",
    )


def _link_args(parser: argparse.ArgumentParser) -> None:
    """p2p link model for show/trace (simulate derives it from --machine)."""
    parser.add_argument(
        "--link-alpha",
        type=float,
        default=0.0,
        help="p2p latency in F_t units (show/trace render comm lanes when "
        "a link model is set)",
    )
    parser.add_argument(
        "--link-beta",
        type=float,
        default=0.0,
        help="p2p transfer time per micro-batch message in F_t units "
        "(the portion that occupies the link)",
    )
    parser.add_argument(
        "--host-alpha",
        type=float,
        default=0.0,
        help="host↔device copy latency in F_t units (offload pass; "
        "show/trace render host-channel lanes when set)",
    )
    parser.add_argument(
        "--host-beta",
        type=float,
        default=0.0,
        help="host↔device copy time per stash message in F_t units "
        "(the portion that occupies the worker's PCIe channel)",
    )


def _cost_model(args: argparse.Namespace) -> CostModel:
    cost_model = CostModel.practical()
    if args.link_alpha > 0 or args.link_beta > 0:
        cost_model = cost_model.with_(
            topology=FlatTopology(
                LinkSpec(alpha=args.link_alpha, beta=args.link_beta)
            ),
            activation_message_bytes=1.0,
        )
    if args.host_alpha > 0 or args.host_beta > 0:
        cost_model = cost_model.with_(
            host_channel=HostChannel(
                LinkSpec(alpha=args.host_alpha, beta=args.host_beta)
            ),
            offload_message_bytes=1.0,
        )
    return cost_model


def _build(args: argparse.Namespace):
    options: dict = {"recompute": args.recompute}
    if args.scheme == "chimera":
        options["concat"] = args.concat
        options["num_down_pipelines"] = args.pipelines
    if args.scheme in ("zb_h1", "zb_v") and args.max_in_flight is not None:
        options["max_in_flight"] = args.max_in_flight
    specs: list[str] = []
    if args.passes:
        specs.extend(s for s in args.passes.split(",") if s.strip())
    explicit = set(specs)
    if (args.lower or args.fuse_comm) and "lower_p2p" not in explicit:
        specs.append("lower_p2p")
    if args.fuse_comm and "fuse_comm" not in explicit:
        specs.append("fuse_comm")
    if specs:
        options["passes"] = ",".join(specs)
    return build_schedule(args.scheme, args.depth, args.micro_batches, **options)


def cmd_show(args: argparse.Namespace) -> int:
    print(render_gantt(_build(args), cost_model=_cost_model(args)))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    result = simulate(_build(args), _cost_model(args))
    write_chrome_trace(result, args.output)
    print(f"wrote {args.output} (open in chrome://tracing or Perfetto)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.pipeline is not None:
        if args.lower or args.fuse_comm or args.passes:
            print(
                "error: --pipeline replaces --lower/--fuse-comm/--passes; "
                "pass one or the other"
            )
            return 2
        pipeline: tuple[str, ...] = args.pipeline
    else:
        # Assemble the legacy flags into the same canonical pipeline spec
        # the config takes directly (--lower/--fuse-comm/--passes stay as
        # conveniences; normalize_pipeline orders and dedup-checks them).
        specs: list[str] = []
        if args.passes:
            specs.extend(s.strip() for s in args.passes.split(",") if s.strip())
        names = {s.partition(":")[0] for s in specs}
        if (args.lower or args.fuse_comm) and "lower_p2p" not in names:
            specs.append("lower_p2p")
        if args.fuse_comm and "fuse_comm" not in names:
            specs.append("fuse_comm")
        pipeline = normalize_pipeline(specs)
    cfg = ExperimentConfig(
        scheme=args.scheme,
        machine=MACHINES[args.machine],
        workload=WORKLOADS[args.workload],
        width=args.width,
        depth=args.depth,
        micro_batch=args.micro_batch,
        mini_batch=args.mini_batch,
        recompute=True if args.recompute else None,
        pipeline=pipeline,
        host_memory_budget_bytes=parse_gib(
            args.host_budget_gib, field="host budget"
        ),
    )
    r = run_configuration(cfg)
    print(f"configuration : {r.label()}")
    print(f"pipeline      : {','.join(r.pipeline) or '(none)'}")
    print(f"micro-batches : N={r.num_micro_batches}")
    print(f"status        : {'OOM' if r.oom else 'fits'}"
          f"{' (activation recomputation)' if r.recompute else ''}")
    print(f"iteration     : {r.iteration_time:.4f} s")
    print(f"throughput    : {r.throughput:.1f} sequences/s")
    print(f"bubble ratio  : {r.bubble_ratio * 100:.1f} %")
    print(f"memory        : {r.min_memory_bytes / 2**30:.2f}"
          f"–{r.peak_memory_bytes / 2**30:.2f} GiB per worker")
    if r.host_peak_memory_bytes > 0:
        print(f"host stash    : {r.host_peak_memory_bytes / 2**30:.2f} GiB peak")
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    ranked = select_configuration(
        MACHINES[args.machine],
        WORKLOADS[args.workload],
        num_workers=args.workers,
        mini_batch=args.mini_batch,
    )
    for i, cand in enumerate(ranked, 1):
        mark = "  <- selected" if i == 1 else ""
        print(f"{i}. {cand.label():<24} {cand.predicted_throughput:8.1f} seq/s{mark}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    entries = plan_configurations(
        MACHINES[args.machine],
        WORKLOADS[args.workload],
        num_workers=args.workers,
        mini_batch=args.mini_batch,
        memory_budget_bytes=parse_gib(args.budget_gib),
        schemes=args.schemes,
        lowered=args.lower or args.fuse_comm,
        fused=args.fuse_comm,
        recompute=args.recompute,
        top_k=args.top,
        pipeline=args.pipeline,
        offload=args.offload,
        host_memory_budget_bytes=parse_gib(
            args.host_budget_gib, field="host budget"
        ),
    )
    budget_str = f"{args.budget_gib:g} GiB budget" if args.budget_gib else "device capacity"
    print(
        f"plan: {args.workload} on {args.machine}, P={args.workers}, "
        f"B̂={args.mini_batch}, {budget_str}"
    )
    print(format_plan(entries))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    baseline = None
    if args.check_against:
        # Validate the baseline before the multi-minute suite runs, so a
        # missing or corrupt file fails in milliseconds with guidance.
        path = pathlib.Path(args.check_against)
        if not path.is_file():
            print(
                f"error: baseline {path} does not exist — generate one with "
                f"`repro bench -o {path}` and commit it "
                f"(see docs/benchmarking.md)"
            )
            return 1
        try:
            baseline = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            print(f"error: baseline {path} is not valid JSON ({err})")
            return 1
    payload = run_suite(
        fast=args.fast,
        repeats=args.repeats,
        inject_slowdown=args.inject_slowdown,
    )
    out = args.output or default_output_name(payload)
    write_bench_json(payload, out)
    print(format_suite(payload))
    print(f"wrote {out}")
    if baseline is not None:
        violations = check_against(payload, baseline, tolerance=args.tolerance)
        if violations:
            print(
                f"FAIL: {len(violations)} regression(s) against "
                f"{args.check_against}:"
            )
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(
            f"OK: no regressions against {args.check_against} "
            f"(tolerance {args.tolerance * 100:.0f}%)"
        )
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.schedules.cache import cached_build_schedule
    from repro.schedules.registry import scheme_traits
    from repro.schedules.synthesize import peak_stash_units, synthesis_cost_model
    from repro.schedules.validate import validate_synthesized_schedule
    from repro.sim.kernel import simulate_batch_many

    options: dict = {
        "f_time": args.f_time,
        "b_time": args.b_time,
        "w_time": args.w_time,
        "comm_time": args.comm_time,
        "beam_width": args.beam_width,
        "beam_rounds": args.beam_rounds,
    }
    if args.budget_units is not None:
        options["memory_budget_units"] = args.budget_units
    schedule = build_schedule(
        "synthesize", args.depth, args.micro_batches, **options
    )
    validate_synthesized_schedule(schedule)
    meta = schedule.metadata
    print(
        f"synthesized  : D={args.depth}, N={args.micro_batches}, "
        f"costs (f={args.f_time:g}, b={args.b_time:g}, w={args.w_time:g}, "
        f"comm={args.comm_time:g})"
    )
    budget = meta.get("memory_budget_units")
    print(f"budget       : "
          f"{'unconstrained' if budget is None else f'{budget:g} Ma/worker'}")
    print(f"seed         : {meta['seed']} "
          f"(+{meta['refinement_moves']} refinement moves)")
    print(f"makespan     : {meta['makespan']:.4f} F_t")
    print(f"peak memory  : {meta['peak_units']:g} Ma/worker")
    print("validator    : clean (synthesized-schedule rules)")

    model = synthesis_cost_model(
        args.f_time, args.b_time, args.w_time, args.comm_time
    )
    rows = []
    for scheme in available_schemes():
        if scheme_traits(scheme).cost_parameterized:
            continue
        try:
            other = cached_build_schedule(scheme, args.depth, args.micro_batches)
        except Exception:
            continue  # scheme structurally invalid at this (D, N)
        rows.append((scheme, other, peak_stash_units(other)))
    batch = simulate_batch_many([(s, model) for _, s, _ in rows])
    print(f"\n{'scheme':<14} {'makespan':>10} {'peak Ma':>8}   vs synthesized")
    for k, (scheme, _, peak) in enumerate(rows):
        makespan = float(batch.compute_makespan[k])
        ratio = makespan / meta["makespan"]
        print(f"{scheme:<14} {makespan:>10.4f} {peak:>8g}   {ratio:.3f}x")
    if args.show:
        print()
        print(render_gantt(schedule, cost_model=model))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    print(FIGURES[args.name].run(fast=not args.full))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.perf.planner import DEFAULT_PLAN_WORKERS
    from repro.serve import PlannerService, serve_forever

    workers = (
        args.plan_workers
        if args.plan_workers is not None
        else DEFAULT_PLAN_WORKERS
    )
    service = PlannerService(
        max_inflight=args.max_inflight,
        plan_workers=workers,
        workers=args.workers,
        coalesce_ms=args.coalesce_ms,
    )
    serve_forever(args.host, args.port, service=service)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.schedules.cache import (
        SCHEDULE_CACHE,
        clear_schedule_cache,
        disk_cache_stats,
        schedule_cache_stats,
    )

    disk = SCHEDULE_CACHE.disk
    if args.cache_action == "path":
        print(disk.root if disk is not None else "(disk tier disabled)")
        return 0
    if args.cache_action == "clear":
        removed = clear_schedule_cache(disk=True)
        print(f"cleared in-memory cache; removed {removed} disk entr"
              f"{'y' if removed == 1 else 'ies'}")
        return 0
    mem = schedule_cache_stats()
    print("in-memory LRU")
    print(f"  entries   : {mem.entries} (max {SCHEDULE_CACHE.max_entries})")
    print(f"  hits      : {mem.hits}")
    print(f"  misses    : {mem.misses}")
    print(f"  hit rate  : {mem.hit_rate * 100:.1f} %")
    stats = disk_cache_stats()
    if stats is None:
        print("disk tier     : disabled")
        return 0
    print(f"disk tier ({disk.root})")
    print(f"  entries   : {stats.entries}")
    print(f"  size      : {stats.total_bytes / 2**20:.1f} MiB")
    print(f"  hits      : {stats.hits} (this process)")
    print(f"  misses    : {stats.misses}")
    print(f"  stores    : {stats.stores}")
    print(f"  evictions : {stats.evictions}")
    print(f"  hit rate  : {stats.hit_rate * 100:.1f} %")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Chimera (SC'21) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("show", help="render a schedule as ASCII Gantt")
    _schedule_args(p)
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("trace", help="export a Chrome-tracing JSON")
    _schedule_args(p)
    p.add_argument("--output", "-o", default="schedule_trace.json")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("simulate", help="simulate one configuration")
    p.add_argument("--scheme", choices=available_schemes(), default="chimera")
    p.add_argument("--machine", choices=sorted(MACHINES), default="piz-daint")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="bert-48")
    p.add_argument("--width", "-W", type=int, default=8)
    p.add_argument("--depth", "-D", type=int, default=4)
    p.add_argument("--micro-batch", "-B", type=int, default=8)
    p.add_argument("--mini-batch", type=int, default=512)
    p.add_argument(
        "--recompute",
        action="store_true",
        help="force activation recomputation (default: only when needed "
        "to fit memory)",
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="extra schedule passes, comma-separated",
    )
    p.add_argument(
        "--host-budget-gib",
        type=float,
        default=None,
        help="host-tier (CPU RAM) budget in GiB for offloaded stashes "
        "(default: the machine's host capacity)",
    )
    _pipeline_arg(p)
    _lower_arg(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "select", help="rank Chimera (W, D, B) with the §3.4 model"
    )
    p.add_argument("--machine", choices=sorted(MACHINES), default="piz-daint")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="bert-48")
    p.add_argument("--workers", "-P", type=int, default=32)
    p.add_argument("--mini-batch", type=int, default=512)
    p.set_defaults(func=cmd_select)

    p = sub.add_parser(
        "plan", help="rank (scheme, W, D, B) under a peak-memory budget"
    )
    p.add_argument("--machine", choices=sorted(MACHINES), default="piz-daint")
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="bert-48")
    p.add_argument("--workers", "-P", type=int, default=32)
    p.add_argument("--mini-batch", type=int, default=512)
    p.add_argument(
        "--budget-gib",
        type=float,
        default=None,
        help="per-device peak-memory budget in GiB (default: device capacity)",
    )
    p.add_argument(
        "--schemes",
        nargs="+",
        choices=available_schemes(),
        default=None,
        help="restrict the search to these schemes (default: all)",
    )
    p.add_argument("--top", type=int, default=10, help="rows to print")
    p.add_argument(
        "--lower",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="rank with explicit SEND/RECV link contention (default on)",
    )
    p.add_argument(
        "--fuse-comm",
        action="store_true",
        help="rank with batched transfers (fuse_comm pass; fewer events "
        "per simulation, identical timing on contention-free links)",
    )
    p.add_argument(
        "--recompute",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="recompute planning axis: default tries plain then "
        "recomputed per candidate; --recompute forces it on, "
        "--no-recompute disables the axis entirely",
    )
    p.add_argument(
        "--offload",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="activation-offload planning axis (host-memory tier): "
        "default tries plain → offload → recompute → both per "
        "candidate; --offload forces it on, --no-offload disables it",
    )
    p.add_argument(
        "--host-budget-gib",
        type=float,
        default=None,
        help="host-tier (CPU RAM) budget in GiB for offloaded stashes "
        "(default: the machine's host capacity)",
    )
    _pipeline_arg(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "synthesize",
        help="search the (F, Bi, W) placement space for a schedule under "
        "a cost model and memory budget",
    )
    p.add_argument("--depth", "-D", type=int, default=4)
    p.add_argument("--micro-batches", "-N", type=int, default=8)
    p.add_argument(
        "--f-time", type=float, default=1.0, help="forward duration (F_t units)"
    )
    p.add_argument(
        "--b-time", type=float, default=1.0, help="input-gradient duration"
    )
    p.add_argument(
        "--w-time", type=float, default=1.0, help="weight-gradient duration"
    )
    p.add_argument(
        "--comm-time",
        type=float,
        default=0.0,
        help="per-hop activation/gradient message latency (0 = free links)",
    )
    p.add_argument(
        "--budget-units",
        type=float,
        default=None,
        help="peak live activation stashes per worker, in full-stage (Ma) "
        "units (default: unconstrained)",
    )
    p.add_argument(
        "--beam-width", type=int, default=4, help="beam-search width"
    )
    p.add_argument(
        "--beam-rounds", type=int, default=3, help="beam refinement rounds"
    )
    p.add_argument(
        "--show", action="store_true", help="render the result as ASCII Gantt"
    )
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser(
        "bench",
        help="run the engine perf suite (incl. contended modes, the gated "
        "offload block, and the non-gating synthesize block, schema v6) / "
        "check the CI gate",
    )
    p.add_argument(
        "--output",
        "-o",
        default=None,
        help="output JSON path (default: BENCH_<git-rev>.json)",
    )
    p.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline JSON and exit 1 on regressions",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative throughput drop (default 0.20)",
    )
    p.add_argument(
        "--fast",
        action="store_true",
        help="reduced smoke grid (D=8, N=16) instead of the full suite",
    )
    p.add_argument("--repeats", type=int, default=3, help="timing repetitions per case")
    p.add_argument(
        "--inject-slowdown",
        type=float,
        default=None,
        help="scale measured wall times (testing hook for the CI gate; "
        "also REPRO_BENCH_INJECT_SLOWDOWN)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--full", action="store_true", help="paper-scale sweep")
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "serve", help="run the planner as an HTTP/JSON service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8473)
    p.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="concurrently admitted plan computations before load "
        "shedding (HTTP 503)",
    )
    p.add_argument(
        "--plan-workers",
        type=int,
        default=None,
        help="worker pool bound for async-scheme steady-state paths "
        "(default: min(8, cores))",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="planner worker processes; 0 (default) plans in-process, "
        "N > 0 starts a spawn-based pool and routes every batch "
        "through plan_many(backend='process')",
    )
    p.add_argument(
        "--coalesce-ms",
        type=float,
        default=0.0,
        help="coalescing window in milliseconds for single /plan calls; "
        "0 (default) disables micro-batching",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cache", help="inspect or clear the schedule-artifact cache"
    )
    p.add_argument(
        "cache_action",
        choices=("stats", "clear", "path"),
        nargs="?",
        default="stats",
    )
    p.set_defaults(func=cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
