"""Performance modelling, configuration selection, and planning (§3.4).

* :mod:`repro.perf.model` — Equation (1): closed-form critical-path counts
  plus a homogeneous-cost simulation for the communication-overlap term.
* :mod:`repro.perf.planner` — both selection procedures: the paper's
  Chimera-specific §3.4 strategy (greedily pick the largest micro-batch
  size that fits device memory, then use the model to choose the best
  (W, D) split) and the scheme-agnostic generalization (enumerate
  ``(scheme, W, D, B)`` over every registered scheme, prune by the memory
  model against a peak-memory budget, and rank the survivors with the
  contention-aware event-queue simulation, with schedule passes —
  recomputation, communication fusion — as planning axes), plus the
  batched :func:`~repro.perf.planner.plan_many` entry point behind
  ``repro serve`` and the bench suite's planner load harness.
* :mod:`repro.perf.calibration` — build cost/memory models from a machine
  spec and a workload spec (the stand-in for the paper's micro-benchmarks).
"""

from repro.perf.model import (
    PerfPrediction,
    chimera_critical_path,
    predict_closed_form,
    predict_iteration_time,
)
from repro.perf.planner import (
    ConfigCandidate,
    PlanEntry,
    PlanOutcome,
    PlanRequest,
    format_plan,
    greedy_micro_batch,
    plan_configurations,
    plan_many,
    select_configuration,
)
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model

__all__ = [
    "PerfPrediction",
    "chimera_critical_path",
    "predict_closed_form",
    "predict_iteration_time",
    "PlanEntry",
    "PlanOutcome",
    "PlanRequest",
    "format_plan",
    "plan_configurations",
    "plan_many",
    "ConfigCandidate",
    "greedy_micro_batch",
    "select_configuration",
    "calibrate_cost_model",
    "calibrate_memory_model",
]
