"""Performance modelling, configuration selection, and planning (§3.4).

* :mod:`repro.perf.model` — Equation (1): closed-form critical-path counts
  plus a homogeneous-cost simulation for the communication-overlap term.
* :mod:`repro.perf.selector` — the paper's Chimera-specific strategy:
  greedily pick the largest micro-batch size that fits device memory, then
  use the model to choose the best (W, D) split of the workers.
* :mod:`repro.perf.planner` — the scheme-agnostic generalization: enumerate
  ``(scheme, W, D, B)`` over every registered scheme, prune by the memory
  model against a peak-memory budget, and rank the survivors with the
  contention-aware event-queue simulation.
* :mod:`repro.perf.calibration` — build cost/memory models from a machine
  spec and a workload spec (the stand-in for the paper's micro-benchmarks).
"""

from repro.perf.model import (
    PerfPrediction,
    chimera_critical_path,
    predict_closed_form,
    predict_iteration_time,
)
from repro.perf.planner import PlanEntry, format_plan, plan_configurations
from repro.perf.selector import ConfigCandidate, select_configuration
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model

__all__ = [
    "PerfPrediction",
    "chimera_critical_path",
    "predict_closed_form",
    "predict_iteration_time",
    "PlanEntry",
    "format_plan",
    "plan_configurations",
    "ConfigCandidate",
    "select_configuration",
    "calibrate_cost_model",
    "calibrate_memory_model",
]
