"""Multiprocess execution tier of the planner: the worker pool.

Everything the serving stack shipped before this module executes in ONE
Python process: ``ThreadingHTTPServer`` handler threads, the admission
semaphore, and the async-scheme fan-out over a ``ThreadPoolExecutor``
are all serialized by the GIL, so planner throughput is capped at about
one core no matter how many clients arrive. :class:`PlannerWorkerPool`
is the fix production inference servers use: a small pool of long-lived
**worker processes**, each with its own warm in-process
:class:`~repro.schedules.cache.ScheduleCache`, all sharing the
content-addressed disk tier (whose atomic tmp + ``os.replace`` stores
are multi-process safe — workers inherit ``REPRO_CACHE_DIR`` /
``REPRO_CACHE_DISABLE`` explicitly at start).

Design notes
------------
* **Spawn, not fork.** Workers are created with the ``spawn`` start
  method on every platform: the parent runs handler threads, locks, and
  (under ``repro serve``) a listening socket, none of which survive a
  fork safely. Spawned workers import the planner stack fresh and
  signal readiness before taking tasks.
* **Whole-shard tasks.** The unit of work is a list of
  :class:`~repro.perf.planner.PlanRequest` objects executed by the
  worker's own in-process :func:`~repro.perf.planner.plan_many`
  (``max_workers=1`` — a worker never nests a pool). Per-request
  outcomes are independent of their batchmates (cross-request sharing
  is purely a cost optimization), so sharding preserves bit-identical
  results, including exact ``ConfigurationError`` messages; the bench
  harness asserts this parity per entry at 1e-9.
* **Crash containment.** Every task is tagged before execution; when a
  worker dies mid-task (or the whole pool is down with tasks queued),
  the affected futures fail with :class:`WorkerCrashError` instead of
  hanging their clients forever.
* **Graceful drain.** :meth:`PlannerWorkerPool.stop` enqueues one stop
  sentinel per worker *behind* any queued tasks, so a draining pool
  finishes accepted work, then joins every process — ``repro serve``
  hooks this into SIGTERM handling so no orphan processes outlive a
  shutdown.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Environment propagated explicitly to spawned workers, so a pool
#: created after a test (or service) redirected the disk tier still
#: shares the intended cache root.
_ENV_KEYS = ("REPRO_CACHE_DIR", "REPRO_CACHE_DISABLE")

#: True inside a worker process: the planner checks it to keep workers
#: from recursively spawning pools of their own.
_IN_WORKER = False


def in_worker() -> bool:
    """True when the current process is a pool worker."""
    return _IN_WORKER


class WorkerCrashError(RuntimeError):
    """A pool worker died before completing the task."""


def _picklable_error(err: BaseException) -> BaseException:
    """``err`` if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(err))
        return err
    except Exception:
        return RuntimeError(f"{type(err).__name__}: {err}")


def _run_steady(cfg) -> object | None:
    """One async-scheme steady-state measurement (worker side).

    Mirrors the planner's in-process fan-out exactly: structurally
    invalid corners return ``None`` (the candidate is dropped), anything
    else propagates.
    """
    from repro.bench.harness import run_configuration
    from repro.common.errors import ConfigurationError, ScheduleError

    try:
        return run_configuration(cfg)
    except (ConfigurationError, ScheduleError):
        return None


def _worker_main(worker_id: int, tasks, results, env: dict) -> None:
    """Worker process entry point: warm up, then execute tasks until the
    stop sentinel arrives."""
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    global _IN_WORKER
    _IN_WORKER = True
    # Warm import: the full planner stack (schedule builders, kernel,
    # calibration) loads before the worker reports ready, so the first
    # task pays planning cost, not import cost.
    from repro.perf.planner import plan_many

    results.put(("ready", worker_id, os.getpid()))
    while True:
        item = tasks.get()
        if item is None:
            results.put(("exit", worker_id, os.getpid()))
            return
        kind, task_id, payload = item
        results.put(("start", task_id, os.getpid()))
        try:
            if kind == "plan":
                out = plan_many(payload, max_workers=1)
            elif kind == "steady":
                out = _run_steady(payload)
            else:
                raise RuntimeError(f"unknown pool task kind {kind!r}")
        except BaseException as err:  # noqa: BLE001 - shipped to the caller
            results.put(("err", task_id, _picklable_error(err)))
        else:
            results.put(("ok", task_id, out))


@dataclass(frozen=True)
class WorkerPoolStats:
    """One snapshot of a pool: configuration, liveness, and load gauges.

    ``pending`` counts submitted-but-unresolved tasks (queued plus
    executing); it must return to zero when the pool is idle.
    """

    workers: int
    alive: int
    pids: tuple[int, ...]
    pending: int
    completed: int
    failed: int


class PlannerWorkerPool:
    """A fixed-size pool of long-lived spawn-started planner processes.

    Tasks are submitted as futures (:meth:`submit_plan` for whole
    request shards, :meth:`submit_steady` for one async-scheme
    steady-state measurement) and resolve on a collector thread as
    workers report results. The pool is safe to share across threads —
    ``repro serve`` submits from many handler threads at once.
    """

    def __init__(self, workers: int, *, name: str = "planner"):
        if workers < 1:
            raise ConfigurationError(
                f"worker pool size must be >= 1, got {workers}"
            )
        self.workers = workers
        ctx = multiprocessing.get_context("spawn")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._lock = threading.Lock()
        self._futures: dict[int, Future] = {}
        self._running: dict[int, int] = {}  # task id -> worker pid
        self._next_id = 0
        self._completed = 0
        self._failed = 0
        self._stopped = False
        self._drained = threading.Event()
        env = {key: os.environ.get(key) for key in _ENV_KEYS}
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, self._tasks, self._results, env),
                name=f"repro-{name}-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, name=f"repro-{name}-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------ submission
    def submit_plan(self, requests) -> Future:
        """Plan a whole request shard in one worker.

        Resolves to ``list[PlanOutcome]``, bit-identical to the parent
        running :func:`~repro.perf.planner.plan_many` on the shard.
        """
        return self._submit("plan", list(requests))

    def submit_steady(self, cfg) -> Future:
        """Run one async-scheme steady-state measurement in a worker.

        Resolves to the :class:`~repro.bench.harness.ExperimentResult`,
        or ``None`` for structurally invalid corners — exactly the
        in-process fan-out's contract.
        """
        return self._submit("steady", cfg)

    def _submit(self, kind: str, payload) -> Future:
        with self._lock:
            if self._stopped:
                raise WorkerCrashError("worker pool is stopped")
            task_id = self._next_id
            self._next_id += 1
            fut: Future = Future()
            self._futures[task_id] = fut
        self._tasks.put((kind, task_id, payload))
        return fut

    # ------------------------------------------------------------- collector
    def _collect(self) -> None:
        while True:
            try:
                msg = self._results.get(timeout=0.1)
            except queue.Empty:
                if self._drained.is_set():
                    break
                self._fail_crashed()
                continue
            tag, ident, payload = msg
            if tag == "start":
                with self._lock:
                    if ident in self._futures:
                        self._running[ident] = payload
            elif tag in ("ok", "err"):
                with self._lock:
                    fut = self._futures.pop(ident, None)
                    self._running.pop(ident, None)
                    if fut is not None:
                        if tag == "ok":
                            self._completed += 1
                        else:
                            self._failed += 1
                if fut is not None:
                    if tag == "ok":
                        fut.set_result(payload)
                    else:
                        fut.set_exception(payload)
            # "ready"/"exit" messages carry liveness only; the gauges
            # read process state directly.
        self._fail_pending(WorkerCrashError("worker pool stopped"))

    def _fail_crashed(self) -> None:
        """Fail futures whose worker died, and everything if all did."""
        with self._lock:
            if not self._futures:
                return
            dead = {
                proc.pid
                for proc in self._procs
                if proc.exitcode is not None
            }
            doomed: list[tuple[int, Future, str]] = []
            for task_id, pid in list(self._running.items()):
                if pid in dead:
                    fut = self._futures.pop(task_id, None)
                    self._running.pop(task_id, None)
                    if fut is not None:
                        doomed.append(
                            (task_id, fut, f"worker pid {pid} died mid-task")
                        )
            if len(dead) == len(self._procs):
                for task_id, fut in list(self._futures.items()):
                    del self._futures[task_id]
                    doomed.append(
                        (task_id, fut, "every pool worker has died")
                    )
            self._failed += len(doomed)
        for _, fut, why in doomed:
            fut.set_exception(WorkerCrashError(why))

    def _fail_pending(self, err: BaseException) -> None:
        with self._lock:
            stranded = list(self._futures.values())
            self._futures.clear()
            self._running.clear()
            self._failed += len(stranded)
        for fut in stranded:
            fut.set_exception(err)

    # ------------------------------------------------------------- lifecycle
    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self, timeout: float = 60.0) -> None:
        """Drain queued tasks, stop every worker, join, resolve leftovers.

        The stop sentinels queue *behind* accepted tasks, so everything
        already submitted completes (drain means finish, not cancel);
        only tasks stranded by a crashed or timed-out worker fail, with
        :class:`WorkerCrashError`.
        """
        with self._lock:
            if self._stopped:
                self._collector.join(timeout=timeout)
                return
            self._stopped = True
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join(timeout=5.0)
        self._drained.set()
        self._collector.join(timeout=timeout)
        # Feeder threads of multiprocessing queues block interpreter exit
        # when items linger; there is nothing left worth flushing.
        self._tasks.cancel_join_thread()
        self._results.cancel_join_thread()

    def __enter__(self) -> "PlannerWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ----------------------------------------------------------------- stats
    def pids(self) -> tuple[int, ...]:
        return tuple(proc.pid for proc in self._procs if proc.pid is not None)

    def stats(self) -> WorkerPoolStats:
        with self._lock:
            pending = len(self._futures)
            completed = self._completed
            failed = self._failed
        return WorkerPoolStats(
            workers=self.workers,
            alive=sum(1 for proc in self._procs if proc.is_alive()),
            pids=self.pids(),
            pending=pending,
            completed=completed,
            failed=failed,
        )


# ---------------------------------------------------------------------------
# The lazily created process-wide default pool: what `plan_many`'s process
# backend (and the thread backend's async fan-out) uses when the caller
# does not manage a pool of its own.
# ---------------------------------------------------------------------------

_default_pool: PlannerWorkerPool | None = None
_default_pool_lock = threading.Lock()


def get_default_pool(workers: int) -> PlannerWorkerPool:
    """The shared pool, created on first use with ``workers`` processes.

    Subsequent calls reuse the existing pool regardless of ``workers``
    (one warm pool beats perfectly sized cold ones); a stopped pool is
    replaced. Never call from inside a worker — the planner guards with
    :func:`in_worker` before routing here.
    """
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None or _default_pool.stopped:
            _default_pool = PlannerWorkerPool(workers, name="default")
        return _default_pool


def stop_default_pool() -> None:
    """Stop and forget the shared pool (idempotent; used by atexit)."""
    global _default_pool
    with _default_pool_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None and not pool.stopped:
        pool.stop()


atexit.register(stop_default_pool)
