"""Configuration planning: scheme-agnostic search plus the §3.4 procedure.

The paper's §3.4 selection procedure (:func:`select_configuration`, kept
here verbatim for the Figure 13 reproduction) is hard-wired to the
bidirectional schedule: Chimera has so few bubbles that the largest
micro-batch wins and only ``(W, D)`` needs ranking. With ten registered
schemes — including the memory-controllable zero-bubble family, whose
whole point is trading ramp time for peak activation memory — selection
becomes a genuine search problem over ``(scheme, W, D, B)``:

1. **Enumerate.** For every requested scheme, every depth ``D`` dividing
   ``P`` (respecting the scheme's structural traits: even depth for the
   bidirectional placements, ``2D`` model chunks for the V-shaped family)
   and every power-of-two micro-batch size ``B`` dividing the per-group
   share of the mini-batch.
2. **Prune.** Run :func:`repro.sim.memory.analyze_memory` on the real
   schedule and drop candidates whose peak exceeds
   ``min(machine.usable_memory_bytes, memory_budget_bytes)`` — retrying
   once with activation recomputation, exactly like the experiment
   harness.
3. **Rank.** Simulate every survivor in one batched array-kernel call
   (:func:`repro.sim.kernel.simulate_batch_many`) — lowered by default,
   so p2p transfers contend for link bandwidth, with the kernel's
   per-channel FIFO serialization matching the event engine to 1e-9 —
   and sort by simulated end-to-end throughput.

Schedule-transform passes (:mod:`repro.schedules.passes`) are planning
*axes*: the pruning step enumerates activation offload and
recomputation through the offload/recompute passes, trying each
candidate plain, then offloaded (stashes parked in host RAM — backward
stays at its un-recomputed cost, at the price of PCIe traffic), then
recomputed, then both — so tight budgets rank all three memory-relief
strategies against each other at equal device budget. ``recompute`` /
``offload`` pin an axis (``False`` reproduces the pass-less planner),
and an explicit ``pipeline`` spec disables the axes entirely and ranks
exactly that pass composition. ``fused=True`` ranks with batched
communication (the fuse_comm pass) — identical timing at zero link
occupancy with roughly a third fewer ops per event simulation, which is
the fast mode for big lowered grids.

Every pruning decision and the final ranking go through the same code
paths as the benchmark harness (:mod:`repro.bench.harness`), so a plan
entry is exactly the configuration's ``run_configuration`` outcome.

Batch planning (planner-as-a-service)
-------------------------------------
:func:`plan_many` evaluates a whole batch of heterogeneous
:class:`PlanRequest` queries as one unit of work — the primitive behind
``repro serve`` and the ``planner_qps`` load harness. It deduplicates at
three levels: identical requests collapse to one computation; memory
reports are memoized on the schedule-cache key (``W`` and ``B`` vary far
more often than the underlying ``(scheme, D, N)`` schedule); and every
synchronous survivor of every request feeds **one**
:func:`repro.sim.kernel.simulate_batch_many` call, with rows that share a
``(dependency graph, cost model)`` pair simulated once. Asynchronous
schemes keep their steady-state measurement, fanned out over a bounded
worker pool. Artifacts are pinned for the duration of the call, so a
batch whose distinct-cell working set exceeds the LRU bound never
rebuilds a schedule mid-call. Per-request results are bit-identical to
calling :func:`plan_configurations` once per request.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.common.errors import ConfigurationError, ScheduleError
from repro.bench.harness import (
    ExperimentConfig,
    config_artifacts,
    format_table,
    run_configuration,
)
from repro.schedules.passes.pipeline import (
    normalize_pipeline,
    pipeline_from_flags,
    split_pipeline,
)
from repro.bench.machines import MachineSpec
from repro.bench.workloads import TransformerSpec
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model
from repro.schedules.cache import ScheduleArtifacts, ScheduleCache
from repro.schedules.registry import available_schemes, scheme_traits
from repro.sim.kernel import simulate_batch_many
from repro.sim.memory import MemoryReport, analyze_memory

#: Largest micro-batch size the enumeration considers (power-of-two scan).
DEFAULT_MAX_MICRO_BATCH = 512

#: Default bound on the worker pool :func:`plan_many` uses for the
#: asynchronous schemes' steady-state measurements.
DEFAULT_PLAN_WORKERS = min(8, os.cpu_count() or 1)


@dataclass(frozen=True)
class PlanEntry:
    """One feasible configuration with its simulated performance."""

    scheme: str
    width: int
    depth: int
    micro_batch: int
    num_micro_batches: int
    recompute: bool
    iteration_time: float
    throughput: float  # sequences / second
    bubble_ratio: float
    peak_memory_bytes: float
    #: Canonical pipeline the entry was ranked under (the winning
    #: memory-fit attempt, axes included).
    pipeline: tuple[str, ...] = ()
    #: Host-tier peak of offloaded stashes (0 without the offload pass).
    host_peak_memory_bytes: float = 0.0

    @property
    def offload(self) -> bool:
        return split_pipeline(self.pipeline).offload

    def label(self) -> str:
        r = ", R" if self.recompute else ""
        o = ", O" if self.offload else ""
        return (
            f"{self.scheme}(W={self.width}, D={self.depth}, "
            f"B={self.micro_batch}{r}{o})"
        )


def candidate_grid(
    num_workers: int,
    workload: TransformerSpec,
    mini_batch: int,
    *,
    schemes: Sequence[str],
    min_depth: int = 2,
    max_micro_batch: int = DEFAULT_MAX_MICRO_BATCH,
) -> Iterator[tuple[str, int, int, int]]:
    """Yield structurally valid ``(scheme, width, depth, micro_batch)``.

    A depth is valid for a scheme when it divides ``P``, satisfies the
    scheme's parity trait, and the workload's layers split evenly into the
    schedule's stage count (``2D`` for the V-shaped family). Micro-batch
    sizes scan powers of two with ``W * B`` dividing the mini-batch.
    """
    for scheme in schemes:
        traits = scheme_traits(scheme)
        for depth in range(min_depth, num_workers + 1):
            if num_workers % depth:
                continue
            if traits.requires_even_depth and depth % 2:
                continue
            if workload.num_layers % traits.stage_count(depth):
                continue
            width = num_workers // depth
            b = 1
            while b <= max_micro_batch and width * b <= mini_batch:
                if mini_batch % (width * b) == 0:
                    yield scheme, width, depth, b
                b *= 2


@dataclass(frozen=True)
class PlanRequest:
    """One planner query, as submitted to :func:`plan_many`.

    Field-for-field the keyword surface of :func:`plan_configurations`;
    hashable, so identical queries in one batch (the common case under
    service traffic) collapse to a single computation.
    """

    machine: MachineSpec
    workload: TransformerSpec
    num_workers: int
    mini_batch: int
    memory_budget_bytes: float | None = None
    schemes: tuple[str, ...] | None = None
    min_depth: int = 2
    max_micro_batch: int = DEFAULT_MAX_MICRO_BATCH
    lowered: bool = True
    fused: bool = False
    recompute: bool | None = None
    top_k: int | None = None
    #: THE way to pin the transform pipeline: an ordered pass spec
    #: (comma string or sequence, validated against the registry). When
    #: set, the recompute/offload axes are disabled and every candidate
    #: ranks under exactly this composition; ``None`` plans over the
    #: deprecated ``lowered``/``fused`` base plus the axes.
    pipeline: tuple[str, ...] | None = None
    #: The offload planning axis: ``None`` (default) tries each candidate
    #: without offload, then with it; ``False`` never; ``True`` always.
    offload: bool | None = None
    #: Host-tier (CPU RAM) byte budget for offloaded stashes; candidates
    #: prune against ``min(machine.host_memory_bytes, budget)``.
    host_memory_budget_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.schemes is not None and not isinstance(self.schemes, tuple):
            object.__setattr__(self, "schemes", tuple(self.schemes))
        if self.fused and not self.lowered:
            raise ConfigurationError(
                "fused=True requires lowered=True (fuse_comm batches the "
                "explicit SEND/RECV pairs the lowering pass creates)"
            )
        if self.pipeline is not None:
            if self.fused or not self.lowered:
                raise ConfigurationError(
                    "pass transforms either as pipeline= or as the "
                    "deprecated lowered/fused booleans, not both"
                )
            object.__setattr__(
                self, "pipeline", normalize_pipeline(self.pipeline)
            )

    def base_pipeline(self) -> tuple[str, ...]:
        """The canonical base pipeline (sans the recompute/offload axes)."""
        if self.pipeline is not None:
            return self.pipeline
        return pipeline_from_flags(lowered=self.lowered, fused=self.fused)

    def attempt_pipelines(self) -> tuple[tuple[str, ...], ...]:
        """Pipelines to try per candidate, in order, until one fits.

        An explicit ``pipeline`` pins a single attempt. Otherwise the
        recompute and offload axes span plain → offload → recompute →
        offload+recompute (cheapest relief first: offload keeps backward
        at its un-recomputed cost), each axis restricted to its pinned
        value when not ``None``.
        """
        if self.pipeline is not None:
            return (self.pipeline,)
        parts = split_pipeline(self.base_pipeline())
        r_axis = (False, True) if self.recompute is None else (self.recompute,)
        o_axis = (False, True) if self.offload is None else (self.offload,)
        attempts = []
        for r in (False, True):
            if r not in r_axis:
                continue
            for o in (False, True):
                if o not in o_axis:
                    continue
                base = parts.base + (("offload",) if o else ())
                attempts.append(replace(parts, base=base, recompute=r).pipeline())
        return tuple(attempts)


@dataclass(frozen=True)
class PlanOutcome:
    """Per-request result of :func:`plan_many`: a ranking or an error."""

    request: PlanRequest
    entries: tuple[PlanEntry, ...] = ()
    error: ConfigurationError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_or_entries(self) -> list[PlanEntry]:
        """The ranked entries, re-raising the per-request error if any."""
        if self.error is not None:
            raise self.error
        return list(self.entries)


class _PlanContext:
    """Call-scoped memoization shared by the requests of one batch.

    Pins every touched :class:`ScheduleArtifacts` for the duration of the
    call (so an LRU working set larger than the process cache never
    rebuilds mid-batch) and memoizes memory reports on the schedule-cache
    key plus the calibration inputs.
    """

    def __init__(self) -> None:
        self.artifacts: dict[tuple, ScheduleArtifacts] = {}
        self.reports: dict[tuple, MemoryReport] = {}

    @staticmethod
    def _akey(cfg: ExperimentConfig, pipeline: tuple[str, ...]) -> tuple | None:
        return ScheduleCache.key(
            cfg.scheme,
            cfg.depth,
            cfg.num_micro_batches(),
            {**split_pipeline(pipeline).build_options(), **dict(cfg.options)},
        )

    def artifacts_for(
        self, cfg: ExperimentConfig, pipeline: tuple[str, ...]
    ) -> ScheduleArtifacts:
        key = self._akey(cfg, pipeline)
        if key is not None:
            hit = self.artifacts.get(key)
            if hit is not None:
                return hit
        arts = config_artifacts(cfg, pipeline)
        if key is not None:
            self.artifacts[key] = arts
        return arts

    def memory_report(
        self, cfg: ExperimentConfig, pipeline: tuple[str, ...]
    ) -> tuple[ScheduleArtifacts, MemoryReport]:
        """Memoized :func:`repro.bench.harness.memory_report` (same math)."""
        arts = self.artifacts_for(cfg, pipeline)
        akey = self._akey(cfg, pipeline)
        rkey = (
            (akey, cfg.machine, cfg.workload, cfg.micro_batch)
            if akey is not None
            else None
        )
        if rkey is not None:
            hit = self.reports.get(rkey)
            if hit is not None:
                return arts, hit
        schedule = arts.schedule
        memory_model = calibrate_memory_model(
            cfg.machine,
            cfg.workload,
            depth=schedule.num_stages,
            micro_batch=cfg.micro_batch,
        )
        report = analyze_memory(schedule, memory_model)
        if rkey is not None:
            self.reports[rkey] = report
        return arts, report


@dataclass
class _Survivor:
    """One memory-feasible candidate, with its pinned artifacts."""

    cfg: ExperimentConfig
    report: MemoryReport
    arts: ScheduleArtifacts


@dataclass
class _Pruned:
    """A validated, pruned request awaiting ranking."""

    request: PlanRequest
    survivors: list[_Survivor] = field(default_factory=list)
    closest: tuple[float, str] | None = None  # (peak overshoot, label)


def plan_configurations(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    memory_budget_bytes: float | None = None,
    schemes: Sequence[str] | None = None,
    min_depth: int = 2,
    max_micro_batch: int = DEFAULT_MAX_MICRO_BATCH,
    lowered: bool = True,
    fused: bool = False,
    recompute: bool | None = None,
    top_k: int | None = None,
    pipeline: Sequence[str] | str | None = None,
    offload: bool | None = None,
    host_memory_budget_bytes: float | None = None,
) -> list[PlanEntry]:
    """Rank every feasible ``(scheme, W, D, B)`` under a memory budget.

    Parameters
    ----------
    memory_budget_bytes:
        Per-device peak-memory cap; candidates are pruned against
        ``min(machine.usable_memory_bytes, budget)``. ``None`` uses the
        device capacity alone.
    schemes:
        Scheme names to consider (default: every registered scheme).
    lowered:
        Rank with explicit SEND/RECV communication, so transfers contend
        for link bandwidth (the event-queue engine's contention model).
    fused:
        Rank with batched communication (fuse_comm pass on top of
        lowering) — fewer events per simulation, identical timing at zero
        link occupancy. Requires ``lowered=True``.
    recompute:
        The recompute-pass planning axis. ``None`` (default): try each
        candidate without recomputation first, then with it — exactly the
        paper's retry-with-``R`` procedure. ``False``: never recompute
        (the pass-less planner; tight budgets then raise instead of
        selecting an ``R`` configuration). ``True``: always recompute.
    top_k:
        Truncate the ranked table; ``None`` returns every survivor.
    pipeline:
        Explicit transform pipeline (ordered pass names, validated
        against the registry). Pins every candidate to exactly this
        composition and disables the recompute/offload axes.
    offload:
        The offload-pass planning axis, same shape as ``recompute``:
        ``None`` tries plain → offload → recompute → offload+recompute
        per candidate; ``False``/``True`` pin it.
    host_memory_budget_bytes:
        Host-tier cap for offloaded stashes; candidates prune against
        ``min(machine.host_memory_bytes, budget)``.

    Raises
    ------
    ConfigurationError
        When the search space is empty, with a message naming the first
        failed step: an empty/unknown scheme list, no valid ``(W, D)``
        factorization, or no micro-batch size fitting the budget.
    """
    request = PlanRequest(
        machine=machine,
        workload=workload,
        num_workers=num_workers,
        mini_batch=mini_batch,
        memory_budget_bytes=memory_budget_bytes,
        schemes=tuple(schemes) if schemes is not None else None,
        min_depth=min_depth,
        max_micro_batch=max_micro_batch,
        lowered=lowered,
        fused=fused,
        recompute=recompute,
        top_k=top_k,
        pipeline=normalize_pipeline(pipeline) if pipeline is not None else None,
        offload=offload,
        host_memory_budget_bytes=host_memory_budget_bytes,
    )
    return plan_many([request], max_workers=1)[0].raise_or_entries()


def plan_many(
    requests: Iterable[PlanRequest],
    *,
    max_workers: int = DEFAULT_PLAN_WORKERS,
    backend: str = "thread",
    pool: "object | None" = None,
) -> list[PlanOutcome]:
    """Plan a batch of heterogeneous requests as one unit of work.

    Returns one :class:`PlanOutcome` per request, in order. Per-request
    failures (empty search space, nothing fits the budget) are captured
    in the outcome instead of aborting the batch; results are exactly
    what :func:`plan_configurations` returns for the same request.

    Shared work is paid once: identical requests collapse, memory
    reports memoize across requests, every synchronous survivor of every
    request ranks through a single
    :func:`~repro.sim.kernel.simulate_batch_many` call (rows sharing a
    dependency graph and cost model are simulated once), and the
    asynchronous schemes' steady-state measurements fan out over the
    process pool (sequential when there is at most one measurement or
    ``max_workers == 1``).

    ``backend="process"`` escapes the GIL entirely: distinct requests
    are sharded round-robin across a
    :class:`~repro.perf.workers.PlannerWorkerPool` (``pool``, or the
    shared default pool sized ``max_workers``), each worker planning its
    shard with its own warm caches. Per-request outcomes are independent
    of their batchmates — cross-request sharing is purely a cost
    optimization — so results are bit-identical to the thread backend,
    including exact error messages. Inside a pool worker the process
    backend degrades to the in-process path: workers never nest pools.
    """
    requests = list(requests)
    if backend not in ("thread", "process"):
        raise ConfigurationError(
            f"unknown plan_many backend {backend!r}; use 'thread' or 'process'"
        )
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if backend == "process":
        from repro.perf import workers as _workers

        if not _workers.in_worker():
            if pool is None:
                pool = _workers.get_default_pool(max_workers)
            return _plan_many_pooled(requests, pool)
    ctx = _PlanContext()

    unique: dict[PlanRequest, _Pruned | ConfigurationError] = {}
    for request in requests:
        if request in unique:
            continue
        try:
            unique[request] = _prune_request(request, ctx)
        except ConfigurationError as err:
            unique[request] = err

    pruned = [p for p in unique.values() if isinstance(p, _Pruned)]
    ranked = _rank_all(pruned, max_workers=max_workers, pool=pool)

    outcomes: dict[PlanRequest, PlanOutcome] = {}
    for request, state in unique.items():
        if isinstance(state, ConfigurationError):
            outcomes[request] = PlanOutcome(request=request, error=state)
            continue
        try:
            entries = _finalize(state, ranked[id(state)])
        except ConfigurationError as err:
            outcomes[request] = PlanOutcome(request=request, error=err)
            continue
        outcomes[request] = PlanOutcome(request=request, entries=tuple(entries))
    return [outcomes[request] for request in requests]


def _plan_many_pooled(
    requests: list[PlanRequest], pool
) -> list[PlanOutcome]:
    """Shard distinct requests round-robin across the worker pool.

    Identical requests collapse before sharding (exactly like the
    in-process dedup), each worker plans one shard with its own warm
    caches, and the per-request outcomes reassemble in submission order.
    Bit-identical to the thread backend because per-request results
    never depend on batchmates.
    """
    if not requests:
        return []
    distinct = list(dict.fromkeys(requests))
    shard_count = max(1, min(pool.workers, len(distinct)))
    shards = [distinct[k::shard_count] for k in range(shard_count)]
    futures = [pool.submit_plan(shard) for shard in shards]
    by_request: dict[PlanRequest, PlanOutcome] = {}
    for shard, future in zip(shards, futures):
        shard_outcomes = future.result()
        for request, outcome in zip(shard, shard_outcomes):
            by_request[request] = outcome
    return [by_request[request] for request in requests]


def _parameterized_options(
    request: PlanRequest, scheme: str, width: int, depth: int, micro_batch: int
) -> dict[str, object]:
    """Builder options for a cost-parameterized scheme at one grid point.

    The hand-written schemes are built from ``(D, N)`` alone; a
    cost-parameterized builder like ``synthesize`` additionally wants the
    configuration's cost model and memory budget, so the planner derives
    them from the same calibration the ranking uses: forward-relative
    ``f/b/w`` ratios plus the boundary-message latency in forward units,
    and — when the request carries a byte budget — the activation headroom
    left after weights, converted to full-stage stash units. The options
    flow into the schedule-cache key through the scheme's registered
    ``builder_fingerprint``, so two grid points with different calibrated
    costs never alias one cached schedule.
    """
    model = calibrate_cost_model(
        request.machine,
        request.workload,
        depth=scheme_traits(scheme).stage_count(depth),
        micro_batch=micro_batch,
        data_parallel_width=width,
    )
    options: dict[str, object] = {
        "f_time": 1.0,
        "b_time": model.input_grad_ratio(),
        "w_time": model.weight_grad_ratio(),
        "comm_time": model.p2p_time(0, 1, 1.0) / model.forward_time,
    }
    budget = request.memory_budget_bytes
    if budget is not None:
        capacity = min(request.machine.usable_memory_bytes, budget)
        memory = calibrate_memory_model(
            request.machine, request.workload, depth=depth, micro_batch=micro_batch
        )
        act = memory.activation_bytes
        weights = memory.weight_bytes
        ma = sum(act) / depth if isinstance(act, tuple) else float(act)
        per_worker_weights = (
            sum(weights) / depth if isinstance(weights, tuple) else float(weights)
        )
        if ma > 0:
            units = (capacity - per_worker_weights) / ma
            # The builder rejects non-positive budgets; the planner's
            # except-and-skip then drops the grid point, mirroring how an
            # oversized hand-written candidate is pruned.
            options["memory_budget_units"] = round(units, 6)
    return options


def _prune_request(request: PlanRequest, ctx: _PlanContext) -> _Pruned:
    """Validate one request and prune its grid by the memory model."""
    if request.num_workers < 2:
        raise ConfigurationError(
            f"need at least two workers for a pipeline, got P={request.num_workers}"
        )
    if request.mini_batch < 1:
        raise ConfigurationError(
            f"mini-batch must be positive, got {request.mini_batch}"
        )
    schemes = request.schemes
    if schemes is None:
        schemes = tuple(available_schemes())
    if not schemes:
        raise ConfigurationError(
            "empty scheme list: pass at least one scheme to plan over, or "
            f"None for all of {list(available_schemes())}"
        )
    for scheme in schemes:
        scheme_traits(scheme)  # raises with the available list on a typo

    grid = list(
        candidate_grid(
            request.num_workers,
            request.workload,
            request.mini_batch,
            schemes=schemes,
            min_depth=request.min_depth,
            max_micro_batch=request.max_micro_batch,
        )
    )
    if not grid:
        raise ConfigurationError(
            f"no valid (W, D) factorization of P={request.num_workers} for "
            f"{request.workload.name} ({request.workload.num_layers} layers) "
            f"with schemes {list(schemes)}: every depth in "
            f"[{request.min_depth}, {request.num_workers}] fails a "
            f"divisibility or parity constraint — try a different worker "
            f"count or min_depth"
        )

    attempts = request.attempt_pipelines()

    pruned = _Pruned(request=request)
    for scheme, width, depth, micro_batch in grid:
        options: dict[str, object] = {}
        if scheme_traits(scheme).cost_parameterized:
            options = _parameterized_options(
                request, scheme, width, depth, micro_batch
            )
        # Transform booleans stay at their defaults here: the per-attempt
        # pipeline is passed explicitly, and the winning one is pinned on
        # the survivor's config below.
        cfg = ExperimentConfig(
            scheme=scheme,
            machine=request.machine,
            workload=request.workload,
            width=width,
            depth=depth,
            micro_batch=micro_batch,
            mini_batch=request.mini_batch,
            memory_budget_bytes=request.memory_budget_bytes,
            host_memory_budget_bytes=request.host_memory_budget_bytes,
            options=options,
        )
        # Prune before ranking: the memory verdict needs no simulation, so
        # OOM candidates never pay the simulation cost.
        try:
            fits: tuple[tuple[str, ...], ScheduleArtifacts] | None = None
            for attempt in attempts:
                arts, report = ctx.memory_report(cfg, attempt)
                if report.fits(cfg.capacity_bytes, cfg.host_capacity_bytes):
                    fits = (attempt, arts)
                    break
            if fits is None:
                parts = split_pipeline(attempt)
                r = ", R" if parts.recompute else ""
                o = ", O" if parts.offload else ""
                overshoot = max(
                    report.peak_bytes - cfg.capacity_bytes,
                    report.host_peak_bytes - cfg.host_capacity_bytes,
                )
                if pruned.closest is None or overshoot < pruned.closest[0]:
                    pruned.closest = (
                        overshoot,
                        f"{scheme}(W={width}, D={depth}, B={micro_batch}{r}{o})",
                    )
                continue
        except (ConfigurationError, ScheduleError):
            continue  # structurally invalid corner (e.g. N < 1)
        pruned.survivors.append(
            _Survivor(
                cfg=replace(cfg, pipeline=fits[0]),
                report=report,
                arts=fits[1],
            )
        )
    return pruned


def _finalize(pruned: _Pruned, entries: list[PlanEntry]) -> list[PlanEntry]:
    """Sort/truncate one request's entries, raising if nothing survived."""
    request = pruned.request
    if not entries:
        budget_gib = (
            min(request.machine.usable_memory_bytes, request.memory_budget_bytes)
            if request.memory_budget_bytes is not None
            else request.machine.usable_memory_bytes
        ) / 2**30
        detail = (
            f"; closest candidate {pruned.closest[1]} overshoots by "
            f"{pruned.closest[0] / 2**30:.2f} GiB"
            if pruned.closest
            else ""
        )
        raise ConfigurationError(
            f"no micro-batch size fits the {budget_gib:.2f} GiB memory "
            f"budget for P={request.num_workers}, B̂={request.mini_batch} on "
            f"{request.machine.name}{detail} — raise the budget, add "
            f"workers, or allow deeper pipelines"
        )
    entries.sort(key=lambda e: (-e.throughput, e.iteration_time, e.label()))
    if request.top_k is not None:
        entries = entries[: request.top_k]
    return entries


def _steady_cfg_key(cfg: ExperimentConfig) -> tuple:
    """Dedup identity of one asynchronous steady-state measurement."""
    try:
        options = tuple(sorted(dict(cfg.options).items()))
        hash(options)
    except TypeError:
        options = (id(cfg),)  # unhashable options: never deduplicated
    return (
        cfg.scheme,
        cfg.machine,
        cfg.workload,
        cfg.width,
        cfg.depth,
        cfg.micro_batch,
        cfg.mini_batch,
        cfg.recompute,
        cfg.lowered,
        cfg.fused,
        cfg.pipeline,
        cfg.memory_budget_bytes,
        cfg.host_memory_budget_bytes,
        options,
    )


def _rank_all(
    pruneds: Sequence[_Pruned], *, max_workers: int, pool=None
) -> dict[int, list[PlanEntry]]:
    """Simulate every pruned request's survivors, shared across requests.

    Synchronous schemes rank through **one**
    :func:`repro.sim.kernel.simulate_batch_many` call covering all
    requests: every distinct ``(dependency graph, cost model)`` pair is a
    row, rows carry heterogeneous shapes — ``(scheme, D, N, recompute,
    pipeline)`` as well as ``(W, B)``/topology — and rows sharing a
    cached dependency graph vectorize together inside the kernel. The
    default lowered ranking models link contention; the kernel computes
    per-channel FIFO serialization itself, so contended rows stay on the
    array path and nothing falls back to per-model event simulation.
    Asynchronous schemes keep the steady-state measurement of
    :func:`~repro.bench.harness.run_configuration` (their throughput is a
    marginal rate between two window sizes, not one iteration time),
    deduplicated and fanned out over the **process pool** (``pool`` or
    the shared default sized ``max_workers``): the measurements are
    CPU-bound, so the thread pool this path used to run on bought no
    speedup under the GIL. A single measurement — or ``max_workers ==
    1``, or a pool worker evaluating its shard — stays sequential.

    Returns ``id(pruned) -> unsorted entries`` for :func:`_finalize`.
    """
    # ---- collect distinct work items across every request ---------------
    sync_rows: dict[tuple, tuple] = {}  # row key -> (schedule, model, graph)
    async_cfgs: dict[tuple, ExperimentConfig] = {}
    row_of_survivor: dict[int, tuple] = {}
    for pruned in pruneds:
        for survivor in pruned.survivors:
            cfg, arts = survivor.cfg, survivor.arts
            if not scheme_traits(cfg.scheme).synchronous:
                row_of_survivor[id(survivor)] = _steady_cfg_key(cfg)
                async_cfgs.setdefault(row_of_survivor[id(survivor)], cfg)
                continue
            parts = split_pipeline(cfg.pipeline)
            schedule = arts.schedule_for(parts.lowered, parts.fused)
            graph = arts.graph_for(parts.lowered, parts.fused)
            model = calibrate_cost_model(
                cfg.machine,
                cfg.workload,
                depth=schedule.num_stages,
                micro_batch=cfg.micro_batch,
                data_parallel_width=cfg.width,
            )
            row_key = (id(graph), model)
            sync_rows.setdefault(row_key, (schedule, model, graph))
            row_of_survivor[id(survivor)] = row_key

    # ---- one batched kernel call for every synchronous row --------------
    sync_results: dict[tuple, tuple[float, float, float]] = {}
    if sync_rows:
        keys = list(sync_rows)
        batch = simulate_batch_many(
            [(s, m) for s, m, _ in sync_rows.values()],
            graphs=[g for _, _, g in sync_rows.values()],
        )
        for k, key in enumerate(keys):
            sync_results[key] = (
                float(batch.iteration_time[k]),
                batch.bubble_ratio(k),
                float(batch.schedules[k].num_micro_batches),
            )

    # ---- process-pool fan-out for the async steady-state paths ----------
    async_results: dict[tuple, "object | None"] = {}

    def _steady(item: tuple[tuple, ExperimentConfig]) -> tuple[tuple, object | None]:
        key, cfg = item
        try:
            return key, run_configuration(cfg)
        except (ConfigurationError, ScheduleError):
            return key, None

    items = list(async_cfgs.items())
    if len(items) > 1 and max_workers > 1:
        from repro.perf import workers as _workers

        if _workers.in_worker():
            async_results = dict(map(_steady, items))
        else:
            steady_pool = (
                pool if pool is not None else _workers.get_default_pool(max_workers)
            )
            futures = [
                (key, steady_pool.submit_steady(cfg)) for key, cfg in items
            ]
            async_results = {key: future.result() for key, future in futures}
    else:
        async_results = dict(map(_steady, items))

    # ---- assemble per-request entries from the shared results -----------
    out: dict[int, list[PlanEntry]] = {}
    for pruned in pruneds:
        entries: list[PlanEntry] = []
        for survivor in pruned.survivors:
            cfg, report = survivor.cfg, survivor.report
            key = row_of_survivor[id(survivor)]
            if not scheme_traits(cfg.scheme).synchronous:
                result = async_results[key]
                if result is None:
                    continue
                entries.append(
                    PlanEntry(
                        scheme=cfg.scheme,
                        width=cfg.width,
                        depth=cfg.depth,
                        micro_batch=cfg.micro_batch,
                        num_micro_batches=result.num_micro_batches,
                        recompute=result.recompute,
                        iteration_time=result.iteration_time,
                        throughput=result.throughput,
                        bubble_ratio=result.bubble_ratio,
                        peak_memory_bytes=result.peak_memory_bytes,
                        pipeline=result.pipeline,
                        host_peak_memory_bytes=result.host_peak_memory_bytes,
                    )
                )
                continue
            iteration, bubble, sched_n = sync_results[key]
            samples = sched_n * cfg.micro_batch * cfg.width
            pipeline = cfg.pipeline or ()
            entries.append(
                PlanEntry(
                    scheme=cfg.scheme,
                    width=cfg.width,
                    depth=cfg.depth,
                    micro_batch=cfg.micro_batch,
                    num_micro_batches=cfg.num_micro_batches(),
                    recompute=split_pipeline(pipeline).recompute,
                    iteration_time=iteration,
                    throughput=samples / iteration
                    if iteration > 0
                    else float("inf"),
                    bubble_ratio=bubble,
                    peak_memory_bytes=report.peak_bytes,
                    pipeline=pipeline,
                    host_peak_memory_bytes=report.host_peak_bytes,
                )
            )
        out[id(pruned)] = entries
    return out


# --------------------------------------------------------------------------
# The paper's Chimera-specific §3.4 procedure (Figure 13), formerly
# repro.perf.selector — kept verbatim because Figure 13 reproduces the
# *paper's* greedy strategy, not the scheme-agnostic search above.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigCandidate:
    """One (W, D, B) candidate with its model-predicted iteration time."""

    width: int
    depth: int
    micro_batch: int
    num_micro_batches: int
    recompute: bool
    predicted_time: float
    predicted_throughput: float

    def label(self) -> str:
        r = ", R" if self.recompute else ""
        return f"W={self.width}, D={self.depth}, B={self.micro_batch}{r}"


def greedy_micro_batch(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    width: int,
    depth: int,
    mini_batch: int,
    max_micro_batch: int = 512,
) -> tuple[int, bool] | None:
    """Largest power-of-two ``B`` that fits memory, preferring no recompute.

    The greedy half of the paper's §3.4 procedure: Chimera's bubbles are
    few enough that the largest fitting micro-batch wins outright.
    Returns ``(B, recompute)`` or ``None`` if nothing fits (even ``B = 1``
    with recomputation).
    """
    from repro.perf.calibration import calibrate_memory_model
    from repro.schedules.registry import build_schedule
    from repro.sim.memory import analyze_memory

    best: tuple[int, bool] | None = None
    b = 1
    while b <= max_micro_batch and width * b <= mini_batch:
        if mini_batch % (width * b) == 0:
            n = mini_batch // (width * b)
            for recompute in (False, True):
                schedule = build_schedule(
                    "chimera", depth, n, recompute=recompute
                )
                memory = calibrate_memory_model(
                    machine, workload, depth=depth, micro_batch=b
                )
                report = analyze_memory(schedule, memory)
                if report.fits(machine.usable_memory_bytes):
                    if best is None or b > best[0] or (b == best[0] and not recompute):
                        best = (b, recompute)
                    break
        b *= 2
    return best


def select_configuration(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    min_depth: int = 2,
) -> list[ConfigCandidate]:
    """Rank all valid Chimera (W, D) factorizations by the §3.4 model.

    Valid depths are even (bidirectional merge), at least ``min_depth``,
    divide both ``P`` and the workload's layer count, and admit at least one
    micro-batch per pipeline group. For the scheme-agnostic search use
    :func:`plan_configurations`.
    """
    from repro.perf.model import predict_iteration_time

    if num_workers < 2:
        raise ConfigurationError("need at least two workers for a pipeline")
    candidates: list[ConfigCandidate] = []
    for depth in range(min_depth, num_workers + 1, 2):
        if num_workers % depth or workload.num_layers % depth:
            continue
        width = num_workers // depth
        picked = greedy_micro_batch(
            machine, workload, width=width, depth=depth, mini_batch=mini_batch
        )
        if picked is None:
            continue
        micro_batch, recompute = picked
        n = mini_batch // (width * micro_batch)
        cost_model = calibrate_cost_model(
            machine,
            workload,
            depth=depth,
            micro_batch=micro_batch,
            data_parallel_width=width,
        )
        prediction = predict_iteration_time(
            depth, n, cost_model, recompute=recompute
        )
        candidates.append(
            ConfigCandidate(
                width=width,
                depth=depth,
                micro_batch=micro_batch,
                num_micro_batches=n,
                recompute=recompute,
                predicted_time=prediction.iteration_time,
                predicted_throughput=mini_batch / prediction.iteration_time,
            )
        )
    if not candidates:
        raise ConfigurationError(
            f"no feasible (W, D, B) configuration for P={num_workers}, "
            f"B̂={mini_batch} on {machine.name}"
        )
    candidates.sort(key=lambda c: c.predicted_time)
    return candidates


def format_plan(entries: Sequence[PlanEntry]) -> str:
    """Render a ranked plan as the standard plain-text table."""
    body = [
        [
            i,
            e.label(),
            f"N={e.num_micro_batches}",
            f"{e.throughput:.1f}",
            f"{e.bubble_ratio * 100:.1f}%",
            f"{e.peak_memory_bytes / 2**30:.2f}",
        ]
        for i, e in enumerate(entries, 1)
    ]
    return format_table(
        body,
        headers=["rank", "configuration", "micro-batches", "seq/s", "bubble", "peak GiB"],
    )
