"""Configuration planning: scheme-agnostic search plus the §3.4 procedure.

The paper's §3.4 selection procedure (:func:`select_configuration`, kept
here verbatim for the Figure 13 reproduction; its old home
``repro.perf.selector`` is a deprecated shim) is hard-wired to the
bidirectional schedule: Chimera has so few bubbles that the largest
micro-batch wins and only ``(W, D)`` needs ranking. With ten registered
schemes — including the memory-controllable zero-bubble family, whose
whole point is trading ramp time for peak activation memory — selection
becomes a genuine search problem over ``(scheme, W, D, B)``:

1. **Enumerate.** For every requested scheme, every depth ``D`` dividing
   ``P`` (respecting the scheme's structural traits: even depth for the
   bidirectional placements, ``2D`` model chunks for the V-shaped family)
   and every power-of-two micro-batch size ``B`` dividing the per-group
   share of the mini-batch.
2. **Prune.** Run :func:`repro.sim.memory.analyze_memory` on the real
   schedule and drop candidates whose peak exceeds
   ``min(machine.usable_memory_bytes, memory_budget_bytes)`` — retrying
   once with activation recomputation, exactly like the experiment
   harness.
3. **Rank.** Simulate every survivor in one batched array-kernel call
   (:func:`repro.sim.kernel.simulate_batch_many`) — lowered by default,
   so p2p transfers contend for link bandwidth, with the kernel's
   per-channel FIFO serialization matching the event engine to 1e-9 —
   and sort by simulated end-to-end throughput.

Schedule-transform passes (:mod:`repro.schedules.passes`) are planning
*axes*: the pruning step enumerates recomputation on/off through the
recompute pass (``recompute=None`` tries plain first, then recomputed —
so tight budgets select configurations the pass-less planner must reject
as OOM; ``recompute=False`` reproduces that pass-less planner), and
``fused=True`` ranks with batched communication (the fuse_comm pass) —
identical timing at zero link occupancy with roughly a third fewer ops
per event simulation, which is the fast mode for big lowered grids.

Every pruning decision and the final ranking go through the same code
paths as the benchmark harness (:mod:`repro.bench.harness`), so a plan
entry is exactly the configuration's ``run_configuration`` outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.common.errors import ConfigurationError, ScheduleError
from repro.bench.harness import (
    ExperimentConfig,
    config_artifacts,
    format_table,
    memory_report,
    run_configuration,
)
from repro.bench.machines import MachineSpec
from repro.bench.workloads import TransformerSpec
from repro.perf.calibration import calibrate_cost_model
from repro.schedules.registry import available_schemes, scheme_traits
from repro.sim.kernel import simulate_batch_many
from repro.sim.memory import MemoryReport

#: Largest micro-batch size the enumeration considers (power-of-two scan).
DEFAULT_MAX_MICRO_BATCH = 512


@dataclass(frozen=True)
class PlanEntry:
    """One feasible configuration with its simulated performance."""

    scheme: str
    width: int
    depth: int
    micro_batch: int
    num_micro_batches: int
    recompute: bool
    iteration_time: float
    throughput: float  # sequences / second
    bubble_ratio: float
    peak_memory_bytes: float

    def label(self) -> str:
        r = ", R" if self.recompute else ""
        return (
            f"{self.scheme}(W={self.width}, D={self.depth}, "
            f"B={self.micro_batch}{r})"
        )


def candidate_grid(
    num_workers: int,
    workload: TransformerSpec,
    mini_batch: int,
    *,
    schemes: Sequence[str],
    min_depth: int = 2,
    max_micro_batch: int = DEFAULT_MAX_MICRO_BATCH,
) -> Iterator[tuple[str, int, int, int]]:
    """Yield structurally valid ``(scheme, width, depth, micro_batch)``.

    A depth is valid for a scheme when it divides ``P``, satisfies the
    scheme's parity trait, and the workload's layers split evenly into the
    schedule's stage count (``2D`` for the V-shaped family). Micro-batch
    sizes scan powers of two with ``W * B`` dividing the mini-batch.
    """
    for scheme in schemes:
        traits = scheme_traits(scheme)
        for depth in range(min_depth, num_workers + 1):
            if num_workers % depth:
                continue
            if traits.requires_even_depth and depth % 2:
                continue
            if workload.num_layers % traits.stage_count(depth):
                continue
            width = num_workers // depth
            b = 1
            while b <= max_micro_batch and width * b <= mini_batch:
                if mini_batch % (width * b) == 0:
                    yield scheme, width, depth, b
                b *= 2


def plan_configurations(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    memory_budget_bytes: float | None = None,
    schemes: Sequence[str] | None = None,
    min_depth: int = 2,
    max_micro_batch: int = DEFAULT_MAX_MICRO_BATCH,
    lowered: bool = True,
    fused: bool = False,
    recompute: bool | None = None,
    top_k: int | None = None,
) -> list[PlanEntry]:
    """Rank every feasible ``(scheme, W, D, B)`` under a memory budget.

    Parameters
    ----------
    memory_budget_bytes:
        Per-device peak-memory cap; candidates are pruned against
        ``min(machine.usable_memory_bytes, budget)``. ``None`` uses the
        device capacity alone.
    schemes:
        Scheme names to consider (default: every registered scheme).
    lowered:
        Rank with explicit SEND/RECV communication, so transfers contend
        for link bandwidth (the event-queue engine's contention model).
    fused:
        Rank with batched communication (fuse_comm pass on top of
        lowering) — fewer events per simulation, identical timing at zero
        link occupancy. Requires ``lowered=True``.
    recompute:
        The recompute-pass planning axis. ``None`` (default): try each
        candidate without recomputation first, then with it — exactly the
        paper's retry-with-``R`` procedure. ``False``: never recompute
        (the pass-less planner; tight budgets then raise instead of
        selecting an ``R`` configuration). ``True``: always recompute.
    top_k:
        Truncate the ranked table; ``None`` returns every survivor.

    Raises
    ------
    ConfigurationError
        When the search space is empty, with a message naming the first
        failed step: an empty/unknown scheme list, no valid ``(W, D)``
        factorization, or no micro-batch size fitting the budget.
    """
    if num_workers < 2:
        raise ConfigurationError(
            f"need at least two workers for a pipeline, got P={num_workers}"
        )
    if mini_batch < 1:
        raise ConfigurationError(f"mini-batch must be positive, got {mini_batch}")
    if schemes is None:
        schemes = available_schemes()
    schemes = tuple(schemes)
    if not schemes:
        raise ConfigurationError(
            "empty scheme list: pass at least one scheme to plan over, or "
            f"None for all of {list(available_schemes())}"
        )
    for scheme in schemes:
        scheme_traits(scheme)  # raises with the available list on a typo

    grid = list(
        candidate_grid(
            num_workers,
            workload,
            mini_batch,
            schemes=schemes,
            min_depth=min_depth,
            max_micro_batch=max_micro_batch,
        )
    )
    if not grid:
        raise ConfigurationError(
            f"no valid (W, D) factorization of P={num_workers} for "
            f"{workload.name} ({workload.num_layers} layers) with schemes "
            f"{list(schemes)}: every depth in "
            f"[{min_depth}, {num_workers}] fails a divisibility or parity "
            f"constraint — try a different worker count or min_depth"
        )

    if recompute is None:
        attempts: tuple[bool, ...] = (False, True)
    else:
        attempts = (recompute,)

    closest: tuple[float, str] | None = None  # (peak overshoot, label)
    survivors: list[tuple[ExperimentConfig, MemoryReport]] = []
    for scheme, width, depth, micro_batch in grid:
        cfg = ExperimentConfig(
            scheme=scheme,
            machine=machine,
            workload=workload,
            width=width,
            depth=depth,
            micro_batch=micro_batch,
            mini_batch=mini_batch,
            lowered=lowered,
            fused=fused,
            memory_budget_bytes=memory_budget_bytes,
        )
        # Prune before ranking: the memory verdict needs no simulation, so
        # OOM candidates never pay the simulation cost.
        try:
            fits_recompute: bool | None = None
            for attempt in attempts:
                _, report = memory_report(cfg, attempt)
                if report.fits(cfg.capacity_bytes):
                    fits_recompute = attempt
                    break
            if fits_recompute is None:
                r = ", R" if attempt else ""
                overshoot = report.peak_bytes - cfg.capacity_bytes
                if closest is None or overshoot < closest[0]:
                    closest = (
                        overshoot,
                        f"{scheme}(W={width}, D={depth}, B={micro_batch}{r})",
                    )
                continue
        except (ConfigurationError, ScheduleError):
            continue  # structurally invalid corner (e.g. N < 1)
        survivors.append((replace(cfg, recompute=fits_recompute), report))

    entries = _rank_survivors(survivors)

    if not entries:
        budget_gib = (
            min(machine.usable_memory_bytes, memory_budget_bytes)
            if memory_budget_bytes is not None
            else machine.usable_memory_bytes
        ) / 2**30
        detail = (
            f"; closest candidate {closest[1]} overshoots by "
            f"{closest[0] / 2**30:.2f} GiB" if closest else ""
        )
        raise ConfigurationError(
            f"no micro-batch size fits the {budget_gib:.2f} GiB memory "
            f"budget for P={num_workers}, B̂={mini_batch} on "
            f"{machine.name}{detail} — raise the budget, add workers, or "
            f"allow deeper pipelines"
        )

    entries.sort(key=lambda e: (-e.throughput, e.iteration_time, e.label()))
    if top_k is not None:
        entries = entries[:top_k]
    return entries


def _rank_survivors(
    survivors: Sequence[tuple[ExperimentConfig, MemoryReport]],
) -> list[PlanEntry]:
    """Simulate the memory-feasible candidates and build plan entries.

    Synchronous schemes rank through **one**
    :func:`repro.sim.kernel.simulate_batch_many` call: every survivor is
    a row, rows carry heterogeneous shapes — ``(scheme, D, N, recompute,
    pipeline)`` as well as ``(W, B)``/topology — and rows sharing a
    cached dependency graph vectorize together inside the kernel. The
    default lowered ranking models link contention; the kernel computes
    per-channel FIFO serialization itself, so contended rows stay on the
    array path and nothing falls back to per-model event simulation.
    Asynchronous schemes keep the steady-state measurement of
    :func:`~repro.bench.harness.run_configuration` (their throughput is a
    marginal rate between two window sizes, not one iteration time).
    """
    entries: list[PlanEntry] = []
    sync_members: list[tuple[ExperimentConfig, MemoryReport]] = []
    for cfg, report in survivors:
        if not scheme_traits(cfg.scheme).synchronous:
            try:
                result = run_configuration(cfg)
            except (ConfigurationError, ScheduleError):
                continue
            entries.append(
                PlanEntry(
                    scheme=cfg.scheme,
                    width=cfg.width,
                    depth=cfg.depth,
                    micro_batch=cfg.micro_batch,
                    num_micro_batches=result.num_micro_batches,
                    recompute=result.recompute,
                    iteration_time=result.iteration_time,
                    throughput=result.throughput,
                    bubble_ratio=result.bubble_ratio,
                    peak_memory_bytes=result.peak_memory_bytes,
                )
            )
            continue
        sync_members.append((cfg, report))

    if not sync_members:
        return entries

    items = []
    graphs = []
    for cfg, _ in sync_members:
        arts = config_artifacts(cfg, bool(cfg.recompute))
        schedule = arts.schedule_for(cfg.lowered, cfg.fused)
        graphs.append(arts.graph_for(cfg.lowered, cfg.fused))
        items.append(
            (
                schedule,
                calibrate_cost_model(
                    cfg.machine,
                    cfg.workload,
                    depth=schedule.num_stages,
                    micro_batch=cfg.micro_batch,
                    data_parallel_width=cfg.width,
                ),
            )
        )
    batch = simulate_batch_many(items, graphs=graphs)
    for k, (cfg, report) in enumerate(sync_members):
        entries.append(
            PlanEntry(
                scheme=cfg.scheme,
                width=cfg.width,
                depth=cfg.depth,
                micro_batch=cfg.micro_batch,
                num_micro_batches=cfg.num_micro_batches(),
                recompute=bool(cfg.recompute),
                iteration_time=float(batch.iteration_time[k]),
                throughput=batch.throughput(
                    k, micro_batch=cfg.micro_batch, width=cfg.width
                ),
                bubble_ratio=batch.bubble_ratio(k),
                peak_memory_bytes=report.peak_bytes,
            )
        )
    return entries


# --------------------------------------------------------------------------
# The paper's Chimera-specific §3.4 procedure (Figure 13), formerly
# repro.perf.selector — kept verbatim because Figure 13 reproduces the
# *paper's* greedy strategy, not the scheme-agnostic search above.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigCandidate:
    """One (W, D, B) candidate with its model-predicted iteration time."""

    width: int
    depth: int
    micro_batch: int
    num_micro_batches: int
    recompute: bool
    predicted_time: float
    predicted_throughput: float

    def label(self) -> str:
        r = ", R" if self.recompute else ""
        return f"W={self.width}, D={self.depth}, B={self.micro_batch}{r}"


def greedy_micro_batch(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    width: int,
    depth: int,
    mini_batch: int,
    max_micro_batch: int = 512,
) -> tuple[int, bool] | None:
    """Largest power-of-two ``B`` that fits memory, preferring no recompute.

    The greedy half of the paper's §3.4 procedure: Chimera's bubbles are
    few enough that the largest fitting micro-batch wins outright.
    Returns ``(B, recompute)`` or ``None`` if nothing fits (even ``B = 1``
    with recomputation).
    """
    from repro.perf.calibration import calibrate_memory_model
    from repro.schedules.registry import build_schedule
    from repro.sim.memory import analyze_memory

    best: tuple[int, bool] | None = None
    b = 1
    while b <= max_micro_batch and width * b <= mini_batch:
        if mini_batch % (width * b) == 0:
            n = mini_batch // (width * b)
            for recompute in (False, True):
                schedule = build_schedule(
                    "chimera", depth, n, recompute=recompute
                )
                memory = calibrate_memory_model(
                    machine, workload, depth=depth, micro_batch=b
                )
                report = analyze_memory(schedule, memory)
                if report.fits(machine.usable_memory_bytes):
                    if best is None or b > best[0] or (b == best[0] and not recompute):
                        best = (b, recompute)
                    break
        b *= 2
    return best


def select_configuration(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    min_depth: int = 2,
) -> list[ConfigCandidate]:
    """Rank all valid Chimera (W, D) factorizations by the §3.4 model.

    Valid depths are even (bidirectional merge), at least ``min_depth``,
    divide both ``P`` and the workload's layer count, and admit at least one
    micro-batch per pipeline group. For the scheme-agnostic search use
    :func:`plan_configurations`.
    """
    from repro.perf.model import predict_iteration_time

    if num_workers < 2:
        raise ConfigurationError("need at least two workers for a pipeline")
    candidates: list[ConfigCandidate] = []
    for depth in range(min_depth, num_workers + 1, 2):
        if num_workers % depth or workload.num_layers % depth:
            continue
        width = num_workers // depth
        picked = greedy_micro_batch(
            machine, workload, width=width, depth=depth, mini_batch=mini_batch
        )
        if picked is None:
            continue
        micro_batch, recompute = picked
        n = mini_batch // (width * micro_batch)
        cost_model = calibrate_cost_model(
            machine,
            workload,
            depth=depth,
            micro_batch=micro_batch,
            data_parallel_width=width,
        )
        prediction = predict_iteration_time(
            depth, n, cost_model, recompute=recompute
        )
        candidates.append(
            ConfigCandidate(
                width=width,
                depth=depth,
                micro_batch=micro_batch,
                num_micro_batches=n,
                recompute=recompute,
                predicted_time=prediction.iteration_time,
                predicted_throughput=mini_batch / prediction.iteration_time,
            )
        )
    if not candidates:
        raise ConfigurationError(
            f"no feasible (W, D, B) configuration for P={num_workers}, "
            f"B̂={mini_batch} on {machine.name}"
        )
    candidates.sort(key=lambda c: c.predicted_time)
    return candidates


def format_plan(entries: Sequence[PlanEntry]) -> str:
    """Render a ranked plan as the standard plain-text table."""
    body = [
        [
            i,
            e.label(),
            f"N={e.num_micro_batches}",
            f"{e.throughput:.1f}",
            f"{e.bubble_ratio * 100:.1f}%",
            f"{e.peak_memory_bytes / 2**30:.2f}",
        ]
        for i, e in enumerate(entries, 1)
    ]
    return format_table(
        body,
        headers=["rank", "configuration", "micro-batches", "seq/s", "bubble", "peak GiB"],
    )
