"""Build cost and memory models from (machine, workload) pairs.

This replaces the paper's micro-benchmarks: ``F_t`` is derived from the
stage's analytic FLOP count and the machine's sustained FLOP rate, the p2p
payload from the boundary tensor size, and the allreduce payload from the
per-stage gradient bytes. Stage heterogeneity (the embedding-heavy first
stage) enters the *practice* cost model as a per-stage scale; the
performance model deliberately homogenizes it (§3.4/§4.2.2).
"""

from __future__ import annotations

from repro.bench.machines import MachineSpec
from repro.bench.workloads import TransformerSpec
from repro.sim.cost import CostModel
from repro.sim.memory import MemoryModel


def calibrate_cost_model(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    depth: int,
    micro_batch: int,
    data_parallel_width: int = 1,
    allreduce_algorithm: str = "rabenseifner",
    sync_launch_overhead_fraction: float = 0.03,
    sync_overlap_slowdown: float = 0.3,
    mfu_base: float = 0.55,
) -> CostModel:
    """Derive the simulation cost model for one configuration.

    ``mfu_base`` is the model-FLOP utilization at a comfortable micro-batch
    size; small micro-batches lose efficiency (``B = 1`` runs at ~70% of
    the base MFU — the "modern accelerators require a large enough B"
    effect that drives the paper's trade-off between bubble ratio and
    computational efficiency).
    """
    profiles = workload.stage_profiles(depth, micro_batch)
    # Micro-batch efficiency: saturating curve, ~0.7x at B=1, ~1x by B>=8.
    efficiency = mfu_base * (micro_batch / (micro_batch + 0.45))
    per_stage_seconds = [
        p.forward_flops / (machine.flops_per_sec * efficiency) for p in profiles
    ]
    base = min(per_stage_seconds)
    scales = tuple(s / base for s in per_stage_seconds)
    grad_bytes = tuple(float(p.grad_bytes) for p in profiles)
    return CostModel(
        forward_time=base,
        backward_ratio=2.0,
        recompute_backward_ratio=3.0,
        stage_scale=scales,
        activation_message_bytes=workload.boundary_bytes(micro_batch),
        topology=machine.topology(),
        stage_grad_bytes=grad_bytes,
        data_parallel_width=data_parallel_width,
        allreduce_algorithm=allreduce_algorithm,
        sync_launch_overhead=sync_launch_overhead_fraction * base,
        # GLOO progresses collectives on host threads that contend with the
        # training process: overlapped communication is not free (§3.2).
        sync_overlap_slowdown=sync_overlap_slowdown,
        # Host↔device copy engine for OFFLOAD/RELOAD; the stash payload
        # defaults to the boundary activation (offload_message_bytes=None).
        host_channel=machine.host_channel(),
    )


def calibrate_memory_model(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    depth: int,
    micro_batch: int,
) -> MemoryModel:
    """Derive the per-stage byte model for the memory analysis (Figure 9)."""
    profiles = workload.stage_profiles(depth, micro_batch)
    return MemoryModel(
        activation_bytes=tuple(float(p.activation_bytes) for p in profiles),
        stash_input_bytes=tuple(float(p.stash_input_bytes) for p in profiles),
        weight_bytes=tuple(float(p.weight_state_bytes) for p in profiles),
        weight_stash_bytes=tuple(4.0 * p.params for p in profiles),
    )
