"""Deprecated shim — the §3.4 procedure moved to :mod:`repro.perf.planner`.

This module's contents (``ConfigCandidate``, ``greedy_micro_batch``,
``select_configuration``) were superseded by the scheme-agnostic planner
in PR 3 and now live alongside it in :mod:`repro.perf.planner` (the
paper-exact Chimera procedure is kept there for the Figure 13
reproduction). Importing this module emits a :class:`DeprecationWarning`;
the re-exports below keep old call sites working unchanged.
"""

from __future__ import annotations

import warnings

from repro.perf.planner import (  # noqa: F401  (re-exports)
    ConfigCandidate,
    greedy_micro_batch,
    select_configuration,
)

warnings.warn(
    "repro.perf.selector is deprecated; import ConfigCandidate, "
    "greedy_micro_batch and select_configuration from repro.perf.planner "
    "(or use plan_configurations for the scheme-agnostic search)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ConfigCandidate", "greedy_micro_batch", "select_configuration"]
