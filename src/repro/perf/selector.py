"""Chimera-specific configuration selection (paper §3.4, Figure 13).

Chimera's tuning procedure: because the bidirectional schedule has few
bubbles, it *greedily* takes the largest micro-batch size ``B`` that fits
device memory (no bubble/efficiency trade-off to sweep), then uses the
performance model to pick ``(W, D)`` among the factorizations of ``P``.
This shrinks the search space from the baselines' full ``(W, D, B)`` grid
to a handful of model evaluations.

The scheme-agnostic generalization — every registered scheme, the full
``(scheme, W, D, B)`` grid, pruned against an explicit peak-memory budget
and ranked by the contention-aware simulation — lives in
:mod:`repro.perf.planner`; this module keeps the paper's exact procedure
for the Figure 13 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.bench.machines import MachineSpec
from repro.bench.workloads import TransformerSpec
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model
from repro.perf.model import predict_iteration_time
from repro.schedules.chimera import build_chimera_schedule
from repro.sim.memory import analyze_memory


@dataclass(frozen=True)
class ConfigCandidate:
    """One (W, D, B) candidate with its model-predicted iteration time."""

    width: int
    depth: int
    micro_batch: int
    num_micro_batches: int
    recompute: bool
    predicted_time: float
    predicted_throughput: float

    def label(self) -> str:
        r = ", R" if self.recompute else ""
        return f"W={self.width}, D={self.depth}, B={self.micro_batch}{r}"


def greedy_micro_batch(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    width: int,
    depth: int,
    mini_batch: int,
    max_micro_batch: int = 512,
) -> tuple[int, bool] | None:
    """Largest power-of-two ``B`` that fits memory, preferring no recompute.

    Returns ``(B, recompute)`` or ``None`` if nothing fits (even ``B = 1``
    with recomputation).
    """
    best: tuple[int, bool] | None = None
    b = 1
    while b <= max_micro_batch and width * b <= mini_batch:
        if mini_batch % (width * b) == 0:
            n = mini_batch // (width * b)
            for recompute in (False, True):
                schedule = build_chimera_schedule(depth, n, recompute=recompute)
                memory = calibrate_memory_model(
                    machine, workload, depth=depth, micro_batch=b
                )
                report = analyze_memory(schedule, memory)
                if report.fits(machine.usable_memory_bytes):
                    if best is None or b > best[0] or (b == best[0] and not recompute):
                        best = (b, recompute)
                    break
        b *= 2
    return best


def select_configuration(
    machine: MachineSpec,
    workload: TransformerSpec,
    *,
    num_workers: int,
    mini_batch: int,
    min_depth: int = 2,
) -> list[ConfigCandidate]:
    """Rank all valid (W, D) factorizations by predicted iteration time.

    Valid depths are even (bidirectional merge), at least ``min_depth``,
    divide both ``P`` and the workload's layer count, and admit at least one
    micro-batch per pipeline group.
    """
    if num_workers < 2:
        raise ConfigurationError("need at least two workers for a pipeline")
    candidates: list[ConfigCandidate] = []
    for depth in range(min_depth, num_workers + 1, 2):
        if num_workers % depth or workload.num_layers % depth:
            continue
        width = num_workers // depth
        picked = greedy_micro_batch(
            machine, workload, width=width, depth=depth, mini_batch=mini_batch
        )
        if picked is None:
            continue
        micro_batch, recompute = picked
        n = mini_batch // (width * micro_batch)
        cost_model = calibrate_cost_model(
            machine,
            workload,
            depth=depth,
            micro_batch=micro_batch,
            data_parallel_width=width,
        )
        prediction = predict_iteration_time(
            depth, n, cost_model, recompute=recompute
        )
        candidates.append(
            ConfigCandidate(
                width=width,
                depth=depth,
                micro_batch=micro_batch,
                num_micro_batches=n,
                recompute=recompute,
                predicted_time=prediction.iteration_time,
                predicted_throughput=mini_batch / prediction.iteration_time,
            )
        )
    if not candidates:
        raise ConfigurationError(
            f"no feasible (W, D, B) configuration for P={num_workers}, "
            f"B̂={mini_batch} on {machine.name}"
        )
    candidates.sort(key=lambda c: c.predicted_time)
    return candidates
