"""Equation (1): Chimera's single-iteration runtime model.

    T = (F_t + Comm_p2p) * C_f + (B_t + Comm_p2p) * C_b
        + max_i Comm_unoverlapped(i)

``C_f`` / ``C_b`` are the forward/backward counts on the pipeline's critical
path (Figure 6: ``C_f = 6``, ``C_b = 10`` for ``N = D = 6``). For Chimera's
merged bidirectional schedule they close to ``C_f = N`` and
``C_b = N + D - 2`` — consistent with the practical makespan
``F_t*N + B_t*(N + D - 2)`` = ``3N + 2(D-2)`` forward-units at ``B = 2F``,
which our discrete-event engine reproduces exactly at ``N = D``.

The communication-overlap term (Figure 6's free regions) is evaluated by
timing the *homogeneous* schedule (balanced stages, constant p2p) and
measuring how much of each stage's allreduce fits between its gradient
completion and the end of that worker's compute — exactly the paper's
procedure, evaluated mechanically instead of by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.schedules.chimera import ConcatStrategy, build_chimera_schedule
from repro.schedules.passes import RecomputePass
from repro.sim.cost import CostModel
from repro.sim.engine import simulate


@dataclass(frozen=True)
class PerfPrediction:
    """Output of the performance model for one (W, D, B) configuration."""

    depth: int
    num_micro_batches: int
    forward_time: float
    backward_time: float
    comm_p2p: float
    c_f: int
    c_b: int
    compute_time: float
    unoverlapped_sync: float

    @property
    def iteration_time(self) -> float:
        return self.compute_time + self.unoverlapped_sync


def chimera_critical_path(depth: int, num_micro_batches: int) -> tuple[int, int]:
    """Forward/backward counts on Chimera's critical path.

    For a full pipeline (``N >= D``): ``C_f = N`` and ``C_b = N + D - 2`` —
    each micro-batch contributes one forward and one backward, plus
    ``D - 2`` extra backwards for the bidirectional fill/drain (Figure 6's
    D = 6, N = 6 example gives exactly C_f = 6, C_b = 10). An underfilled
    pipeline (``N < D``) is bounded below by one micro-batch's full
    traversal, ``D`` forwards and ``D`` backwards.
    """
    if depth < 2 or depth % 2:
        raise ConfigurationError(f"Chimera depth must be even >= 2, got {depth}")
    n = num_micro_batches
    return max(n, depth), max(n + depth - 2, depth)


def predict_closed_form(
    depth: int,
    num_micro_batches: int,
    *,
    forward_time: float,
    comm_p2p: float = 0.0,
    recompute: bool = False,
    backward_ratio: float = 2.0,
    recompute_backward_ratio: float = 3.0,
    max_allreduce_time: float = 0.0,
) -> PerfPrediction:
    """Equation (1) with the pessimistic (no-overlap) synchronization term.

    Useful as an analytic upper bound and for unit tests; the full model
    (:func:`predict_iteration_time`) replaces ``max_allreduce_time`` with
    the measured non-overlapped portion.
    """
    c_f, c_b = chimera_critical_path(depth, num_micro_batches)
    ratio = recompute_backward_ratio if recompute else backward_ratio
    backward_time = forward_time * ratio
    compute = (forward_time + comm_p2p) * c_f + (backward_time + comm_p2p) * c_b
    return PerfPrediction(
        depth=depth,
        num_micro_batches=num_micro_batches,
        forward_time=forward_time,
        backward_time=backward_time,
        comm_p2p=comm_p2p,
        c_f=c_f,
        c_b=c_b,
        compute_time=compute,
        unoverlapped_sync=max_allreduce_time,
    )


def predict_iteration_time(
    depth: int,
    num_micro_batches: int,
    cost_model: CostModel,
    *,
    recompute: bool = False,
    concat: ConcatStrategy | str = ConcatStrategy.DIRECT,
    num_down_pipelines: int = 1,
    sync_mode: str = "eager_opt",
) -> PerfPrediction:
    """Full Equation (1) prediction for a Chimera configuration.

    The compute term uses the closed-form critical path with ``F_t``
    measured at the *bottleneck* stage (the paper measures F_t by micro
    benchmark and assumes balanced stages; the bottleneck stage is what a
    micro-benchmark of the real partition reports, and what governs the
    steady-state rate). The ``Comm_unoverlapped`` term is obtained by
    simulating the schedule under the homogenized model — ignoring the
    residual heterogeneity is one source of the model's <10% error against
    practice (§4.2.2).
    """
    scales = cost_model.stage_scale or tuple([1.0] * depth)
    if len(scales) != depth:
        raise ConfigurationError(
            f"stage_scale has {len(scales)} entries for depth {depth}"
        )
    # Bidirectional placement pairs stage s with stage D-1-s on one worker,
    # so a heavy stage (e.g. the LM-head stage) is balanced by its light
    # twin: the steady-state bottleneck is the heaviest *pair average*, not
    # the heaviest stage. (An emergent load-balancing property of Chimera's
    # placement that a unidirectional pipeline does not enjoy.)
    bottleneck = max(
        (scales[s] + scales[depth - 1 - s]) / 2.0 for s in range(depth)
    )
    forward_time = cost_model.forward_time * bottleneck
    homogeneous = cost_model.with_(stage_scale=None, forward_time=forward_time)
    schedule = build_chimera_schedule(
        depth,
        num_micro_batches,
        num_down_pipelines=num_down_pipelines,
        concat=concat,
        sync_mode=sync_mode,
    )
    if recompute:
        schedule = RecomputePass().run(schedule)
    result = simulate(schedule, homogeneous)
    c_f, c_b = chimera_critical_path(depth, num_micro_batches)
    ratio = (
        cost_model.recompute_backward_ratio
        if recompute
        else cost_model.backward_ratio
    )
    backward_time = forward_time * ratio
    # p2p cost per critical-path hop under the homogeneous model.
    comm_p2p = (
        homogeneous.p2p_time(0, 1, 1.0) if homogeneous.topology is not None else 0.0
    )
    # Fill/drain traverses every stage once (sum of the real per-stage
    # times); the remaining C - D critical-path passes run at the
    # steady-state rate, which the bottleneck stage governs.
    fwd_traversal = sum(cost_model.forward_time * s for s in scales)
    bwd_traversal = fwd_traversal * ratio
    compute = (
        fwd_traversal
        + bwd_traversal
        + (c_f - depth) * forward_time
        + (c_b - depth) * backward_time
        + comm_p2p * (c_f + c_b)
    )
    # Direct concatenation keeps intermediate bubbles between basic units
    # (paper §3.5 / Figure 7b); our list scheduler's measured law is
    # (D - 3) forward-units per extra unit (see tests/test_chimera.py).
    strategy = ConcatStrategy(concat) if isinstance(concat, str) else concat
    if strategy is ConcatStrategy.DIRECT and num_micro_batches > depth:
        extra_units = num_micro_batches / depth - 1
        # Bubble slots are idle time at base stage width (the balanced
        # stages), not at the bottleneck pair.
        compute += cost_model.forward_time * max(0, depth - 3) * extra_units
    return PerfPrediction(
        depth=depth,
        num_micro_batches=num_micro_batches,
        forward_time=forward_time,
        backward_time=backward_time,
        comm_p2p=comm_p2p,
        c_f=c_f,
        c_b=c_b,
        compute_time=compute,
        unoverlapped_sync=max(0.0, result.iteration_time - result.compute_makespan),
    )
