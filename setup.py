"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` works on environments without the ``wheel``
package (legacy ``--no-use-pep517`` editable installs need a ``setup.py``).
"""

from setuptools import setup

setup()
