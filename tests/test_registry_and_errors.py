"""Registry dispatch and the exception hierarchy."""

import pytest

from repro.common.errors import (
    UnknownOptionError,
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    MemoryModelError,
    ReproError,
    ScheduleError,
    ValidationError,
)
from repro.schedules.registry import available_schemes, build_schedule


class TestRegistry:
    def test_all_schemes_listed_in_table2_order(self):
        assert available_schemes() == (
            "pipedream",
            "pipedream_2bw",
            "gpipe",
            "gems",
            "dapple",
            "chimera",
            "zb_h1",
            "zb_v",
            "zb_vhalf",
            "zb_vmin",
            "synthesize",
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            build_schedule("megatron", 4, 4)

    def test_unknown_scheme_error_lists_canonical_order(self):
        """The error message must enumerate schemes in the same order as
        available_schemes(), not alphabetically."""
        with pytest.raises(ConfigurationError) as err:
            build_schedule("megatron", 4, 4)
        assert str(list(available_schemes())) in str(err.value)

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_dispatch_builds_named_scheme(self, scheme):
        assert build_schedule(scheme, 4, 4).scheme == scheme

    def test_options_forwarded_to_builder(self):
        schedule = build_schedule("chimera", 4, 8, concat="halving")
        assert schedule.metadata["concat"] == "halving"

    def test_bad_option_surfaces(self):
        # Unknown builder options fail up front with a distinguished
        # error naming the scheme and the key (not a TypeError deep in
        # the builder).
        with pytest.raises(UnknownOptionError, match="gpipe.*concat"):
            build_schedule("gpipe", 4, 4, concat="halving")
        with pytest.raises(UnknownOptionError, match="dapple.*max_in_flight"):
            build_schedule("dapple", 4, 4, max_in_flight=2)
        # ...while pipeline options are universal.
        build_schedule("gpipe", 2, 2, recompute=True, passes="lower_p2p")


class TestDynamicRegistration:
    """Unknown-scheme errors enumerate the registry *at raise time*."""

    @staticmethod
    def _builder(depth, num_micro_batches):  # pragma: no cover - never built
        raise AssertionError("the dummy scheme must never be built")

    def test_register_then_error_lists_new_scheme(self):
        from repro.schedules.registry import (
            SchemeTraits,
            register_scheme,
            scheme_traits,
            unregister_scheme,
        )

        register_scheme("frankenpipe", self._builder, SchemeTraits())
        try:
            assert available_schemes()[-1] == "frankenpipe"
            with pytest.raises(ConfigurationError, match="frankenpipe"):
                build_schedule("megatron", 4, 4)
            with pytest.raises(ConfigurationError, match="frankenpipe"):
                scheme_traits("megatron")
        finally:
            unregister_scheme("frankenpipe")
        # ...and stops listing it the moment it is gone: the list is
        # interpolated fresh on every raise, never cached at import time.
        with pytest.raises(ConfigurationError) as err:
            build_schedule("megatron", 4, 4)
        assert "frankenpipe" not in str(err.value)
        assert "frankenpipe" not in available_schemes()

    def test_duplicate_name_needs_replace(self):
        from repro.schedules.registry import SchemeTraits, register_scheme

        with pytest.raises(ConfigurationError, match="already registered"):
            register_scheme("dapple", self._builder, SchemeTraits())

    def test_cost_parameterized_requires_fingerprint(self):
        from repro.schedules.registry import SchemeTraits, register_scheme

        with pytest.raises(ConfigurationError, match="builder_fingerprint"):
            register_scheme(
                "costly", self._builder, SchemeTraits(cost_parameterized=True)
            )
        assert "costly" not in available_schemes()

    def test_unregister_unknown_rejected(self):
        from repro.schedules.registry import unregister_scheme

        with pytest.raises(ConfigurationError, match="unknown scheme"):
            unregister_scheme("megatron")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ScheduleError,
            ValidationError,
            CommunicationError,
            DeadlockError,
            MemoryModelError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_deadlock_is_a_communication_error(self):
        assert issubclass(DeadlockError, CommunicationError)

    def test_single_except_catches_everything(self):
        with pytest.raises(ReproError):
            build_schedule("chimera", 5, 5)  # odd depth -> ScheduleError
