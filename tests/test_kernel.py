"""Differential coverage for the array-backed simulation kernel.

The kernel (:mod:`repro.sim.kernel`) is a faster evaluator of the event
engine's model, never a second model — so every test here is a comparison:
``simulate_fast`` and ``simulate_batch`` must reproduce ``simulate`` to
1e-9 for all registered schemes, implicit and lowered, under arbitrary
f/b/w cost ratios. The schedule cache (:mod:`repro.schedules.cache`) is
covered alongside: shared artifacts must be immune to caller mutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules.cache import (
    ScheduleCache,
    clear_schedule_cache,
    schedule_artifacts,
    schedule_cache_stats,
)
from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.kernel import (
    BatchResult,
    fast_path_supported,
    kernel_of,
    simulate_batch,
    simulate_fast,
)
from repro.sim.metrics import bubble_ratio, throughput_samples_per_sec
from repro.sim.network import FlatTopology, HierarchicalTopology, LinkSpec

SETTINGS = settings(max_examples=30, deadline=None)

ATOL = 1e-9

even_depths = st.sampled_from([2, 4, 6])
micro_batches = st.integers(min_value=1, max_value=10)
cost_units = st.floats(
    min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False
)


def contention_free_model(f, b, w, alpha) -> CostModel:
    """Random-ratio cost model with beta=0 links (kernel-eligible)."""
    return CostModel(
        forward_time=f,
        backward_input_ratio=b,
        backward_weight_ratio=w,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
        stage_grad_bytes=7.0,
        data_parallel_width=2,
        sync_launch_overhead=0.01,
    )


def assert_results_match(ref, got):
    """Full SimulationResult equivalence to ATOL."""
    assert got.compute_makespan == pytest.approx(ref.compute_makespan, abs=ATOL)
    assert got.iteration_time == pytest.approx(ref.iteration_time, abs=ATOL)
    assert set(got.timed) == set(ref.timed)
    for key, t_ref in ref.timed.items():
        t_got = got.timed[key]
        assert t_got.worker == t_ref.worker
        assert t_got.start == pytest.approx(t_ref.start, abs=ATOL)
        assert t_got.end == pytest.approx(t_ref.end, abs=ATOL)
    assert len(got.collectives) == len(ref.collectives)
    for c_ref, c_got in zip(ref.collectives, got.collectives):
        assert c_got.workers == c_ref.workers
        assert c_got.start == pytest.approx(c_ref.start, abs=ATOL)
        assert c_got.end == pytest.approx(c_ref.end, abs=ATOL)
    assert len(got.transfers) == len(ref.transfers)
    for t_ref, t_got in zip(ref.transfers, got.transfers):
        assert (t_got.src_worker, t_got.dst_worker) == (
            t_ref.src_worker,
            t_ref.dst_worker,
        )
        assert t_got.start == pytest.approx(t_ref.start, abs=ATOL)
        assert t_got.end == pytest.approx(t_ref.end, abs=ATOL)


# --------------------------------------------------------------- fast path
@SETTINGS
@given(
    scheme=st.sampled_from(available_schemes()),
    depth=even_depths,
    n=micro_batches,
    f=cost_units,
    b=cost_units,
    w=cost_units,
    alpha=st.floats(min_value=0.0, max_value=0.5),
    lowered=st.booleans(),
)
def test_fast_path_matches_event_engine(scheme, depth, n, f, b, w, alpha, lowered):
    arts = schedule_artifacts(scheme, depth, n)
    schedule = arts.schedule_for(lowered)
    graph = arts.graph_for(lowered)
    cm = contention_free_model(f, b, w, alpha)
    assert fast_path_supported(schedule, cm, graph=graph)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )


@SETTINGS
@given(
    scheme=st.sampled_from(available_schemes()),
    depth=even_depths,
    n=micro_batches,
    f=cost_units,
    b=cost_units,
    w=cost_units,
    lowered=st.booleans(),
)
def test_batch_matches_event_engine(scheme, depth, n, f, b, w, lowered):
    arts = schedule_artifacts(scheme, depth, n)
    schedule = arts.schedule_for(lowered)
    graph = arts.graph_for(lowered)
    models = [
        contention_free_model(f, b, w, 0.05),
        contention_free_model(2.0 * f, 0.5 * b + 0.1, w, 0.0),
        contention_free_model(f, b, 2.0 * w, 0.2).with_(
            sync_overlap_slowdown=0.25
        ),
    ]
    batch = simulate_batch(schedule, models, graph=graph)
    assert isinstance(batch, BatchResult)
    assert len(batch) == len(models)
    for k, cm in enumerate(models):
        ref = simulate(schedule, cm, graph=graph)
        assert batch.used_fast_path[k]
        assert batch.compute_makespan[k] == pytest.approx(
            ref.compute_makespan, abs=ATOL
        )
        assert batch.iteration_time[k] == pytest.approx(ref.iteration_time, abs=ATOL)
        busy = [ref.busy_time(worker) for worker in range(schedule.num_workers)]
        assert np.allclose(batch.worker_busy[k], busy, atol=1e-6)
        if schedule.synchronous:
            assert batch.bubble_ratio(k) == pytest.approx(bubble_ratio(ref), abs=1e-6)
        assert batch.throughput(k, micro_batch=3, width=2) == pytest.approx(
            throughput_samples_per_sec(
                ref, micro_batch_size=3, data_parallel_width=2
            ),
            rel=1e-9,
        )


def test_single_model_batch_uses_scalar_pass():
    arts = schedule_artifacts("chimera", 4, 8)
    cm = contention_free_model(1.0, 1.1, 0.9, 0.05)
    batch = simulate_batch(arts.schedule, [cm], graph=arts.graph())
    ref = simulate(arts.schedule, cm, graph=arts.graph())
    assert batch.used_fast_path == (True,)
    assert batch.iteration_time[0] == pytest.approx(ref.iteration_time, abs=ATOL)


def test_hierarchical_topology_matches():
    arts = schedule_artifacts("zb_v", 4, 6)
    cm = CostModel(
        forward_time=1.0,
        topology=HierarchicalTopology(
            LinkSpec(0.01, 0.0), LinkSpec(0.3, 0.0), 2
        ),
        activation_message_bytes=2.0,
        stage_grad_bytes=11.0,
        data_parallel_width=2,
    )
    for lowered in (False, True):
        schedule = arts.schedule_for(lowered)
        graph = arts.graph_for(lowered)
        assert_results_match(
            simulate(schedule, cm, graph=graph),
            simulate_fast(schedule, cm, graph=graph),
        )


# ----------------------------------------------------- contended routing
# fast_path_supported is a telemetry hint (single-sweep vs contended
# handling), not an eligibility gate: every regime runs on the kernel.
def test_lowered_contention_runs_contended_kernel_path():
    """beta > 0 on a lowered schedule: contended routing, results exact."""
    arts = schedule_artifacts("dapple", 4, 6)
    schedule = arts.lowered()
    graph = arts.lowered_graph()
    cm = CostModel(
        forward_time=1.0,
        topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.1)),
        activation_message_bytes=1.0,
    )
    assert not fast_path_supported(schedule, cm, graph=graph)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )
    # The implicit form routes single-sweep under the same model:
    # contention is a lowered-schedule concept.
    assert fast_path_supported(arts.schedule, cm, graph=arts.graph())


def test_blocking_sync_runs_contended_kernel_path():
    arts = schedule_artifacts("pipedream", 4, 8)
    cm = contention_free_model(1.0, 1.0, 1.0, 0.05)
    assert not fast_path_supported(arts.schedule, cm, blocking_sync=True)
    ref = simulate(arts.schedule, cm, graph=arts.graph(), blocking_sync=True)
    got = simulate_fast(arts.schedule, cm, graph=arts.graph(), blocking_sync=True)
    assert got.iteration_time == pytest.approx(ref.iteration_time, abs=ATOL)


def test_batch_mixed_routing():
    """Contended rows take the FIFO path; the hint reports the routing."""
    arts = schedule_artifacts("gpipe", 4, 6)
    schedule = arts.lowered()
    graph = arts.lowered_graph()
    free = contention_free_model(1.0, 1.2, 0.8, 0.05)
    congested = free.with_(topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.2)))
    batch = simulate_batch(schedule, [free, congested, free], graph=graph)
    assert batch.used_fast_path == (True, False, True)
    for k, cm in enumerate([free, congested, free]):
        ref = simulate(schedule, cm, graph=graph)
        assert batch.iteration_time[k] == pytest.approx(ref.iteration_time, abs=ATOL)
    # The congested row really is slower: occupancy queues transfers.
    assert batch.iteration_time[1] > batch.iteration_time[0]


def test_batch_rejects_empty_model_list():
    arts = schedule_artifacts("gpipe", 2, 2)
    with pytest.raises(ValueError):
        simulate_batch(arts.schedule, [])


def test_kernel_cached_on_graph():
    arts = schedule_artifacts("dapple", 2, 4)
    graph = arts.graph()
    assert kernel_of(graph) is kernel_of(graph)


# ------------------------------------------------------------ cache layer
def test_cache_hits_return_same_artifacts():
    cache = ScheduleCache(max_entries=4)
    first = cache.artifacts("gpipe", 2, 4)
    again = cache.artifacts("gpipe", 2, 4)
    assert first is again
    assert first.graph() is again.graph()
    assert first.lowered() is again.lowered()
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1


def test_cache_distinguishes_options():
    cache = ScheduleCache()
    plain = cache.artifacts("gpipe", 2, 4)
    recompute = cache.artifacts("gpipe", 2, 4, recompute=True)
    assert plain is not recompute
    assert not any(op.is_recompute for _, op in plain.schedule.all_ops())
    assert any(op.is_recompute for _, op in recompute.schedule.all_ops())


def test_cache_lru_eviction():
    cache = ScheduleCache(max_entries=2)
    a = cache.artifacts("gpipe", 2, 2)
    cache.artifacts("gpipe", 2, 3)
    cache.artifacts("gpipe", 2, 4)  # evicts the (2, 2) entry
    assert cache.stats().entries == 2
    assert cache.artifacts("gpipe", 2, 2) is not a


def test_mutating_returned_schedule_cannot_poison_cache():
    """The satellite contract: shared schedules are mutation-proof."""
    cache = ScheduleCache()
    schedule = cache.artifacts("dapple", 2, 4).schedule
    with pytest.raises(TypeError):
        schedule.metadata["poison"] = True  # type: ignore[index]
    # The sanctioned copy-on-write path leaves the cached instance alone.
    derived = schedule.with_metadata(poison=True)
    assert derived.metadata["poison"] is True
    fresh = cache.artifacts("dapple", 2, 4).schedule
    assert "poison" not in fresh.metadata
    # Equal to an uncached build: the proxy wrapper changes nothing else.
    pristine = build_schedule("dapple", 2, 4)
    assert fresh.worker_ops == pristine.worker_ops
    assert dict(fresh.metadata) == dict(pristine.metadata)


def test_lowered_artifact_is_mutation_proof_too():
    cache = ScheduleCache()
    lowered = cache.artifacts("chimera", 2, 4).lowered()
    with pytest.raises(TypeError):
        lowered.metadata["poison"] = True  # type: ignore[index]
    assert lowered.lowered  # the proxy preserves the lowering marker


def test_unhashable_options_bypass_cache():
    assert ScheduleCache.key("gpipe", 2, 4, {"bad": ["not", "hashable"]}) is None
    key = ScheduleCache.key("gpipe", 2, 4, {"recompute": True})
    assert key == ("gpipe", 2, 4, (("recompute", True),))


def test_cache_key_normalizes_default_recompute():
    """Explicit recompute=False and no-options callers share one entry."""
    assert ScheduleCache.key("gpipe", 2, 4, {"recompute": False}) == ScheduleCache.key(
        "gpipe", 2, 4, {}
    )
    cache = ScheduleCache()
    assert cache.artifacts("gpipe", 2, 4, recompute=False) is cache.artifacts(
        "gpipe", 2, 4
    )


def test_process_wide_cache_roundtrip():
    clear_schedule_cache()
    schedule_artifacts("gpipe", 2, 4)
    schedule_artifacts("gpipe", 2, 4)
    stats = schedule_cache_stats()
    assert stats.hits >= 1 and stats.misses >= 1
    clear_schedule_cache()
    assert schedule_cache_stats().lookups == 0
