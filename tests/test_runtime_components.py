"""StageModule and optimizers."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.models.layers import GELU, Linear
from repro.runtime.optimizers import SGD, Adam, Momentum
from repro.runtime.stage_module import StageModule

RNG = np.random.default_rng(11)


def make_stage(recompute=False):
    rng = np.random.default_rng(5)
    return StageModule(
        [Linear(6, 6, rng=rng), GELU(), Linear(6, 6, rng=rng)], recompute=recompute
    )


class TestStageModule:
    def test_forward_backward_roundtrip(self):
        stage = make_stage()
        x = RNG.standard_normal((2, 6))
        y = stage.forward(0, x)
        dy = RNG.standard_normal(y.shape)
        dx = stage.backward(0, dy)
        assert dx.shape == x.shape
        assert stage.in_flight() == 0

    def test_multiple_in_flight(self):
        stage = make_stage()
        stage.forward(0, RNG.standard_normal((2, 6)))
        stage.forward(1, RNG.standard_normal((2, 6)))
        assert stage.in_flight() == 2
        stage.backward(0, np.ones((2, 6)))
        assert stage.in_flight() == 1 and stage.is_in_flight(1)

    def test_duplicate_forward_rejected(self):
        stage = make_stage()
        stage.forward(0, RNG.standard_normal((2, 6)))
        with pytest.raises(ReproError):
            stage.forward(0, RNG.standard_normal((2, 6)))

    def test_backward_without_forward_rejected(self):
        with pytest.raises(ReproError):
            make_stage().backward(0, np.ones((2, 6)))

    def test_recompute_matches_plain(self):
        x = RNG.standard_normal((2, 6))
        dy = RNG.standard_normal((2, 6))
        plain, recomp = make_stage(False), make_stage(True)
        yp = plain.forward(0, x)
        yr = recomp.forward(0, x)
        np.testing.assert_allclose(yp, yr)
        dxp = plain.backward(0, dy)
        dxr = recomp.backward(0, dy)
        np.testing.assert_allclose(dxp, dxr)
        for a, b in zip(plain.grad_arrays(), recomp.grad_arrays()):
            np.testing.assert_allclose(a, b)

    def test_part_backwards_release_after_all_parts(self):
        stage = make_stage()
        stage.forward(0, RNG.standard_normal((4, 6)))
        stage.backward(0, np.ones((2, 6)), row_slice=slice(0, 2), fraction=0.5)
        assert stage.is_in_flight(0)
        stage.backward(0, np.ones((2, 6)), row_slice=slice(2, 4), fraction=0.5)
        assert not stage.is_in_flight(0)

    def test_snapshot_restore(self):
        stage = make_stage()
        snap = stage.snapshot_params()
        for p in stage.param_arrays():
            p += 1.0
        stage.load_params(snap)
        for p, s in zip(stage.param_arrays(), snap):
            np.testing.assert_array_equal(p, s)

    def test_scale_grads(self):
        stage = make_stage()
        stage.forward(0, RNG.standard_normal((2, 6)))
        stage.backward(0, np.ones((2, 6)))
        before = [g.copy() for g in stage.grad_arrays()]
        stage.scale_grads(0.5)
        for b, g in zip(before, stage.grad_arrays()):
            np.testing.assert_allclose(g, b * 0.5)

    def test_num_params(self):
        assert make_stage().num_params() == 2 * (6 * 6 + 6)


class TestOptimizers:
    def _layer(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 3, rng=rng)
        layer.grads["W"][...] = 1.0
        layer.grads["b"][...] = 1.0
        return layer

    def test_sgd_step(self):
        layer = self._layer()
        before = layer.params["W"].copy()
        SGD(lr=0.1).step([layer])
        np.testing.assert_allclose(layer.params["W"], before - 0.1)

    def test_momentum_accumulates(self):
        layer = self._layer()
        opt = Momentum(lr=0.1, momentum=0.9)
        before = layer.params["W"].copy()
        opt.step([layer])  # v = g -> -0.1
        layer.grads["W"][...] = 1.0
        layer.grads["b"][...] = 1.0
        opt.step([layer])  # v = 1.9 -> -0.19
        np.testing.assert_allclose(layer.params["W"], before - 0.1 - 0.19)

    def test_adam_first_step_is_lr(self):
        layer = self._layer()
        before = layer.params["W"].copy()
        Adam(lr=0.01).step([layer])
        np.testing.assert_allclose(
            layer.params["W"], before - 0.01, atol=1e-8
        )

    def test_adam_state_per_parameter(self):
        a, b = self._layer(), self._layer()
        opt = Adam(lr=0.01)
        opt.step([a])
        opt.step([b])  # independent state; b takes its own first step
        np.testing.assert_allclose(a.params["W"], b.params["W"], atol=1e-8)

    def test_minimizes_quadratic(self):
        rng = np.random.default_rng(1)
        layer = Linear(2, 1, rng=rng)
        target = np.array([[0.3], [0.7]])
        opt = Adam(lr=0.05)
        for _ in range(200):
            layer.zero_grads()
            # loss = ||W - target||^2 / 2
            layer.grads["W"][...] = layer.params["W"] - target
            opt.step([layer])
        np.testing.assert_allclose(layer.params["W"], target, atol=1e-3)
